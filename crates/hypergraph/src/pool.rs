//! A persistent scoped worker pool for the reconstruction loop.
//!
//! MARIOH's outer loop runs dozens-to-hundreds of search rounds, and
//! each round used to spawn (and join) a fresh set of OS threads for
//! clique enumeration and again for clique scoring. On the small
//! Table-1 datasets the spawn cost alone made multi-threaded rounds
//! *slower* than serial ones. [`WorkerPool`] fixes the fixed cost:
//! workers are spawned once per reconstruction run and parked on a
//! condvar between jobs, so dispatching a round's work costs a mutex
//! round-trip and a wakeup instead of `threads` thread spawns.
//!
//! The pool is *scoped* in the same sense as [`std::thread::scope`]: a
//! job may borrow data from the caller's stack because [`WorkerPool::run`]
//! does not return (not even by unwinding) until every worker has
//! finished the job. Jobs receive their 0-based participant index; the
//! calling thread always participates as index `0`, so a pool built for
//! `threads` units of parallelism only keeps `threads - 1` OS threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The job pointer handed to workers. The borrow it was created from is
/// kept alive by [`WorkerPool::run`] until all workers are done, which is
/// what makes the lifetime erasure sound.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (the constraint is in the type) and the
// pointer is only dereferenced while `run` keeps the referent alive.
unsafe impl Send for Job {}

struct State {
    /// The job currently being executed, if any.
    job: Option<Job>,
    /// The thread that published `job`; its own re-entrant
    /// [`WorkerPool::run`] calls execute inline instead of waiting on a
    /// drain that can never happen while it is parked here.
    publisher: Option<std::thread::ThreadId>,
    /// Monotone job counter; workers use it to detect fresh work.
    seq: u64,
    /// Workers still executing the current job.
    running: usize,
    /// A worker's job closure panicked; re-raised on the caller.
    panicked: bool,
    /// The pool is being dropped.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a new job is published (or on shutdown).
    start: Condvar,
    /// Signalled when the last worker finishes the current job.
    done: Condvar,
}

/// A fixed-size pool of parked worker threads executing borrowed jobs.
///
/// ```
/// use marioh_hypergraph::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(&|_worker| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// // Every participant (3 workers + the caller) ran the job once.
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Thread ids of the spawned workers; a re-entrant [`WorkerPool::run`]
    /// from one of them executes the job inline instead of deadlocking.
    worker_ids: Vec<std::thread::ThreadId>,
}

impl WorkerPool {
    /// Creates a pool providing `threads` units of parallelism:
    /// `threads - 1` parked OS threads plus the calling thread
    /// (`threads <= 1` spawns nothing and [`WorkerPool::run`] degrades to
    /// a plain call).
    pub fn new(threads: usize) -> WorkerPool {
        Self::with_affinity(threads, false)
    }

    /// [`WorkerPool::new`] with optional CPU pinning. When `pin` is set,
    /// the calling thread is pinned to core `0 mod cores` and worker
    /// `idx` to core `idx mod cores` — explicit per-worker pins, because
    /// Linux children inherit the spawner's affinity mask and would
    /// otherwise all pile onto the caller's core. Pinning is
    /// best-effort ([`marioh_kernels::pin_to_core`] is a no-op off
    /// linux-x86_64 and may be refused by a cgroup cpuset); a failed pin
    /// never degrades the pool itself.
    pub fn with_affinity(threads: usize, pin: bool) -> WorkerPool {
        let workers = threads.saturating_sub(1);
        if pin {
            marioh_kernels::pin_to_core(0);
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                publisher: None,
                seq: 0,
                running: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles: Vec<JoinHandle<()>> = (1..=workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    if pin {
                        let cores = marioh_kernels::available_cores();
                        marioh_kernels::pin_to_core(idx % cores);
                    }
                    worker_loop(&shared, idx)
                })
            })
            .collect();
        let worker_ids = handles.iter().map(|h| h.thread().id()).collect();
        WorkerPool {
            shared,
            handles,
            worker_ids,
        }
    }

    /// Units of parallelism this pool provides (spawned workers + the
    /// caller).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Executes `job` once per participant, passing each its 0-based
    /// index (`0` is the calling thread), and returns when **all**
    /// participants have finished. Jobs typically pull work items off a
    /// shared atomic counter, so the index is only needed for
    /// per-participant output shards.
    ///
    /// Re-entrant calls — `run` invoked from inside a job running on one
    /// of this pool's own workers (e.g. a lazily-built cache inside a
    /// parallel scoring pass) — execute the job inline on that worker
    /// instead of deadlocking against the in-flight dispatch. Concurrent
    /// `run` calls from *different* threads serialize: the second blocks
    /// until the first job has fully drained before publishing its own.
    ///
    /// # Panics
    ///
    /// Re-raises (as a fresh panic) if the job panicked on any worker
    /// thread. A panic on the caller's own participation unwinds only
    /// after every worker finished, so borrowed data stays valid for as
    /// long as any worker can touch it.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() || self.worker_ids.contains(&std::thread::current().id()) {
            job(0);
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            // Re-entrant call from the thread whose own participation in
            // the in-flight job re-entered `run` (a lazily-built cache
            // inside a parallel pass): waiting below would deadlock on
            // ourselves, so degrade to an inline call.
            if st.publisher == Some(std::thread::current().id()) {
                drop(st);
                job(0);
                return;
            }
            // Wait out any in-flight job another caller published —
            // overwriting it would free its borrowed closure while
            // workers still hold the lifetime-erased pointer.
            while st.job.is_some() || st.running > 0 {
                st = self.shared.done.wait(st).expect("pool state poisoned");
            }
            // SAFETY: erase the borrow's lifetime. The pointer is
            // dereferenced only by workers counted in `running`, and
            // every exit path below (including unwinding, via the
            // guard) waits for `running == 0` first.
            let ptr: *const (dyn Fn(usize) + Sync) = job;
            st.job = Some(Job(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(ptr)
            }));
            st.seq += 1;
            st.running = self.handles.len();
            st.panicked = false;
            st.publisher = Some(std::thread::current().id());
        }
        self.shared.start.notify_all();

        // If the caller's own participation panics, the guard still
        // blocks the unwind until the workers are done with the borrow.
        let guard = WaitGuard {
            shared: &self.shared,
        };
        job(0);
        std::mem::forget(guard);

        let mut st = self.shared.state.lock().expect("pool state poisoned");
        while st.running > 0 {
            st = self.shared.done.wait(st).expect("pool state poisoned");
        }
        st.job = None;
        st.publisher = None;
        let panicked = st.panicked;
        drop(st);
        // Wake any caller queued behind this job's publication slot.
        self.shared.done.notify_all();
        assert!(!panicked, "WorkerPool job panicked on a worker thread");
    }
}

/// Blocks unwinding out of [`WorkerPool::run`] until all workers have
/// finished the in-flight job (they hold the erased borrow).
struct WaitGuard<'a> {
    shared: &'a Shared,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            while st.running > 0 {
                let Ok(next) = self.shared.done.wait(st) else {
                    return;
                };
                st = next;
            }
            st.job = None;
            st.publisher = None;
            drop(st);
            self.shared.done.notify_all();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != seen {
                    seen = st.seq;
                    break st.job.expect("published job");
                }
                st = shared.start.wait(st).expect("pool state poisoned");
            }
        };
        // SAFETY: `run` keeps the referent alive until `running` drops
        // to zero, which only happens after this call returns.
        let f = unsafe { &*job.0 };
        let ok = catch_unwind(AssertUnwindSafe(|| f(idx))).is_ok();
        let mut st = shared.state.lock().expect("pool state poisoned");
        if !ok {
            st.panicked = true;
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_participant_runs_each_job_once() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        for _ in 0..50 {
            let mut hits = [0usize; 4];
            let slots: Mutex<Vec<Option<&mut usize>>> =
                Mutex::new(hits.iter_mut().map(Some).collect());
            pool.run(&|idx| {
                let slot = slots.lock().unwrap()[idx].take().expect("index reused");
                *slot += 1;
            });
            drop(slots);
            assert_eq!(hits, [1, 1, 1, 1]);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let count = AtomicUsize::new(0);
        pool.run(&|idx| {
            assert_eq!(idx, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jobs_can_borrow_stack_data() {
        let pool = WorkerPool::new(3);
        let items: Vec<usize> = (0..1000).collect();
        let total = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        pool.run(&|_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&v) = items.get(i) else { break };
            total.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn pool_survives_many_sequential_jobs() {
        let pool = WorkerPool::new(2);
        let count = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(&|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn concurrent_runs_from_different_threads_serialize() {
        // The pool is Sync; two threads sharing it must not clobber each
        // other's published job (the borrow-erasure's soundness depends
        // on it). Hammer it: every increment must land exactly once.
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let local = AtomicUsize::new(0);
                        pool.run(&|_| {
                            local.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(local.load(Ordering::Relaxed), 3);
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn reentrant_run_from_a_worker_executes_inline() {
        // A job that itself dispatches through the pool (the lazy-MHH
        // shape) must not deadlock: the inner run degrades to an inline
        // call on that worker.
        let pool = WorkerPool::new(3);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        pool.run(&|idx| {
            outer.fetch_add(1, Ordering::Relaxed);
            if idx == 1 {
                pool.run(&|inner_idx| {
                    assert_eq!(inner_idx, 0, "re-entrant job runs inline");
                    inner.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(outer.load(Ordering::Relaxed), 3);
        assert_eq!(inner.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reentrant_run_from_the_publishing_caller_executes_inline() {
        // The caller's own participation (index 0) re-enters the pool —
        // the shape of a lazily-built cache whose `get_or_init` happens
        // to land on the publishing thread. Before publisher tracking
        // this deadlocked: the inner `run` waited for the outer job to
        // drain, which needed the caller to finish its participation.
        let pool = WorkerPool::new(3);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        pool.run(&|idx| {
            outer.fetch_add(1, Ordering::Relaxed);
            if idx == 0 {
                pool.run(&|inner_idx| {
                    assert_eq!(inner_idx, 0, "re-entrant job runs inline");
                    inner.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(outer.load(Ordering::Relaxed), 3);
        assert_eq!(inner.load(Ordering::Relaxed), 1);
        // The pool stays fully usable afterwards.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pinned_pool_runs_jobs_like_an_unpinned_one() {
        // Pinning is best-effort and invisible to the job contract; the
        // pinned constructor must behave identically job-wise.
        let pool = WorkerPool::with_affinity(3, true);
        assert_eq!(pool.threads(), 3);
        let count = AtomicUsize::new(0);
        for _ in 0..20 {
            pool.run(&|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 60);
    }

    #[test]
    fn worker_panic_is_reported_on_the_caller() {
        let pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|idx| {
                if idx == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(err.is_err());
        // The pool remains usable after a job panic.
        let count = AtomicUsize::new(0);
        pool.run(&|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}
