//! Hypergraph and weighted projected-graph substrate for the MARIOH
//! reproduction (ICDE 2025).
//!
//! This crate provides the problem-domain representation of Sect. II of
//! the paper:
//!
//! * [`Hypergraph`] — a multiset of hyperedges `H = (V, E*, M)`,
//! * [`ProjectedGraph`] — its weighted clique expansion `G = (V, E_G, ω)`,
//! * [`projection::project`] — the expansion itself,
//! * [`clique`] — maximal-clique enumeration shared by every method,
//! * [`view`] — round-frozen CSR snapshots shared by enumeration,
//!   feature extraction and scoring within one pass,
//! * [`metrics`] — Jaccard / multi-Jaccard reconstruction accuracy,
//! * [`properties`] — the 12 structural properties of Table IV,
//! * [`io`] — plain-text persistence.
//!
//! # Example
//!
//! ```
//! use marioh_hypergraph::{Hypergraph, hyperedge::edge, projection::project};
//!
//! let mut h = Hypergraph::new(0);
//! h.add_edge_with_multiplicity(edge(&[0, 1, 2]), 2);
//! h.add_edge(edge(&[1, 2]));
//! let g = project(&h);
//! // {1,2} is covered by both copies of {0,1,2} and by itself.
//! assert_eq!(g.weight(1.into(), 2.into()), 3);
//! ```

#![warn(missing_docs)]

pub mod analytics;
pub mod benson;
pub mod clique;
pub mod error;
pub mod fxhash;
pub mod graph;
pub mod hyperedge;
pub mod hypergraph;
pub mod io;
pub mod metrics;
pub mod motifs;
pub mod node;
pub mod parallel;
pub mod pool;
pub mod projection;
pub mod properties;
pub mod view;

pub use error::HypergraphError;
pub use graph::ProjectedGraph;
pub use hyperedge::Hyperedge;
pub use hypergraph::Hypergraph;
pub use node::{NodeId, NodeInterner};
pub use pool::WorkerPool;
pub use view::GraphView;
