//! Hypergraph connectivity analytics: s-connected components and core
//! decomposition.
//!
//! The paper motivates reconstruction by "enabling the use of
//! hypergraph-based tools" (Sect. I). This module provides the two
//! workhorse structural tools a downstream user reaches for first:
//!
//! * **s-connectivity** (Aksoy et al., *EPJ Data Science* 2020): two
//!   hyperedges are s-adjacent when they share at least `s` nodes;
//!   s-connected components of a hypergraph are the components of that
//!   relation. `s = 1` is plain connectivity; larger `s` reveals the
//!   robustly-overlapping cores that pairwise projections blur.
//! * **core decomposition** (the strong hypergraph k-core): peel nodes of
//!   minimum degree, where removing a node destroys every hyperedge it
//!   participates in. The resulting core number of a node is the largest
//!   `k` such that the node survives in a sub-hypergraph where every node
//!   has at least `k` *intact* incident hyperedges.
//!
//! Multiplicity does not affect either notion (a repeated hyperedge adds
//! no connectivity), so both operate on unique hyperedges.

use crate::hypergraph::Hypergraph;
use crate::node::NodeId;

/// Disjoint-set union with path halving and union by size.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Groups the *unique* hyperedges of `h` into s-connected components.
///
/// Returns components as vectors of indices into `h.sorted_edges()`
/// (a stable, deterministic edge order), each component sorted, and the
/// components sorted by their smallest member. Hyperedges smaller than
/// `s` cannot be s-adjacent to anything and form singleton components.
///
/// # Panics
///
/// Panics when `s == 0` (every pair of edges would be adjacent).
pub fn s_edge_components(h: &Hypergraph, s: usize) -> Vec<Vec<usize>> {
    assert!(s >= 1, "s-connectivity needs s >= 1");
    let edges = h.sorted_edges();
    let m = edges.len();
    let mut dsu = Dsu::new(m);

    if s == 1 {
        // Sharing one node: union all edges incident to each node — linear.
        let mut first_edge_of: Vec<Option<u32>> = vec![None; h.num_nodes() as usize];
        for (i, e) in edges.iter().enumerate() {
            for n in e.nodes() {
                match first_edge_of[n.index()] {
                    Some(j) => dsu.union(j, i as u32),
                    None => first_edge_of[n.index()] = Some(i as u32),
                }
            }
        }
    } else {
        // Count shared nodes per co-incident edge pair via each node's
        // incidence list. Cost O(Σ_v d(v)²) — the standard approach; fine
        // for analytic use on the bundled datasets.
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); h.num_nodes() as usize];
        for (i, e) in edges.iter().enumerate() {
            for n in e.nodes() {
                incident[n.index()].push(i as u32);
            }
        }
        use crate::fxhash::FxHashMap;
        let mut shared: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for inc in &incident {
            for (a, &i) in inc.iter().enumerate() {
                for &j in &inc[a + 1..] {
                    let key = (i.min(j), i.max(j));
                    let count = shared.entry(key).or_insert(0);
                    *count += 1;
                    if *count == s {
                        dsu.union(i, j);
                    }
                }
            }
        }
    }

    let mut groups: std::collections::BTreeMap<u32, Vec<usize>> = std::collections::BTreeMap::new();
    for i in 0..m as u32 {
        groups.entry(dsu.find(i)).or_default().push(i as usize);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Groups the covered nodes of `h` into s-connected components: two nodes
/// are in the same component when some chain of s-adjacent hyperedges
/// links them. Nodes covered only by hyperedges smaller than `s` sit in
/// per-hyperedge components; isolated nodes are omitted.
pub fn s_node_components(h: &Hypergraph, s: usize) -> Vec<Vec<NodeId>> {
    let edges = h.sorted_edges();
    let comps = s_edge_components(h, s);
    let mut out = Vec::with_capacity(comps.len());
    for comp in comps {
        let mut nodes: Vec<NodeId> = comp
            .iter()
            .flat_map(|&i| edges[i].nodes().iter().copied())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        out.push(nodes);
    }
    // Distinct edge components can share no node only for s >= 2; for
    // consistency merge node-overlapping groups (s >= 2 edges can still
    // share < s nodes and thus sit in different edge components).
    out.sort();
    merge_overlapping(out)
}

/// Merges node groups until they are pairwise disjoint.
fn merge_overlapping(mut groups: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    loop {
        let mut merged_any = false;
        let mut result: Vec<Vec<NodeId>> = Vec::with_capacity(groups.len());
        'next: for g in groups {
            for r in result.iter_mut() {
                // Sorted-merge intersection test.
                let (mut i, mut j) = (0, 0);
                while i < g.len() && j < r.len() {
                    match g[i].cmp(&r[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            r.extend_from_slice(&g);
                            r.sort_unstable();
                            r.dedup();
                            merged_any = true;
                            continue 'next;
                        }
                    }
                }
            }
            result.push(g);
        }
        groups = result;
        if !merged_any {
            groups.sort();
            return groups;
        }
    }
}

/// The strong-core decomposition of a hypergraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// Core number per node (0 for nodes in no hyperedge).
    pub node_core: Vec<u32>,
    /// The largest core number.
    pub max_core: u32,
}

impl CoreDecomposition {
    /// Nodes whose core number is at least `k`, ascending.
    pub fn core_nodes(&self, k: u32) -> Vec<NodeId> {
        self.node_core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// Computes the strong hypergraph core decomposition by min-degree
/// peeling: removing a node destroys every hyperedge containing it, and
/// a node's core number is the peeling threshold in force when it is
/// removed (the exact hypergraph analogue of Matula–Beck graph cores).
pub fn core_decomposition(h: &Hypergraph) -> CoreDecomposition {
    let edges = h.sorted_edges();
    let n = h.num_nodes() as usize;
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        for nd in e.nodes() {
            incident[nd.index()].push(i as u32);
        }
    }
    let mut degree: Vec<usize> = incident.iter().map(Vec::len).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v as u32);
    }
    let mut edge_alive = vec![true; edges.len()];
    let mut removed = vec![false; n];
    let mut node_core = vec![0u32; n];
    let mut current_k = 0u32;
    let mut cursor = 0usize;
    let mut processed = 0usize;
    while processed < n {
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let Some(v) = buckets[cursor].pop() else {
            break;
        };
        if removed[v as usize] || degree[v as usize] != cursor {
            continue; // stale bucket entry
        }
        removed[v as usize] = true;
        processed += 1;
        current_k = current_k.max(cursor as u32);
        node_core[v as usize] = current_k;
        for &ei in &incident[v as usize] {
            if !edge_alive[ei as usize] {
                continue;
            }
            edge_alive[ei as usize] = false;
            for u in edges[ei as usize].nodes() {
                let ui = u.index();
                if !removed[ui] {
                    let d = degree[ui];
                    degree[ui] = d - 1;
                    buckets[d - 1].push(u.0);
                    cursor = cursor.min(d - 1);
                }
            }
        }
    }
    let max_core = node_core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        node_core,
        max_core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperedge::edge;

    fn h_from(edges: &[&[u32]]) -> Hypergraph {
        let mut h = Hypergraph::new(0);
        for e in edges {
            h.add_edge(edge(e));
        }
        h
    }

    #[test]
    fn one_components_equal_plain_connectivity() {
        // Two chains of overlapping hyperedges plus an isolated pair.
        let h = h_from(&[&[0, 1, 2], &[2, 3], &[5, 6], &[6, 7, 8], &[10, 11]]);
        let comps = s_node_components(&h, 1);
        assert_eq!(
            comps,
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
                vec![NodeId(5), NodeId(6), NodeId(7), NodeId(8)],
                vec![NodeId(10), NodeId(11)],
            ]
        );
    }

    #[test]
    fn two_components_require_two_shared_nodes() {
        // Edges A={0,1,2}, B={1,2,3} share two nodes (2-adjacent);
        // C={3,4,5} shares only node 3 with B.
        let h = h_from(&[&[0, 1, 2], &[1, 2, 3], &[3, 4, 5]]);
        let c1 = s_edge_components(&h, 1);
        assert_eq!(c1.len(), 1);
        let c2 = s_edge_components(&h, 2);
        assert_eq!(c2.len(), 2);
        assert_eq!(c2[0], vec![0, 1]); // A-B joined
        assert_eq!(c2[1], vec![2]); // C alone
    }

    #[test]
    fn components_refine_as_s_grows() {
        let h = h_from(&[&[0, 1, 2, 3], &[2, 3, 4, 5], &[4, 5, 6], &[6, 7], &[0, 9]]);
        let mut prev = s_edge_components(&h, 1).len();
        for s in 2..=4 {
            let cur = s_edge_components(&h, s).len();
            assert!(cur >= prev, "components must not merge as s grows");
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "s >= 1")]
    fn zero_s_rejected() {
        let h = h_from(&[&[0, 1]]);
        s_edge_components(&h, 0);
    }

    #[test]
    fn graph_case_matches_classic_core_numbers() {
        // K4 on {0,1,2,3} as six pairwise edges, plus pendant 4-0.
        let h = h_from(&[
            &[0, 1],
            &[0, 2],
            &[0, 3],
            &[1, 2],
            &[1, 3],
            &[2, 3],
            &[0, 4],
        ]);
        let cd = core_decomposition(&h);
        assert_eq!(cd.max_core, 3);
        assert_eq!(&cd.node_core[0..4], &[3, 3, 3, 3]);
        assert_eq!(cd.node_core[4], 1);
        assert_eq!(
            cd.core_nodes(3),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn strong_core_destroys_whole_hyperedges() {
        // Triangle of 3-edges: {0,1,2}, {2,3,4}, {4,5,0} — every node has
        // degree ≤ 2; removing any node kills whole edges, cascading.
        let h = h_from(&[&[0, 1, 2], &[2, 3, 4], &[4, 5, 0]]);
        let cd = core_decomposition(&h);
        // Nodes 1, 3, 5 have degree 1 -> the 1-peel destroys everything.
        assert_eq!(cd.max_core, 1);
        assert!(cd.node_core.iter().all(|&c| c == 1));
    }

    #[test]
    fn dense_overlap_yields_higher_core() {
        // Four 3-edges all containing {0,1}: deg(0)=deg(1)=4, others 1..2.
        let h = h_from(&[&[0, 1, 2], &[0, 1, 3], &[0, 1, 4], &[0, 1, 5], &[2, 3]]);
        let cd = core_decomposition(&h);
        // Peeling at k=1 removes 4,5 (degree 1)... their edges die, which
        // drags 0,1 down; the decomposition is still well-defined and
        // bounded by the max degree.
        assert!(cd.max_core >= 1);
        assert!(cd.node_core[0] >= cd.node_core[2]);
    }

    #[test]
    fn empty_and_isolated_nodes_have_core_zero() {
        let mut h = Hypergraph::new(5);
        h.add_edge(edge(&[0, 1]));
        let cd = core_decomposition(&h);
        assert_eq!(cd.node_core[3], 0);
        assert_eq!(cd.node_core[4], 0);
        let empty = Hypergraph::new(3);
        let cd = core_decomposition(&empty);
        assert_eq!(cd.max_core, 0);
        assert!(cd.core_nodes(1).is_empty());
    }

    #[test]
    fn multiplicity_does_not_change_connectivity_or_cores() {
        let mut a = Hypergraph::new(0);
        a.add_edge(edge(&[0, 1, 2]));
        a.add_edge(edge(&[2, 3]));
        let mut b = a.clone();
        b.add_edge_with_multiplicity(edge(&[0, 1, 2]), 5);
        assert_eq!(s_node_components(&a, 1), s_node_components(&b, 1));
        assert_eq!(core_decomposition(&a), core_decomposition(&b));
    }
}
