//! Error type for the hypergraph substrate.

use std::fmt;
use std::io;

/// Errors produced by the hypergraph substrate (mostly I/O parsing).
#[derive(Debug)]
pub enum HypergraphError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line in a text-format file.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A structurally invalid edge (e.g. fewer than two distinct nodes).
    InvalidEdge(String),
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypergraphError::Io(e) => write!(f, "I/O error: {e}"),
            HypergraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            HypergraphError::InvalidEdge(msg) => write!(f, "invalid edge: {msg}"),
        }
    }
}

impl std::error::Error for HypergraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HypergraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HypergraphError {
    fn from(e: io::Error) -> Self {
        HypergraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = HypergraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e = HypergraphError::InvalidEdge("too small".into());
        assert!(e.to_string().contains("too small"));
    }

    #[test]
    fn io_error_round_trip() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: HypergraphError = io_err.into();
        assert!(e.to_string().contains("gone"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
