//! Hypergraph motifs (h-motifs) — Lee, Ko & Shin, PVLDB 2020 (the
//! paper's reference [28]).
//!
//! An h-motif describes the overlap pattern of three *connected* distinct
//! hyperedges `(a, b, c)` by the emptiness of the seven Venn regions
//! `a∖(b∪c), b∖(c∪a), c∖(a∪b), (a∩b)∖c, (b∩c)∖a, (c∩a)∖b, a∩b∩c`,
//! up to permutation of the three hyperedges — 26 non-degenerate classes
//! in total. The census of h-motif counts is a domain fingerprint: the
//! MARIOH paper leans on exactly this ("each domain has unique structural
//! patterns [28]") to justify same-domain supervision, and the census
//! gives this workspace a quantitative way to compare generated stand-ins
//! with their intended domains.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::hyperedge::Hyperedge;
use crate::hypergraph::Hypergraph;
use rand::Rng;

/// The 7-bit emptiness pattern of a hyperedge triple, canonicalised over
/// the 6 permutations of the triple. Bit layout (1 = region non-empty):
/// `0: a-only, 1: b-only, 2: c-only, 3: ab-only, 4: bc-only, 5: ca-only,
/// 6: abc`.
pub type MotifPattern = u8;

/// Census of h-motif occurrences, keyed by canonical pattern.
#[derive(Debug, Clone, Default)]
pub struct MotifCensus {
    counts: FxHashMap<MotifPattern, u64>,
    /// Number of connected triples inspected (= Σ counts).
    pub triples: u64,
    /// Whether the enumeration was truncated by the sampling budget.
    pub sampled: bool,
}

impl MotifCensus {
    /// Occurrences of one canonical pattern.
    pub fn count(&self, pattern: MotifPattern) -> u64 {
        self.counts.get(&pattern).copied().unwrap_or(0)
    }

    /// `(pattern, count)` pairs sorted by pattern — a stable fingerprint.
    pub fn sorted_counts(&self) -> Vec<(MotifPattern, u64)> {
        let mut v: Vec<(MotifPattern, u64)> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_unstable();
        v
    }

    /// The characteristic profile: counts normalised to sum 1, over the
    /// canonical pattern space (0 for unobserved patterns).
    pub fn profile(&self) -> Vec<(MotifPattern, f64)> {
        let total = self.triples.max(1) as f64;
        self.sorted_counts()
            .into_iter()
            .map(|(p, c)| (p, c as f64 / total))
            .collect()
    }
}

/// Computes the raw (un-canonicalised) 7-bit pattern of an ordered triple.
fn raw_pattern(a: &Hyperedge, b: &Hyperedge, c: &Hyperedge) -> u8 {
    let mut regions = [false; 7];
    let in_edge = |e: &Hyperedge, n| e.contains(n);
    for (idx, e) in [a, b, c].into_iter().enumerate() {
        for &n in e.nodes() {
            let ia = idx == 0 || in_edge(a, n);
            let ib = idx == 1 || in_edge(b, n);
            let ic = idx == 2 || in_edge(c, n);
            let region = match (ia, ib, ic) {
                (true, false, false) => 0,
                (false, true, false) => 1,
                (false, false, true) => 2,
                (true, true, false) => 3,
                (false, true, true) => 4,
                (true, false, true) => 5,
                (true, true, true) => 6,
                (false, false, false) => unreachable!("node belongs to its own edge"),
            };
            regions[region] = true;
        }
    }
    regions
        .iter()
        .enumerate()
        .fold(0u8, |acc, (i, &set)| acc | (u8::from(set) << i))
}

/// Permutes a raw pattern's bits according to a permutation of `(a,b,c)`.
fn permute_pattern(p: u8, perm: [usize; 3]) -> u8 {
    // Region indices under identity: singles [0,1,2], pairs keyed by the
    // *missing* edge: ab-only (missing c) = 3, bc-only (missing a) = 4,
    // ca-only (missing b) = 5.
    let single = |e: usize| -> u8 { (p >> e) & 1 };
    let pair_missing = [4u8, 5, 3]; // region index with edge i missing
    let pair = |missing: usize| -> u8 { (p >> pair_missing[missing]) & 1 };
    let mut out = 0u8;
    for (new_idx, &old_idx) in perm.iter().enumerate() {
        out |= single(old_idx) << new_idx;
    }
    for (new_missing, &old_missing) in perm.iter().enumerate() {
        out |= pair(old_missing) << pair_missing[new_missing];
    }
    out |= p & (1 << 6); // abc region is permutation-invariant
    out
}

/// Canonicalises a raw pattern: the minimum over all 6 permutations.
pub fn canonical_pattern(p: u8) -> MotifPattern {
    const PERMS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    PERMS
        .iter()
        .map(|&perm| permute_pattern(p, perm))
        .min()
        .expect("6 permutations")
}

/// Counts h-motifs over all connected triples of distinct hyperedges,
/// sampling uniformly once `budget` triples have been inspected.
///
/// Duplicate hyperedges (multiplicity > 1) count once, following the
/// h-motif definition over *distinct* hyperedges.
pub fn motif_census<R: Rng + ?Sized>(h: &Hypergraph, budget: u64, rng: &mut R) -> MotifCensus {
    let edges: Vec<&Hyperedge> = h.sorted_edges();
    let m = edges.len();
    let mut census = MotifCensus::default();
    if m < 3 {
        return census;
    }
    // Line-graph adjacency: hyperedges sharing >= 1 node.
    let mut by_node: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for (i, e) in edges.iter().enumerate() {
        for n in e.nodes() {
            by_node.entry(n.0).or_default().push(i);
        }
    }
    let mut neighbors: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); m];
    for ids in by_node.values() {
        for (x, &i) in ids.iter().enumerate() {
            for &j in &ids[x + 1..] {
                neighbors[i].insert(j);
                neighbors[j].insert(i);
            }
        }
    }
    let sorted_neighbors: Vec<Vec<usize>> = neighbors
        .iter()
        .map(|s| {
            let mut v: Vec<usize> = s.iter().copied().collect();
            v.sort_unstable();
            v
        })
        .collect();

    // Enumerate connected triples {i, j, k}: for each centre j and each
    // pair of its neighbours — covers wedges and triangles; triangles are
    // seen from up to three centres, so deduplicate triangles by counting
    // them only from their smallest member.
    let record = |i: usize, j: usize, k: usize, census: &mut MotifCensus| {
        let p = canonical_pattern(raw_pattern(edges[i], edges[j], edges[k]));
        *census.counts.entry(p).or_insert(0) += 1;
        census.triples += 1;
    };
    'outer: for (j, nbrs) in sorted_neighbors.iter().enumerate().take(m) {
        for (x, &i) in nbrs.iter().enumerate() {
            for &k in &nbrs[x + 1..] {
                let triangle = neighbors[i].contains(&k);
                if triangle && !(j < i && j < k) {
                    continue; // count triangles from their smallest member
                }
                if census.triples >= budget {
                    census.sampled = true;
                    break 'outer;
                }
                record(i, j, k, &mut census);
            }
        }
    }
    if census.sampled {
        // Top up with random connected triples so that the sampled census
        // is not biased toward low-index hyperedges.
        let extra = budget / 4;
        for _ in 0..extra {
            let j = rng.gen_range(0..m);
            let nbrs = &sorted_neighbors[j];
            if nbrs.len() < 2 {
                continue;
            }
            let a = nbrs[rng.gen_range(0..nbrs.len())];
            let b = nbrs[rng.gen_range(0..nbrs.len())];
            if a == b {
                continue;
            }
            record(a, j, b, &mut census);
        }
    }
    census
}

/// L1 distance between two censuses' characteristic profiles — a simple
/// domain-fingerprint distance in `[0, 2]`.
pub fn profile_distance(a: &MotifCensus, b: &MotifCensus) -> f64 {
    let pa: FxHashMap<MotifPattern, f64> = a.profile().into_iter().collect();
    let pb: FxHashMap<MotifPattern, f64> = b.profile().into_iter().collect();
    let keys: FxHashSet<MotifPattern> = pa.keys().chain(pb.keys()).copied().collect();
    keys.into_iter()
        .map(|k| (pa.get(&k).unwrap_or(&0.0) - pb.get(&k).unwrap_or(&0.0)).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperedge::edge;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn raw_pattern_of_disjointish_chain() {
        // a={0,1}, b={1,2}, c={2,3}: a-only {0}, b-only ∅, c-only {3},
        // ab {1}, bc {2}, ca ∅, abc ∅.
        let a = edge(&[0, 1]);
        let b = edge(&[1, 2]);
        let c = edge(&[2, 3]);
        let p = raw_pattern(&a, &b, &c);
        assert_eq!(p & 1, 1); // a-only
        assert_eq!((p >> 1) & 1, 0); // b-only empty
        assert_eq!((p >> 2) & 1, 1); // c-only
        assert_eq!((p >> 3) & 1, 1); // ab
        assert_eq!((p >> 4) & 1, 1); // bc
        assert_eq!((p >> 5) & 1, 0); // ca empty
        assert_eq!((p >> 6) & 1, 0); // abc empty
    }

    #[test]
    fn canonical_pattern_is_permutation_invariant() {
        let edges = [edge(&[0, 1, 2]), edge(&[2, 3]), edge(&[1, 2, 4])];
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let reference = canonical_pattern(raw_pattern(&edges[0], &edges[1], &edges[2]));
        for perm in perms {
            let p = canonical_pattern(raw_pattern(
                &edges[perm[0]],
                &edges[perm[1]],
                &edges[perm[2]],
            ));
            assert_eq!(p, reference, "permutation {perm:?}");
        }
    }

    #[test]
    fn census_counts_one_triple_for_three_edges() {
        let mut h = Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        h.add_edge(edge(&[1, 2]));
        h.add_edge(edge(&[2, 3]));
        let mut rng = StdRng::seed_from_u64(0);
        let census = motif_census(&h, 1_000, &mut rng);
        assert_eq!(census.triples, 1);
        assert!(!census.sampled);
        assert_eq!(census.sorted_counts().len(), 1);
    }

    #[test]
    fn disconnected_triples_are_not_counted() {
        let mut h = Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        h.add_edge(edge(&[2, 3]));
        h.add_edge(edge(&[4, 5]));
        let mut rng = StdRng::seed_from_u64(0);
        let census = motif_census(&h, 1_000, &mut rng);
        assert_eq!(census.triples, 0);
    }

    #[test]
    fn triangle_of_edges_counted_once() {
        // Three pairwise-overlapping hyperedges form one line-graph
        // triangle: exactly one triple.
        let mut h = Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        h.add_edge(edge(&[1, 2]));
        h.add_edge(edge(&[2, 0]));
        let mut rng = StdRng::seed_from_u64(0);
        let census = motif_census(&h, 1_000, &mut rng);
        assert_eq!(census.triples, 1);
    }

    #[test]
    fn profile_sums_to_one() {
        let mut h = Hypergraph::new(0);
        for b in 0..6u32 {
            h.add_edge(edge(&[b, b + 1, b + 2]));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let census = motif_census(&h, 10_000, &mut rng);
        assert!(census.triples > 0);
        let total: f64 = census.profile().iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profile_distance_zero_for_same_hypergraph() {
        let mut h = Hypergraph::new(0);
        for b in 0..5u32 {
            h.add_edge(edge(&[b, b + 1, b + 2]));
            h.add_edge(edge(&[b, b + 2]));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let a = motif_census(&h, 10_000, &mut rng);
        let b = motif_census(&h, 10_000, &mut rng);
        assert_eq!(profile_distance(&a, &b), 0.0);
    }

    #[test]
    fn different_domains_have_different_fingerprints() {
        // Chain-structured vs star-structured hypergraphs should differ.
        let mut chain = Hypergraph::new(0);
        for b in 0..10u32 {
            chain.add_edge(edge(&[b, b + 1, b + 2]));
        }
        let mut star = Hypergraph::new(0);
        for b in 1..11u32 {
            star.add_edge(edge(&[0, b, b + 20]));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let ca = motif_census(&chain, 10_000, &mut rng);
        let cb = motif_census(&star, 10_000, &mut rng);
        assert!(profile_distance(&ca, &cb) > 0.3);
    }

    #[test]
    fn budget_triggers_sampling() {
        let mut h = Hypergraph::new(0);
        for b in 0..30u32 {
            h.add_edge(edge(&[0, b + 1])); // star: many connected triples
        }
        let mut rng = StdRng::seed_from_u64(0);
        let census = motif_census(&h, 10, &mut rng);
        assert!(census.sampled);
        assert!(census.triples >= 10);
    }
}
