//! A round-frozen CSR snapshot of a [`ProjectedGraph`].
//!
//! [`ProjectedGraph`] stores one hash map per node because the
//! reconstruction loop *mutates* it (commits decrement edge weights).
//! Inside one enumeration/scoring pass, however, the graph is frozen:
//! every clique probe, MHH merge and feature read sees the same weights.
//! [`GraphView`] exploits that window with a compressed-sparse-row
//! layout — one offset array plus sorted `(neighbour, weight)` slices —
//! so hot-path queries become merges and binary searches over contiguous
//! memory instead of per-edge hash lookups.
//!
//! The freeze contract: a view is only valid as long as the graph it was
//! built from is not mutated. The search loop therefore builds one view
//! per scoring pass (mutation happens strictly *between* passes) and
//! drops it before committing.

use crate::graph::ProjectedGraph;
use crate::node::NodeId;

/// An immutable CSR snapshot of a [`ProjectedGraph`].
///
/// Per node `u`, `neighbors(u)` and `neighbor_weights(u)` are parallel
/// slices sorted by neighbour id. Every accessor returns exactly the same
/// value as its [`ProjectedGraph`] counterpart on the graph the view was
/// frozen from (property-tested), so the two representations are
/// interchangeable for read-only code.
#[derive(Debug, Clone)]
pub struct GraphView {
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s slice of `nbrs`/`weights`.
    offsets: Vec<usize>,
    nbrs: Vec<u32>,
    weights: Vec<u32>,
    weighted_degree: Vec<u64>,
    num_edges: usize,
    total_weight: u64,
}

impl GraphView {
    /// Snapshots `g` into CSR form. O(V + E log d) for the per-node sort.
    pub fn freeze(g: &ProjectedGraph) -> Self {
        let n = g.num_nodes() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut slots = 0usize;
        for u in 0..n {
            slots += g.degree(NodeId(u as u32));
            offsets.push(slots);
        }
        let mut nbrs = vec![0u32; slots];
        let mut weights = vec![0u32; slots];
        let mut weighted_degree = Vec::with_capacity(n);
        let mut row: Vec<(u32, u32)> = Vec::new();
        for (u, &start) in offsets.iter().take(n).enumerate() {
            let id = NodeId(u as u32);
            row.clear();
            row.extend(g.neighbors(id).map(|(v, w)| (v.0, w)));
            row.sort_unstable_by_key(|&(v, _)| v);
            for (i, &(v, w)) in row.iter().enumerate() {
                nbrs[start + i] = v;
                weights[start + i] = w;
            }
            weighted_degree.push(g.weighted_degree(id));
        }
        GraphView {
            offsets,
            nbrs,
            weights,
            weighted_degree,
            num_edges: g.num_edges(),
            total_weight: g.total_weight(),
        }
    }

    /// Number of nodes in the universe (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of edges with positive weight.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all edge weights over unordered pairs.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Number of directed adjacency slots (`2 × num_edges`); the length
    /// of any per-slot side array such as an MHH cache.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.nbrs.len()
    }

    /// Number of neighbours of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// Weighted degree `Σ_{v ∈ N(u)} ω_{u,v}`.
    #[inline]
    pub fn weighted_degree(&self, u: NodeId) -> u64 {
        self.weighted_degree[u.index()]
    }

    /// Neighbour ids of `u`, ascending.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        &self.nbrs[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// Weights parallel to [`GraphView::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, u: NodeId) -> &[u32] {
        &self.weights[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// Sorted neighbour ids and their weights as parallel slices.
    #[inline]
    pub fn neighbor_entries(&self, u: NodeId) -> (&[u32], &[u32]) {
        let range = self.offsets[u.index()]..self.offsets[u.index() + 1];
        (&self.nbrs[range.clone()], &self.weights[range])
    }

    /// Global slot index of the directed adjacency entry `(u, v)`, if the
    /// edge exists. Slots index [`GraphView::weight_at`] and per-slot side
    /// arrays.
    #[inline]
    pub fn slot(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let start = self.offsets[u.index()];
        let nbrs = &self.nbrs[start..self.offsets[u.index() + 1]];
        nbrs.binary_search(&v.0).ok().map(|i| start + i)
    }

    /// Weight stored at a directed slot returned by [`GraphView::slot`].
    #[inline]
    pub fn weight_at(&self, slot: usize) -> u32 {
        self.weights[slot]
    }

    /// Weight `ω_{u,v}`; zero when the edge is absent.
    #[inline]
    pub fn weight(&self, u: NodeId, v: NodeId) -> u32 {
        self.slot(u, v).map_or(0, |s| self.weights[s])
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.slot(u, v).is_some()
    }

    /// Whether every pair of distinct nodes in `nodes` is an edge.
    ///
    /// `nodes` must not contain duplicates.
    pub fn is_clique(&self, nodes: &[NodeId]) -> bool {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Size of `N(u) ∩ N(v)` by sorted merge — no allocation.
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let a = self.neighbors(u);
        let b = self.neighbors(v);
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Iterates over all edges `(u, v, ω)` with `u < v` in ascending
    /// `(u, v)` order — the same order as
    /// [`ProjectedGraph::sorted_edge_list`], without materialising it.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            let id = NodeId(u);
            let (nbrs, weights) = self.neighbor_entries(id);
            nbrs.iter()
                .zip(weights)
                .filter(move |&(&v, _)| u < v)
                .map(move |(&v, &w)| (id, NodeId(v), w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn random_graph(rng: &mut StdRng, nodes: u32, p: f64) -> ProjectedGraph {
        let mut g = ProjectedGraph::new(nodes);
        for u in 0..nodes {
            for v in u + 1..nodes {
                if rng.gen_bool(p) {
                    g.add_edge_weight(NodeId(u), NodeId(v), rng.gen_range(1..6));
                }
            }
        }
        g
    }

    #[test]
    fn view_matches_graph_on_every_accessor() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..25 {
            let nodes = rng.gen_range(1..30u32);
            let p = rng.gen_range(0.05..0.7);
            let g = random_graph(&mut rng, nodes, p);
            let view = GraphView::freeze(&g);

            assert_eq!(view.num_nodes(), g.num_nodes());
            assert_eq!(view.num_edges(), g.num_edges());
            assert_eq!(view.total_weight(), g.total_weight());
            assert_eq!(view.num_slots(), 2 * g.num_edges());
            assert_eq!(view.edges().collect::<Vec<_>>(), g.sorted_edge_list());

            for u in (0..nodes).map(NodeId) {
                assert_eq!(view.degree(u), g.degree(u));
                assert_eq!(view.weighted_degree(u), g.weighted_degree(u));
                let sorted: Vec<u32> = g.sorted_neighbors(u).iter().map(|v| v.0).collect();
                assert_eq!(view.neighbors(u), &sorted[..]);
                let (ids, ws) = view.neighbor_entries(u);
                assert_eq!(ids, view.neighbors(u));
                assert_eq!(ws, view.neighbor_weights(u));
                for v in (0..nodes).map(NodeId) {
                    assert_eq!(view.weight(u, v), g.weight(u, v));
                    assert_eq!(view.has_edge(u, v), g.has_edge(u, v));
                    if u < v {
                        assert_eq!(
                            view.common_neighbor_count(u, v),
                            g.common_neighbors(u, v).len()
                        );
                        assert_eq!(
                            view.common_neighbor_count(u, v),
                            g.common_neighbor_count(u, v)
                        );
                    }
                }
            }

            // Random subsets agree on cliqueness.
            for _ in 0..10 {
                let k = rng.gen_range(1..=4.min(nodes as usize));
                let mut subset: Vec<NodeId> = (0..nodes).map(NodeId).collect();
                for i in (1..subset.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    subset.swap(i, j);
                }
                let mut subset: Vec<NodeId> = subset.into_iter().take(k).collect();
                subset.sort_unstable();
                assert_eq!(view.is_clique(&subset), g.is_clique(&subset));
            }
        }
    }

    #[test]
    fn slot_round_trips_weights() {
        let mut g = ProjectedGraph::new(4);
        g.add_edge_weight(n(0), n(2), 5);
        g.add_edge_weight(n(0), n(1), 3);
        let view = GraphView::freeze(&g);
        let s = view.slot(n(0), n(2)).unwrap();
        assert_eq!(view.weight_at(s), 5);
        assert_eq!(view.slot(n(0), n(3)), None);
        assert_eq!(view.neighbors(n(0)), &[1, 2]);
        assert_eq!(view.neighbor_weights(n(0)), &[3, 5]);
    }

    #[test]
    fn empty_graph_view() {
        let view = GraphView::freeze(&ProjectedGraph::new(3));
        assert_eq!(view.num_nodes(), 3);
        assert_eq!(view.num_edges(), 0);
        assert_eq!(view.num_slots(), 0);
        assert!(view.edges().next().is_none());
        assert_eq!(view.common_neighbor_count(n(0), n(1)), 0);
    }
}
