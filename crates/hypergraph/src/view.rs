//! A round-frozen CSR snapshot of a [`ProjectedGraph`].
//!
//! [`ProjectedGraph`] stores one hash map per node because the
//! reconstruction loop *mutates* it (commits decrement edge weights).
//! Inside one enumeration/scoring pass, however, the graph is frozen:
//! every clique probe, MHH merge and feature read sees the same weights.
//! [`GraphView`] exploits that window with a compressed-sparse-row
//! layout — one offset array plus sorted `(neighbour, weight)` slices —
//! so hot-path queries become merges and binary searches over contiguous
//! memory instead of per-edge hash lookups.
//!
//! The freeze contract: a view is only valid as long as the graph it was
//! built from is not mutated — **unless** every mutation is mirrored into
//! the view through [`GraphView::decrement_entry`]. The search loop
//! builds one view per scoring pass and drops it before committing; the
//! cross-round incremental engine instead keeps one view alive for the
//! whole run and patches it in step with every commit, so the only
//! full-freeze cost is paid once.

use crate::graph::ProjectedGraph;
use crate::node::NodeId;

/// A CSR snapshot of a [`ProjectedGraph`], patchable in place.
///
/// Per node `u`, `neighbors(u)` and `neighbor_weights(u)` are parallel
/// slices sorted by neighbour id. Every accessor returns exactly the same
/// value as its [`ProjectedGraph`] counterpart on the graph the view was
/// frozen from (property-tested), so the two representations are
/// interchangeable for read-only code.
///
/// Reconstruction commits only ever *decrement* edges, so the view
/// supports exactly that mutation: [`GraphView::decrement_entry`] mirrors
/// [`ProjectedGraph::decrement_edge`]. Removing an edge compacts the two
/// endpoint rows in place (each row keeps its original capacity; the live
/// prefix length is tracked per row), which means **slot indices of
/// untouched rows never move** — the property the per-round MHH memo's
/// incremental patching relies on.
#[derive(Debug, Clone)]
pub struct GraphView {
    /// `offsets[u]..offsets[u + 1]` is `u`'s *capacity* range in
    /// `nbrs`/`weights`; the live entries are the first `lens[u]` of it.
    offsets: Vec<usize>,
    /// Live entries per row (equals the row capacity until an incident
    /// edge is removed).
    lens: Vec<usize>,
    nbrs: Vec<u32>,
    weights: Vec<u32>,
    weighted_degree: Vec<u64>,
    num_edges: usize,
    total_weight: u64,
}

impl GraphView {
    /// Snapshots `g` into CSR form. O(V + E log d) for the per-node sort.
    pub fn freeze(g: &ProjectedGraph) -> Self {
        let n = g.num_nodes() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut slots = 0usize;
        for u in 0..n {
            slots += g.degree(NodeId(u as u32));
            offsets.push(slots);
        }
        let mut nbrs = vec![0u32; slots];
        let mut weights = vec![0u32; slots];
        let mut weighted_degree = Vec::with_capacity(n);
        let mut lens = Vec::with_capacity(n);
        let mut row: Vec<(u32, u32)> = Vec::new();
        for (u, &start) in offsets.iter().take(n).enumerate() {
            let id = NodeId(u as u32);
            row.clear();
            row.extend(g.neighbors(id).map(|(v, w)| (v.0, w)));
            row.sort_unstable_by_key(|&(v, _)| v);
            for (i, &(v, w)) in row.iter().enumerate() {
                nbrs[start + i] = v;
                weights[start + i] = w;
            }
            lens.push(row.len());
            weighted_degree.push(g.weighted_degree(id));
        }
        GraphView {
            offsets,
            lens,
            nbrs,
            weights,
            weighted_degree,
            num_edges: g.num_edges(),
            total_weight: g.total_weight(),
        }
    }

    /// Number of nodes in the universe (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of edges with positive weight.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all edge weights over unordered pairs.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Capacity of the directed adjacency slot space — the length any
    /// per-slot side array (such as an MHH cache) must have. Equals
    /// `2 × num_edges` on a freshly frozen view; removals leave holes, so
    /// after patching it may exceed the live slot count.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.nbrs.len()
    }

    /// First slot index of `u`'s row; `u`'s live slots are
    /// `row_start(u) .. row_start(u) + degree(u)`.
    #[inline]
    pub fn row_start(&self, u: NodeId) -> usize {
        self.offsets[u.index()]
    }

    /// Number of neighbours of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.lens[u.index()]
    }

    /// Weighted degree `Σ_{v ∈ N(u)} ω_{u,v}`.
    #[inline]
    pub fn weighted_degree(&self, u: NodeId) -> u64 {
        self.weighted_degree[u.index()]
    }

    /// Neighbour ids of `u`, ascending.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        let start = self.offsets[u.index()];
        &self.nbrs[start..start + self.lens[u.index()]]
    }

    /// Weights parallel to [`GraphView::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, u: NodeId) -> &[u32] {
        let start = self.offsets[u.index()];
        &self.weights[start..start + self.lens[u.index()]]
    }

    /// Sorted neighbour ids and their weights as parallel slices.
    #[inline]
    pub fn neighbor_entries(&self, u: NodeId) -> (&[u32], &[u32]) {
        let start = self.offsets[u.index()];
        let range = start..start + self.lens[u.index()];
        (&self.nbrs[range.clone()], &self.weights[range])
    }

    /// Global slot index of the directed adjacency entry `(u, v)`, if the
    /// edge exists. Slots index [`GraphView::weight_at`] and per-slot side
    /// arrays.
    #[inline]
    pub fn slot(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let start = self.offsets[u.index()];
        let nbrs = &self.nbrs[start..start + self.lens[u.index()]];
        nbrs.binary_search(&v.0).ok().map(|i| start + i)
    }

    /// Weight stored at a directed slot returned by [`GraphView::slot`].
    #[inline]
    pub fn weight_at(&self, slot: usize) -> u32 {
        self.weights[slot]
    }

    /// Weight `ω_{u,v}`; zero when the edge is absent.
    #[inline]
    pub fn weight(&self, u: NodeId, v: NodeId) -> u32 {
        self.slot(u, v).map_or(0, |s| self.weights[s])
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.slot(u, v).is_some()
    }

    /// Whether every pair of distinct nodes in `nodes` is an edge.
    ///
    /// `nodes` must not contain duplicates.
    pub fn is_clique(&self, nodes: &[NodeId]) -> bool {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Size of `N(u) ∩ N(v)` — no allocation, dispatched to the active
    /// [`marioh_kernels`] intersection kernel (exact count at every
    /// level, so this stays interchangeable with the hash-map variant).
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        marioh_kernels::intersect_count(self.neighbors(u), self.neighbors(v))
    }

    /// Iterates over all edges `(u, v, ω)` with `u < v` in ascending
    /// `(u, v)` order — the same order as
    /// [`ProjectedGraph::sorted_edge_list`], without materialising it.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            let id = NodeId(u);
            let (nbrs, weights) = self.neighbor_entries(id);
            nbrs.iter()
                .zip(weights)
                .filter(move |&(&v, _)| u < v)
                .map(move |(&v, &w)| (id, NodeId(v), w))
        })
    }

    /// Decrements `ω_{u,v}` by `amount` (clamped), removing the edge when
    /// the weight reaches zero — the in-place mirror of
    /// [`ProjectedGraph::decrement_edge`]. Returns the amount actually
    /// removed.
    ///
    /// After mirroring every graph mutation through this method, all
    /// accessors return exactly what a fresh [`GraphView::freeze`] of the
    /// mutated graph would (property-tested). A removal compacts only the
    /// two endpoint rows, so slot indices of edges not incident to `u` or
    /// `v` are unaffected.
    pub fn decrement_entry(&mut self, u: NodeId, v: NodeId, amount: u32) -> u32 {
        let Some(su) = self.slot(u, v) else {
            return 0;
        };
        let sv = self.slot(v, u).expect("symmetric adjacency");
        let w = self.weights[su];
        let removed = amount.min(w);
        if removed == w {
            self.remove_slot(u, su);
            self.remove_slot(v, sv);
            self.num_edges -= 1;
        } else {
            self.weights[su] -= removed;
            self.weights[sv] -= removed;
        }
        self.weighted_degree[u.index()] -= u64::from(removed);
        self.weighted_degree[v.index()] -= u64::from(removed);
        self.total_weight -= u64::from(removed);
        removed
    }

    /// Decrements `ω_{u,v}` by one — the commit fast path, skipping the
    /// clamp/absence handling of [`GraphView::decrement_entry`]. Returns
    /// whether the edge was removed (its weight hit zero).
    ///
    /// # Panics
    ///
    /// Panics if `{u, v}` is not an edge; callers validate the whole
    /// clique against the view first.
    pub fn decrement_unit(&mut self, u: NodeId, v: NodeId) -> bool {
        let su = self.slot(u, v).expect("decrement_unit on absent edge");
        let sv = self.slot(v, u).expect("symmetric adjacency");
        let gone = self.weights[su] == 1;
        if gone {
            self.remove_slot(u, su);
            self.remove_slot(v, sv);
            self.num_edges -= 1;
        } else {
            self.weights[su] -= 1;
            self.weights[sv] -= 1;
        }
        self.weighted_degree[u.index()] -= 1;
        self.weighted_degree[v.index()] -= 1;
        self.total_weight -= 1;
        gone
    }

    /// Removes the live slot `s` from `u`'s row by shifting the row's
    /// tail left; the freed capacity slot at the row end becomes a hole.
    fn remove_slot(&mut self, u: NodeId, s: usize) {
        let start = self.offsets[u.index()];
        let end = start + self.lens[u.index()];
        debug_assert!((start..end).contains(&s));
        self.nbrs.copy_within(s + 1..end, s);
        self.weights.copy_within(s + 1..end, s);
        self.lens[u.index()] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn random_graph(rng: &mut StdRng, nodes: u32, p: f64) -> ProjectedGraph {
        let mut g = ProjectedGraph::new(nodes);
        for u in 0..nodes {
            for v in u + 1..nodes {
                if rng.gen_bool(p) {
                    g.add_edge_weight(NodeId(u), NodeId(v), rng.gen_range(1..6));
                }
            }
        }
        g
    }

    #[test]
    fn view_matches_graph_on_every_accessor() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..25 {
            let nodes = rng.gen_range(1..30u32);
            let p = rng.gen_range(0.05..0.7);
            let g = random_graph(&mut rng, nodes, p);
            let view = GraphView::freeze(&g);

            assert_eq!(view.num_nodes(), g.num_nodes());
            assert_eq!(view.num_edges(), g.num_edges());
            assert_eq!(view.total_weight(), g.total_weight());
            assert_eq!(view.num_slots(), 2 * g.num_edges());
            assert_eq!(view.edges().collect::<Vec<_>>(), g.sorted_edge_list());

            for u in (0..nodes).map(NodeId) {
                assert_eq!(view.degree(u), g.degree(u));
                assert_eq!(view.weighted_degree(u), g.weighted_degree(u));
                let sorted: Vec<u32> = g.sorted_neighbors(u).iter().map(|v| v.0).collect();
                assert_eq!(view.neighbors(u), &sorted[..]);
                let (ids, ws) = view.neighbor_entries(u);
                assert_eq!(ids, view.neighbors(u));
                assert_eq!(ws, view.neighbor_weights(u));
                for v in (0..nodes).map(NodeId) {
                    assert_eq!(view.weight(u, v), g.weight(u, v));
                    assert_eq!(view.has_edge(u, v), g.has_edge(u, v));
                    if u < v {
                        assert_eq!(
                            view.common_neighbor_count(u, v),
                            g.common_neighbors(u, v).len()
                        );
                        assert_eq!(
                            view.common_neighbor_count(u, v),
                            g.common_neighbor_count(u, v)
                        );
                    }
                }
            }

            // Random subsets agree on cliqueness.
            for _ in 0..10 {
                let k = rng.gen_range(1..=4.min(nodes as usize));
                let mut subset: Vec<NodeId> = (0..nodes).map(NodeId).collect();
                for i in (1..subset.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    subset.swap(i, j);
                }
                let mut subset: Vec<NodeId> = subset.into_iter().take(k).collect();
                subset.sort_unstable();
                assert_eq!(view.is_clique(&subset), g.is_clique(&subset));
            }
        }
    }

    #[test]
    fn slot_round_trips_weights() {
        let mut g = ProjectedGraph::new(4);
        g.add_edge_weight(n(0), n(2), 5);
        g.add_edge_weight(n(0), n(1), 3);
        let view = GraphView::freeze(&g);
        let s = view.slot(n(0), n(2)).unwrap();
        assert_eq!(view.weight_at(s), 5);
        assert_eq!(view.slot(n(0), n(3)), None);
        assert_eq!(view.neighbors(n(0)), &[1, 2]);
        assert_eq!(view.neighbor_weights(n(0)), &[3, 5]);
    }

    #[test]
    fn empty_graph_view() {
        let view = GraphView::freeze(&ProjectedGraph::new(3));
        assert_eq!(view.num_nodes(), 3);
        assert_eq!(view.num_edges(), 0);
        assert_eq!(view.num_slots(), 0);
        assert!(view.edges().next().is_none());
        assert_eq!(view.common_neighbor_count(n(0), n(1)), 0);
    }

    /// Every accessor of `view` agrees with a fresh freeze of `g`
    /// (ignoring slot-capacity bookkeeping, which holes are allowed to
    /// inflate).
    fn assert_matches_fresh_freeze(view: &GraphView, g: &ProjectedGraph) {
        let fresh = GraphView::freeze(g);
        assert_eq!(view.num_nodes(), fresh.num_nodes());
        assert_eq!(view.num_edges(), fresh.num_edges());
        assert_eq!(view.total_weight(), fresh.total_weight());
        assert_eq!(
            view.edges().collect::<Vec<_>>(),
            fresh.edges().collect::<Vec<_>>()
        );
        for u in (0..view.num_nodes()).map(NodeId) {
            assert_eq!(view.degree(u), fresh.degree(u));
            assert_eq!(view.weighted_degree(u), fresh.weighted_degree(u));
            assert_eq!(view.neighbors(u), fresh.neighbors(u));
            assert_eq!(view.neighbor_weights(u), fresh.neighbor_weights(u));
            for v in (0..view.num_nodes()).map(NodeId) {
                assert_eq!(view.weight(u, v), fresh.weight(u, v));
                assert_eq!(view.has_edge(u, v), fresh.has_edge(u, v));
                if u < v {
                    assert_eq!(
                        view.common_neighbor_count(u, v),
                        fresh.common_neighbor_count(u, v)
                    );
                }
            }
        }
    }

    #[test]
    fn patched_view_matches_fresh_freeze_after_random_decrements() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let nodes = rng.gen_range(2..25u32);
            let mut g = random_graph(&mut rng, nodes, 0.4);
            let mut view = GraphView::freeze(&g);
            for _ in 0..40 {
                let u = NodeId(rng.gen_range(0..nodes));
                let v = NodeId(rng.gen_range(0..nodes));
                if u == v {
                    continue;
                }
                let amount = rng.gen_range(1..4u32);
                let removed_g = g.decrement_edge(u, v, amount);
                let removed_v = view.decrement_entry(u, v, amount);
                assert_eq!(removed_g, removed_v);
            }
            assert_matches_fresh_freeze(&view, &g);
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn removal_keeps_untouched_rows_slot_stable() {
        // A path 0-1-2-3 plus an edge (0,3): removing (1,2) must not move
        // the slots of row 0 or row 3.
        let mut g = ProjectedGraph::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
            g.add_edge_weight(n(u), n(v), 2);
        }
        let mut view = GraphView::freeze(&g);
        let s01 = view.slot(n(0), n(1)).unwrap();
        let s03 = view.slot(n(0), n(3)).unwrap();
        let s32 = view.slot(n(3), n(2)).unwrap();
        assert_eq!(view.decrement_entry(n(1), n(2), 9), 2);
        assert_eq!(view.slot(n(0), n(1)), Some(s01));
        assert_eq!(view.slot(n(0), n(3)), Some(s03));
        assert_eq!(view.slot(n(3), n(2)), Some(s32));
        assert_eq!(view.slot(n(1), n(2)), None);
        assert_eq!(view.decrement_entry(n(1), n(2), 1), 0);
        assert_eq!(view.num_edges(), 3);
        // Capacity is unchanged; only live lengths shrank.
        assert_eq!(view.num_slots(), 8);
    }
}
