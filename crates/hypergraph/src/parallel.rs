//! Parallel maximal-clique enumeration.
//!
//! Clique enumeration dominates MARIOH's bidirectional-search runtime on
//! dense graphs (Fig. 6), and the Bron–Kerbosch outer loop over the
//! degeneracy ordering is embarrassingly parallel: each root vertex's
//! subproblem touches only the immutable adjacency snapshot. Workers pull
//! root vertices from a shared atomic counter (hub vertices make static
//! chunking lopsided), and the merged output is sorted so results are
//! byte-identical to [`maximal_cliques`] regardless of thread count.
//!
//! Scoped `std::thread` is all this needs — no crossbeam dependency.

use crate::clique::{bk_pivot, degeneracy_ordering, maximal_cliques, Snapshot};
use crate::graph::ProjectedGraph;
use crate::node::NodeId;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Enumerates all maximal cliques of `g` (size ≥ 2) on `threads` worker
/// threads. Output is identical (including order) to
/// [`maximal_cliques`]; `threads <= 1` delegates to the serial
/// implementation.
pub fn maximal_cliques_parallel(g: &ProjectedGraph, threads: usize) -> Vec<Vec<NodeId>> {
    if threads <= 1 {
        return maximal_cliques(g);
    }
    let snap = Snapshot::new(g);
    let order = degeneracy_ordering(g);
    if order.is_empty() {
        return Vec::new();
    }
    let mut rank = vec![0u32; g.num_nodes() as usize];
    for (i, u) in order.iter().enumerate() {
        rank[u.index()] = i as u32;
    }

    let next = AtomicUsize::new(0);
    let mut shards: Vec<Vec<Vec<u32>>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let snap = &snap;
                let order = &order;
                let rank = &rank;
                let next = &next;
                scope.spawn(move || {
                    let mut out: Vec<Vec<u32>> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&u) = order.get(i) else {
                            break;
                        };
                        let nbrs = snap.neighbors(u.0);
                        let mut p: Vec<u32> = Vec::new();
                        let mut x: Vec<u32> = Vec::new();
                        for &v in nbrs {
                            if rank[v as usize] > rank[u.index()] {
                                p.push(v);
                            } else {
                                x.push(v);
                            }
                        }
                        let mut r = vec![u.0];
                        bk_pivot(snap, &mut r, p, x, &mut out, usize::MAX);
                    }
                    out
                })
            })
            .collect();
        shards = handles
            .into_iter()
            .map(|h| h.join().expect("clique worker panicked"))
            .collect();
    });

    let total: usize = shards.iter().map(Vec::len).sum();
    let mut all: Vec<Vec<u32>> = Vec::with_capacity(total);
    for shard in shards {
        all.extend(shard);
    }
    all.sort_unstable();
    all.into_iter()
        .map(|c| c.into_iter().map(NodeId).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: u32, p: f64) -> ProjectedGraph {
        let mut g = ProjectedGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if rng.gen_bool(p) {
                    g.add_edge_weight(NodeId(u), NodeId(v), 1);
                }
            }
        }
        g
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..12 {
            let n = rng.gen_range(2..40u32);
            let p = rng.gen_range(0.05..0.6);
            let g = random_graph(&mut rng, n, p);
            let serial = maximal_cliques(&g);
            for threads in [2, 3, 8] {
                assert_eq!(
                    maximal_cliques_parallel(&g, threads),
                    serial,
                    "n={n} p={p} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = random_graph(&mut rng, 20, 0.3);
        assert_eq!(maximal_cliques_parallel(&g, 1), maximal_cliques(&g));
        assert_eq!(maximal_cliques_parallel(&g, 0), maximal_cliques(&g));
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = ProjectedGraph::new(7);
        assert!(maximal_cliques_parallel(&g, 4).is_empty());
    }

    #[test]
    fn more_threads_than_vertices() {
        let mut g = ProjectedGraph::new(3);
        g.add_edge_weight(NodeId(0), NodeId(1), 1);
        g.add_edge_weight(NodeId(1), NodeId(2), 1);
        let cliques = maximal_cliques_parallel(&g, 64);
        assert_eq!(
            cliques,
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]]
        );
    }

    #[test]
    fn dense_graph_single_clique() {
        let mut g = ProjectedGraph::new(10);
        for u in 0..10u32 {
            for v in u + 1..10 {
                g.add_edge_weight(NodeId(u), NodeId(v), 1);
            }
        }
        let cliques = maximal_cliques_parallel(&g, 4);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 10);
    }
}
