//! Parallel maximal-clique enumeration.
//!
//! Clique enumeration dominates MARIOH's bidirectional-search runtime on
//! dense graphs (Fig. 6), and the Bron–Kerbosch outer loop over the
//! degeneracy ordering is embarrassingly parallel: each root vertex's
//! subproblem touches only the immutable adjacency snapshot. Workers pull
//! root vertices from a shared atomic counter (hub vertices make static
//! chunking lopsided), and the merged output is sorted so results are
//! byte-identical to [`crate::clique::maximal_cliques`] regardless of
//! thread count.
//!
//! Fan-out goes through a [`WorkerPool`] — the search engine keeps one
//! alive across all rounds of a run, so repeated rounds never pay thread
//! spawns — and small graphs skip the pool entirely: below
//! [`ENUM_PARALLEL_MIN_EDGES`] edges, enumeration is cheaper than waking
//! the workers (the measured 2/4-thread regressions on the small Table-1
//! datasets), so the serial path runs regardless of the requested thread
//! count. Results are identical either way.

use crate::clique::{
    bk_pivot, bk_pivot_region, degeneracy_ordering_view, region_roots_local, root_split,
};
use crate::graph::ProjectedGraph;
use crate::node::NodeId;
use crate::pool::WorkerPool;
use crate::view::GraphView;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Below this many edges, Bron–Kerbosch over the whole graph is cheaper
/// than fanning root subproblems out, so enumeration stays serial.
pub const ENUM_PARALLEL_MIN_EDGES: usize = 8192;

/// Whether fanning full enumeration out is worth the dispatch cost.
/// Edge count alone misjudges *dense* graphs — Bron–Kerbosch cost grows
/// with density, not edge count, so a small-but-dense graph (average
/// degree ≥ 32) still fans out even under the edge floor.
pub fn enumeration_parallel_worthwhile(view: &GraphView) -> bool {
    let e = view.num_edges();
    e >= ENUM_PARALLEL_MIN_EDGES || e >= 16 * view.num_nodes() as usize
}

/// Enumerates all maximal cliques of `g` (size ≥ 2) on `threads` worker
/// threads. Output is identical (including order) to
/// [`crate::clique::maximal_cliques`] for any thread count.
///
/// Callers that already hold a round-frozen [`GraphView`] should use
/// [`maximal_cliques_view`] instead and skip the snapshot rebuild.
pub fn maximal_cliques_parallel(g: &ProjectedGraph, threads: usize) -> Vec<Vec<NodeId>> {
    maximal_cliques_view(&GraphView::freeze(g), threads)
}

/// Enumerates all maximal cliques (size ≥ 2) of a frozen [`GraphView`].
/// When `threads > 1` *and* [`enumeration_parallel_worthwhile`] says the
/// graph can amortise the dispatch, root subproblems fan out over a
/// transient [`WorkerPool`]; otherwise the serial path runs. The view is
/// the *only* structure consulted, so the search loop shares one view
/// between enumeration and scoring.
///
/// Output is sorted, hence identical for any thread count and equal to
/// [`crate::clique::maximal_cliques`] on the source graph.
pub fn maximal_cliques_view(view: &GraphView, threads: usize) -> Vec<Vec<NodeId>> {
    if threads <= 1 || !enumeration_parallel_worthwhile(view) {
        let (order, rank) = ordering(view);
        return enumerate_roots_serial(view, &rank, &order, None);
    }
    let pool = WorkerPool::new(threads);
    maximal_cliques_pool(view, &pool)
}

/// Computes a degeneracy ordering of `view` and its inverse rank array —
/// the pair every `*_ranked` enumeration entry point consumes. Any
/// permutation yields the correct (sorted) clique set; a degeneracy
/// ordering gives the Eppstein–Löffler–Strash complexity bound, so
/// callers that cache the pair across rounds of a shrinking graph
/// (degrees only decrease) keep near-optimal behaviour without an
/// `O(V + E)` recomputation per round.
pub fn ordering(view: &GraphView) -> (Vec<NodeId>, Vec<u32>) {
    let order = degeneracy_ordering_view(view);
    let mut rank = vec![0u32; view.num_nodes() as usize];
    for (i, u) in order.iter().enumerate() {
        rank[u.index()] = i as u32;
    }
    (order, rank)
}

/// [`maximal_cliques_view`] with a caller-provided (possibly cached)
/// ordering: enumeration itself, no `O(V + E)` ordering pass. `rank`
/// must be the inverse permutation of `order`.
pub fn maximal_cliques_ranked(
    view: &GraphView,
    order: &[NodeId],
    rank: &[u32],
) -> Vec<Vec<NodeId>> {
    enumerate_roots_serial(view, rank, order, None)
}

/// [`maximal_cliques_ranked`] fanned out over a caller-owned pool.
pub fn maximal_cliques_ranked_pool(
    view: &GraphView,
    order: &[NodeId],
    rank: &[u32],
    pool: &WorkerPool,
) -> Vec<Vec<NodeId>> {
    if pool.threads() <= 1 {
        return enumerate_roots_serial(view, rank, order, None);
    }
    enumerate_roots_pool(view, rank, order, None, pool)
}

/// Region enumeration with a cached ordering and the dirty vertex *list*
/// (`dirty_list` deduplicated, `dirty` its membership mask): root
/// candidates are derived from the dirty side in `O(Σ deg(De))` instead
/// of scanning every vertex. Output identical to
/// [`crate::clique::maximal_cliques_region`].
pub fn maximal_cliques_region_ranked(
    view: &GraphView,
    rank: &[u32],
    dirty_list: &[NodeId],
    dirty: &[bool],
) -> Vec<Vec<NodeId>> {
    let roots = region_roots_local(view, rank, dirty_list);
    enumerate_roots_serial(view, rank, &roots, Some(dirty))
}

/// [`maximal_cliques_region_ranked`] fanned out over a caller-owned pool.
pub fn maximal_cliques_region_ranked_pool(
    view: &GraphView,
    rank: &[u32],
    dirty_list: &[NodeId],
    dirty: &[bool],
    pool: &WorkerPool,
) -> Vec<Vec<NodeId>> {
    let roots = region_roots_local(view, rank, dirty_list);
    if pool.threads() <= 1 {
        return enumerate_roots_serial(view, rank, &roots, Some(dirty));
    }
    enumerate_roots_pool(view, rank, &roots, Some(dirty), pool)
}

/// [`maximal_cliques_view`] against a caller-owned [`WorkerPool`] — the
/// cross-round engine's entry point, which skips both the snapshot
/// rebuild *and* the per-round thread spawns. Always fans out (callers
/// apply their own work thresholds); a 1-thread pool runs inline.
pub fn maximal_cliques_pool(view: &GraphView, pool: &WorkerPool) -> Vec<Vec<NodeId>> {
    let (order, rank) = ordering(view);
    maximal_cliques_ranked_pool(view, &order, &rank, pool)
}

/// Enumerates exactly the maximal cliques (size ≥ 2) containing a
/// `dirty` vertex, fanning the region's root subproblems out over
/// `pool`. Sorted output, identical to
/// [`crate::clique::maximal_cliques_region`].
pub fn maximal_cliques_region_pool(
    view: &GraphView,
    dirty: &[bool],
    pool: &WorkerPool,
) -> Vec<Vec<NodeId>> {
    assert_eq!(dirty.len(), view.num_nodes() as usize, "dirty mask size");
    let dirty_list: Vec<NodeId> = dirty
        .iter()
        .enumerate()
        .filter_map(|(u, &d)| d.then_some(NodeId(u as u32)))
        .collect();
    let (_, rank) = ordering(view);
    maximal_cliques_region_ranked_pool(view, &rank, &dirty_list, dirty, pool)
}

/// Serial Bron–Kerbosch over the given root vertices (full enumeration
/// when `roots` is the whole ordering, region enumeration when a dirty
/// mask restricts emission).
fn enumerate_roots_serial(
    view: &GraphView,
    rank: &[u32],
    roots: &[NodeId],
    region: Option<&[bool]>,
) -> Vec<Vec<NodeId>> {
    let mut all: Vec<Vec<u32>> = Vec::new();
    for &u in roots {
        let (p, x) = root_split(view, rank, u);
        let mut r = vec![u.0];
        match region {
            None => {
                bk_pivot(view, &mut r, p, x, &mut all, usize::MAX);
            }
            Some(dirty) => {
                bk_pivot_region(view, &mut r, dirty[u.index()], p, x, dirty, &mut all);
            }
        }
    }
    finish(all)
}

/// Pool-fanned enumeration: workers pull roots off an atomic counter into
/// per-worker shards, merged and sorted at the end.
fn enumerate_roots_pool(
    view: &GraphView,
    rank: &[u32],
    roots: &[NodeId],
    region: Option<&[bool]>,
    pool: &WorkerPool,
) -> Vec<Vec<NodeId>> {
    if roots.is_empty() {
        return Vec::new();
    }
    let workers = pool.threads();
    let next = AtomicUsize::new(0);
    let shards: Vec<Mutex<Vec<Vec<u32>>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    pool.run(&|w| {
        let mut out: Vec<Vec<u32>> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&u) = roots.get(i) else {
                break;
            };
            let (p, x) = root_split(view, rank, u);
            let mut r = vec![u.0];
            match region {
                None => {
                    bk_pivot(view, &mut r, p, x, &mut out, usize::MAX);
                }
                Some(dirty) => {
                    bk_pivot_region(view, &mut r, dirty[u.index()], p, x, dirty, &mut out);
                }
            }
        }
        *shards[w].lock().expect("shard poisoned") = out;
    });
    let mut all: Vec<Vec<u32>> = Vec::new();
    let total: usize = shards
        .iter()
        .map(|s| s.lock().expect("shard poisoned").len())
        .sum();
    all.reserve(total);
    for shard in shards {
        all.extend(shard.into_inner().expect("shard poisoned"));
    }
    finish(all)
}

fn finish(mut all: Vec<Vec<u32>>) -> Vec<Vec<NodeId>> {
    all.sort_unstable();
    all.into_iter()
        .map(|c| c.into_iter().map(NodeId).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::{maximal_cliques, maximal_cliques_region};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: u32, p: f64) -> ProjectedGraph {
        let mut g = ProjectedGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if rng.gen_bool(p) {
                    g.add_edge_weight(NodeId(u), NodeId(v), 1);
                }
            }
        }
        g
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..12 {
            let n = rng.gen_range(2..40u32);
            let p = rng.gen_range(0.05..0.6);
            let g = random_graph(&mut rng, n, p);
            let serial = maximal_cliques(&g);
            for threads in [2, 3, 8] {
                assert_eq!(
                    maximal_cliques_parallel(&g, threads),
                    serial,
                    "n={n} p={p} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn pool_enumeration_matches_serial_even_below_threshold() {
        // `maximal_cliques_pool` has no size gate, so small graphs still
        // exercise the fanned-out path.
        let mut rng = StdRng::seed_from_u64(14);
        let pool = WorkerPool::new(4);
        for _ in 0..10 {
            let n = rng.gen_range(2..35u32);
            let g = random_graph(&mut rng, n, 0.4);
            let view = GraphView::freeze(&g);
            assert_eq!(maximal_cliques_pool(&view, &pool), maximal_cliques(&g));
        }
    }

    #[test]
    fn region_pool_matches_serial_region() {
        let mut rng = StdRng::seed_from_u64(15);
        let pool = WorkerPool::new(3);
        for _ in 0..10 {
            let n = rng.gen_range(2..30u32);
            let g = random_graph(&mut rng, n, 0.45);
            let view = GraphView::freeze(&g);
            let dirty: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.3)).collect();
            assert_eq!(
                maximal_cliques_region_pool(&view, &dirty, &pool),
                maximal_cliques_region(&view, &dirty)
            );
        }
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = random_graph(&mut rng, 20, 0.3);
        assert_eq!(maximal_cliques_parallel(&g, 1), maximal_cliques(&g));
        assert_eq!(maximal_cliques_parallel(&g, 0), maximal_cliques(&g));
    }

    #[test]
    fn prebuilt_view_matches_graph_enumeration() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..8 {
            let n = rng.gen_range(2..30u32);
            let g = random_graph(&mut rng, n, 0.35);
            let view = GraphView::freeze(&g);
            let serial = maximal_cliques(&g);
            for threads in [1, 2, 4] {
                assert_eq!(maximal_cliques_view(&view, threads), serial);
            }
        }
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = ProjectedGraph::new(7);
        assert!(maximal_cliques_parallel(&g, 4).is_empty());
        let pool = WorkerPool::new(4);
        assert!(maximal_cliques_pool(&GraphView::freeze(&g), &pool).is_empty());
    }

    #[test]
    fn more_threads_than_vertices() {
        let mut g = ProjectedGraph::new(3);
        g.add_edge_weight(NodeId(0), NodeId(1), 1);
        g.add_edge_weight(NodeId(1), NodeId(2), 1);
        let pool = WorkerPool::new(64);
        let cliques = maximal_cliques_pool(&GraphView::freeze(&g), &pool);
        assert_eq!(
            cliques,
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]]
        );
    }

    #[test]
    fn dense_graph_single_clique() {
        let mut g = ProjectedGraph::new(10);
        for u in 0..10u32 {
            for v in u + 1..10 {
                g.add_edge_weight(NodeId(u), NodeId(v), 1);
            }
        }
        let cliques = maximal_cliques_parallel(&g, 4);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 10);
    }
}
