//! Parallel maximal-clique enumeration.
//!
//! Clique enumeration dominates MARIOH's bidirectional-search runtime on
//! dense graphs (Fig. 6), and the Bron–Kerbosch outer loop over the
//! degeneracy ordering is embarrassingly parallel: each root vertex's
//! subproblem touches only the immutable adjacency snapshot. Workers pull
//! root vertices from a shared atomic counter (hub vertices make static
//! chunking lopsided), and the merged output is sorted so results are
//! byte-identical to [`maximal_cliques`] regardless of thread count.
//!
//! Scoped `std::thread` is all this needs — no crossbeam dependency.

use crate::clique::{bk_pivot, degeneracy_ordering_view, root_split};
use crate::graph::ProjectedGraph;
use crate::node::NodeId;
use crate::view::GraphView;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Enumerates all maximal cliques of `g` (size ≥ 2) on `threads` worker
/// threads. Output is identical (including order) to
/// [`crate::clique::maximal_cliques`] for any thread count.
///
/// Callers that already hold a round-frozen [`GraphView`] should use
/// [`maximal_cliques_view`] instead and skip the snapshot rebuild.
pub fn maximal_cliques_parallel(g: &ProjectedGraph, threads: usize) -> Vec<Vec<NodeId>> {
    maximal_cliques_view(&GraphView::freeze(g), threads)
}

/// Enumerates all maximal cliques (size ≥ 2) of a frozen [`GraphView`],
/// fanning root subproblems out over `threads` workers (`<= 1` runs
/// serially). The view is the *only* structure consulted — no hash-map
/// graph, no duplicate snapshot or ordering construction — so the search
/// loop shares one view between enumeration and scoring.
///
/// Output is sorted, hence identical for any thread count and equal to
/// [`crate::clique::maximal_cliques`] on the source graph.
pub fn maximal_cliques_view(view: &GraphView, threads: usize) -> Vec<Vec<NodeId>> {
    let order = degeneracy_ordering_view(view);
    if order.is_empty() {
        return Vec::new();
    }
    let mut rank = vec![0u32; view.num_nodes() as usize];
    for (i, u) in order.iter().enumerate() {
        rank[u.index()] = i as u32;
    }

    let mut all: Vec<Vec<u32>> = Vec::new();
    if threads <= 1 {
        for &u in &order {
            let (p, x) = root_split(view, &rank, u);
            let mut r = vec![u.0];
            bk_pivot(view, &mut r, p, x, &mut all, usize::MAX);
        }
    } else {
        // Workers pull root vertices from a shared atomic counter (hub
        // vertices make static chunking lopsided).
        let next = AtomicUsize::new(0);
        let mut shards: Vec<Vec<Vec<u32>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let order = &order;
                    let rank = &rank;
                    let next = &next;
                    scope.spawn(move || {
                        let mut out: Vec<Vec<u32>> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&u) = order.get(i) else {
                                break;
                            };
                            let (p, x) = root_split(view, rank, u);
                            let mut r = vec![u.0];
                            bk_pivot(view, &mut r, p, x, &mut out, usize::MAX);
                        }
                        out
                    })
                })
                .collect();
            shards = handles
                .into_iter()
                .map(|h| h.join().expect("clique worker panicked"))
                .collect();
        });
        let total: usize = shards.iter().map(Vec::len).sum();
        all.reserve(total);
        for shard in shards {
            all.extend(shard);
        }
    }
    all.sort_unstable();
    all.into_iter()
        .map(|c| c.into_iter().map(NodeId).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::maximal_cliques;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(rng: &mut StdRng, n: u32, p: f64) -> ProjectedGraph {
        let mut g = ProjectedGraph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if rng.gen_bool(p) {
                    g.add_edge_weight(NodeId(u), NodeId(v), 1);
                }
            }
        }
        g
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..12 {
            let n = rng.gen_range(2..40u32);
            let p = rng.gen_range(0.05..0.6);
            let g = random_graph(&mut rng, n, p);
            let serial = maximal_cliques(&g);
            for threads in [2, 3, 8] {
                assert_eq!(
                    maximal_cliques_parallel(&g, threads),
                    serial,
                    "n={n} p={p} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = random_graph(&mut rng, 20, 0.3);
        assert_eq!(maximal_cliques_parallel(&g, 1), maximal_cliques(&g));
        assert_eq!(maximal_cliques_parallel(&g, 0), maximal_cliques(&g));
    }

    #[test]
    fn prebuilt_view_matches_graph_enumeration() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..8 {
            let n = rng.gen_range(2..30u32);
            let g = random_graph(&mut rng, n, 0.35);
            let view = GraphView::freeze(&g);
            let serial = maximal_cliques(&g);
            for threads in [1, 2, 4] {
                assert_eq!(maximal_cliques_view(&view, threads), serial);
            }
        }
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = ProjectedGraph::new(7);
        assert!(maximal_cliques_parallel(&g, 4).is_empty());
    }

    #[test]
    fn more_threads_than_vertices() {
        let mut g = ProjectedGraph::new(3);
        g.add_edge_weight(NodeId(0), NodeId(1), 1);
        g.add_edge_weight(NodeId(1), NodeId(2), 1);
        let cliques = maximal_cliques_parallel(&g, 64);
        assert_eq!(
            cliques,
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]]
        );
    }

    #[test]
    fn dense_graph_single_clique() {
        let mut g = ProjectedGraph::new(10);
        for u in 0..10u32 {
            for v in u + 1..10 {
                g.add_edge_weight(NodeId(u), NodeId(v), 1);
            }
        }
        let cliques = maximal_cliques_parallel(&g, 4);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 10);
    }
}
