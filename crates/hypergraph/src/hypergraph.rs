//! The multiset hypergraph `H = (V, E*, M)`.

use crate::fxhash::FxHashMap;
use crate::hyperedge::Hyperedge;
use crate::node::NodeId;

/// A hypergraph over nodes `0..num_nodes()`, with a *multiset* of
/// hyperedges.
///
/// Following Sect. II-A of the paper, the multiset `E*` is represented as
/// the set of unique hyperedges `E` plus a multiplicity function
/// `M : E → ℕ` (stored as one hash map from canonical hyperedge to count).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hypergraph {
    num_nodes: u32,
    edges: FxHashMap<Hyperedge, u32>,
    /// Total multiplicity, i.e. |E*| = Σ_e M(e). Maintained incrementally.
    total_multiplicity: u64,
}

impl Hypergraph {
    /// Creates an empty hypergraph over `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> Self {
        Hypergraph {
            num_nodes,
            edges: FxHashMap::default(),
            total_multiplicity: 0,
        }
    }

    /// The size of the node universe `|V|` (including isolated nodes).
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Grows the node universe to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: u32) {
        self.num_nodes = self.num_nodes.max(n);
    }

    /// Adds `count` copies of `edge` to the multiset.
    ///
    /// Nodes outside the current universe grow it automatically.
    pub fn add_edge_with_multiplicity(&mut self, edge: Hyperedge, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(&max) = edge.nodes().last() {
            self.ensure_nodes(max.0 + 1);
        }
        self.total_multiplicity += u64::from(count);
        *self.edges.entry(edge).or_insert(0) += count;
    }

    /// Adds a single copy of `edge`.
    pub fn add_edge(&mut self, edge: Hyperedge) {
        self.add_edge_with_multiplicity(edge, 1);
    }

    /// Removes up to `count` copies of `edge`, returning how many were
    /// actually removed.
    pub fn remove_edge(&mut self, edge: &Hyperedge, count: u32) -> u32 {
        match self.edges.get_mut(edge) {
            None => 0,
            Some(m) => {
                let removed = count.min(*m);
                *m -= removed;
                if *m == 0 {
                    self.edges.remove(edge);
                }
                self.total_multiplicity -= u64::from(removed);
                removed
            }
        }
    }

    /// Multiplicity `M(e)`; zero when `e` is absent.
    #[inline]
    pub fn multiplicity(&self, edge: &Hyperedge) -> u32 {
        self.edges.get(edge).copied().unwrap_or(0)
    }

    /// Whether `e` occurs at least once.
    #[inline]
    pub fn contains(&self, edge: &Hyperedge) -> bool {
        self.edges.contains_key(edge)
    }

    /// Number of *unique* hyperedges `|E|`.
    #[inline]
    pub fn unique_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total multiset size `|E*| = Σ_e M(e)`.
    #[inline]
    pub fn total_edge_count(&self) -> u64 {
        self.total_multiplicity
    }

    /// Average hyperedge multiplicity `|E*| / |E|` (0 when empty).
    pub fn avg_multiplicity(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.total_multiplicity as f64 / self.edges.len() as f64
        }
    }

    /// Iterates over `(hyperedge, multiplicity)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Hyperedge, u32)> {
        self.edges.iter().map(|(e, &m)| (e, m))
    }

    /// Iterates over unique hyperedges in a *sorted, deterministic* order.
    ///
    /// Use this whenever downstream behaviour must not depend on hash-map
    /// iteration order (e.g. sampling with a seeded RNG).
    pub fn sorted_edges(&self) -> Vec<&Hyperedge> {
        let mut v: Vec<&Hyperedge> = self.edges.keys().collect();
        v.sort_unstable();
        v
    }

    /// Node degrees counting unique hyperedges (index = node id).
    pub fn node_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes as usize];
        for e in self.edges.keys() {
            for n in e.nodes() {
                deg[n.index()] += 1;
            }
        }
        deg
    }

    /// Node degrees counting multiplicity (index = node id).
    pub fn weighted_node_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.num_nodes as usize];
        for (e, m) in self.iter() {
            for n in e.nodes() {
                deg[n.index()] += u64::from(m);
            }
        }
        deg
    }

    /// Nodes covered by at least one hyperedge, ascending.
    pub fn covered_nodes(&self) -> Vec<NodeId> {
        let deg = self.node_degrees();
        (0..self.num_nodes)
            .filter(|&i| deg[i as usize] > 0)
            .map(NodeId)
            .collect()
    }

    /// Returns a copy with every hyperedge multiplicity reduced to 1
    /// (the paper's "multiplicity-reduced" evaluation setting).
    ///
    /// Note this does *not* reduce edge multiplicities in the projection:
    /// distinct hyperedges still overlap on node pairs.
    pub fn reduce_multiplicity(&self) -> Hypergraph {
        let edges: FxHashMap<Hyperedge, u32> = self.edges.keys().map(|e| (e.clone(), 1)).collect();
        let total = edges.len() as u64;
        Hypergraph {
            num_nodes: self.num_nodes,
            edges,
            total_multiplicity: total,
        }
    }

    /// The sub-hypergraph induced by `nodes`: hyperedges fully contained in
    /// the given node set (multiplicities preserved).
    pub fn induced_by(&self, nodes: &[NodeId]) -> Hypergraph {
        let set: crate::fxhash::FxHashSet<NodeId> = nodes.iter().copied().collect();
        let mut out = Hypergraph::new(self.num_nodes);
        for (e, m) in self.iter() {
            if e.nodes().iter().all(|n| set.contains(n)) {
                out.add_edge_with_multiplicity(e.clone(), m);
            }
        }
        out
    }

    /// Sum of hyperedge sizes over the multiset, `Σ_e M(e)·|e|`.
    pub fn total_size(&self) -> u64 {
        self.iter()
            .map(|(e, m)| u64::from(m) * e.len() as u64)
            .sum()
    }

    /// Average size of *unique* hyperedges (0 when empty).
    pub fn avg_edge_size(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        let sum: usize = self.edges.keys().map(Hyperedge::len).sum();
        sum as f64 / self.edges.len() as f64
    }
}

impl FromIterator<Hyperedge> for Hypergraph {
    fn from_iter<T: IntoIterator<Item = Hyperedge>>(iter: T) -> Self {
        let mut h = Hypergraph::new(0);
        for e in iter {
            h.add_edge(e);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperedge::edge;

    fn sample() -> Hypergraph {
        let mut h = Hypergraph::new(0);
        h.add_edge_with_multiplicity(edge(&[0, 1, 2]), 2);
        h.add_edge(edge(&[1, 2]));
        h.add_edge(edge(&[3, 4]));
        h
    }

    #[test]
    fn counts_and_multiplicities() {
        let h = sample();
        assert_eq!(h.num_nodes(), 5);
        assert_eq!(h.unique_edge_count(), 3);
        assert_eq!(h.total_edge_count(), 4);
        assert_eq!(h.multiplicity(&edge(&[0, 1, 2])), 2);
        assert_eq!(h.multiplicity(&edge(&[1, 2])), 1);
        assert_eq!(h.multiplicity(&edge(&[0, 4])), 0);
        assert!((h.avg_multiplicity() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn adding_same_edge_accumulates() {
        let mut h = Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        h.add_edge(edge(&[1, 0]));
        assert_eq!(h.unique_edge_count(), 1);
        assert_eq!(h.multiplicity(&edge(&[0, 1])), 2);
    }

    #[test]
    fn remove_edge_clamps_and_cleans_up() {
        let mut h = sample();
        assert_eq!(h.remove_edge(&edge(&[0, 1, 2]), 5), 2);
        assert!(!h.contains(&edge(&[0, 1, 2])));
        assert_eq!(h.total_edge_count(), 2);
        assert_eq!(h.remove_edge(&edge(&[0, 1, 2]), 1), 0);
    }

    #[test]
    fn degrees() {
        let h = sample();
        assert_eq!(h.node_degrees(), vec![1, 2, 2, 1, 1]);
        assert_eq!(h.weighted_node_degrees(), vec![2, 3, 3, 1, 1]);
        assert_eq!(
            h.covered_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn reduce_multiplicity_keeps_unique_edges() {
        let r = sample().reduce_multiplicity();
        assert_eq!(r.unique_edge_count(), 3);
        assert_eq!(r.total_edge_count(), 3);
        assert_eq!(r.multiplicity(&edge(&[0, 1, 2])), 1);
    }

    #[test]
    fn induced_subhypergraph() {
        let h = sample();
        let sub = h.induced_by(&[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(sub.unique_edge_count(), 2);
        assert_eq!(sub.multiplicity(&edge(&[0, 1, 2])), 2);
        assert!(!sub.contains(&edge(&[3, 4])));
    }

    #[test]
    fn sizes() {
        let h = sample();
        assert_eq!(h.total_size(), 2 * 3 + 2 + 2);
        assert!((h.avg_edge_size() - (3 + 2 + 2) as f64 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_edges_is_deterministic() {
        let h = sample();
        let e1: Vec<String> = h.sorted_edges().iter().map(|e| e.to_string()).collect();
        let e2: Vec<String> = h.sorted_edges().iter().map(|e| e.to_string()).collect();
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), 3);
    }

    #[test]
    fn from_iterator() {
        let h: Hypergraph = vec![edge(&[0, 1]), edge(&[0, 1]), edge(&[2, 3])]
            .into_iter()
            .collect();
        assert_eq!(h.multiplicity(&edge(&[0, 1])), 2);
        assert_eq!(h.unique_edge_count(), 2);
    }
}
