//! Runtime-dispatched compute kernels for MARIOH's per-round hot paths.
//!
//! Every kernel here exists in (at least) two implementations:
//!
//! * a **scalar reference** ([`scalar`]) — the simplest correct loop,
//!   kept verbatim as the semantic ground truth and as the baseline the
//!   benches compare against;
//! * a **dispatched fast path** — the free functions at the crate root,
//!   which select an implementation once per process from the CPU's
//!   capabilities ([`Level::Avx2`] / [`Level::Sse42`] via
//!   `is_x86_feature_detected!`) with a branchless + galloping portable
//!   fallback ([`Level::Portable`]) everywhere else.
//!
//! Selection happens on the first kernel call and is cached in an
//! atomic; setting `MARIOH_NO_SIMD=1` in the environment forces
//! [`Level::Portable`] (no `unsafe`, no vector instructions), and
//! [`override_level`] re-points the dispatch at runtime (the benches use
//! it to time the same process both ways).
//!
//! # Bit-identity contract
//!
//! Every fast path is **bit-identical** to its scalar reference, for all
//! inputs — not approximately equal, identical. The parity suite
//! (`tests/parity.rs`) and the callers' engine/round-parity suites
//! assert it. Two rules make that hold:
//!
//! * **Integer kernels** ([`intersect_min_sum`], [`intersect_count`],
//!   [`intersect_into`], [`find_positions`]) accumulate in `u64`/`usize`
//!   — addition is associative, so galloping, block-skipping and
//!   vectorization are free to reorder the traversal.
//! * **Float kernels** ([`dense_forward`]) must keep each output lane's
//!   accumulation **strictly sequential in input order**: lane `o`
//!   computes `(((0 + x₀·w₀ₒ) + x₁·w₁ₒ) + …) + bₒ`, exactly the scalar
//!   fold. Vectorization is only allowed *across* independent output
//!   lanes, never across the inputs of one lane, and fused
//!   multiply-add is forbidden (FMA rounds once where `mul`+`add`
//!   rounds twice, which would change the bits). Any new float kernel
//!   added to this crate must obey the same sequential-accumulation
//!   contract.
//!
//! The crate also hosts the process's CPU-affinity primitive
//! ([`pin_to_core`]): a raw `sched_setaffinity` syscall on
//! linux-x86_64, a graceful no-op everywhere else. It lives here
//! because this is the one crate that is allowed to know what an ISA
//! is.

#![warn(missing_docs)]

mod affinity;
mod portable;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use affinity::{available_cores, pin_to_core};

use std::sync::atomic::{AtomicU8, Ordering};

/// A dispatch level: which implementation family the free functions at
/// the crate root route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// The scalar reference loops — never auto-selected; reachable only
    /// through [`override_level`] (the benches' in-process baseline).
    Scalar,
    /// Branchless two-pointer + galloping, no `unsafe`. Auto-selected
    /// when SIMD is unavailable or `MARIOH_NO_SIMD=1` is set.
    Portable,
    /// SSE4.2 (128-bit) vector paths.
    Sse42,
    /// AVX2 (256-bit) vector paths.
    Avx2,
}

impl Level {
    /// A short stable name (`"avx2"`, `"sse4.2"`, `"portable"`,
    /// `"scalar"`), for logs and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Portable => "portable",
            Level::Sse42 => "sse4.2",
            Level::Avx2 => "avx2",
        }
    }
}

const LEVEL_UNINIT: u8 = 0;
const LEVEL_SCALAR: u8 = 1;
const LEVEL_PORTABLE: u8 = 2;
const LEVEL_SSE42: u8 = 3;
const LEVEL_AVX2: u8 = 4;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

fn detect() -> Level {
    if std::env::var("MARIOH_NO_SIMD").as_deref() == Ok("1") {
        return Level::Portable;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Level::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            return Level::Sse42;
        }
    }
    Level::Portable
}

fn encode(level: Level) -> u8 {
    match level {
        Level::Scalar => LEVEL_SCALAR,
        Level::Portable => LEVEL_PORTABLE,
        Level::Sse42 => LEVEL_SSE42,
        Level::Avx2 => LEVEL_AVX2,
    }
}

/// The active dispatch level, detecting (and caching) it on first use.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_SCALAR => Level::Scalar,
        LEVEL_PORTABLE => Level::Portable,
        LEVEL_SSE42 => Level::Sse42,
        LEVEL_AVX2 => Level::Avx2,
        _ => {
            let detected = detect();
            // A concurrent first call detects the same thing; last
            // store wins harmlessly.
            LEVEL.store(encode(detected), Ordering::Relaxed);
            detected
        }
    }
}

/// Re-points the dispatch at `new_level`, process-wide, overriding both
/// detection and `MARIOH_NO_SIMD`. Selecting [`Level::Avx2`] /
/// [`Level::Sse42`] on a CPU without those features is the caller's
/// responsibility (the benches only ever *lower* the level).
pub fn override_level(new_level: Level) {
    LEVEL.store(encode(new_level), Ordering::Relaxed);
}

/// The active level's short name — convenience for logs and benches.
pub fn active() -> &'static str {
    level().name()
}

// ---------------------------------------------------------------------
// Sorted-set intersection kernels.
//
// All of them take strictly-increasing u32 slices. Weight slices run
// parallel to their neighbour slices. Sums are u64 so the traversal
// order is free (bit-identity by associativity).
// ---------------------------------------------------------------------

/// When one side is at least this many times longer than the other, the
/// merge gallops (exponential-probe binary search) through the long
/// side instead of scanning it.
pub(crate) const GALLOP_RATIO: usize = 32;

/// `Σ min(wa[i], wb[j])` over all positions with `a[i] == b[j]` — the
/// MHH inner sum (Lemma 1's upper bound) for two CSR rows.
pub fn intersect_min_sum(a: &[u32], wa: &[u32], b: &[u32], wb: &[u32]) -> u64 {
    debug_assert_eq!(a.len(), wa.len());
    debug_assert_eq!(b.len(), wb.len());
    match level() {
        Level::Scalar => scalar::intersect_min_sum(a, wa, b, wb),
        Level::Portable => portable::intersect_min_sum(a, wa, b, wb),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level()` only returns these after feature detection.
        Level::Sse42 => unsafe { x86::intersect_min_sum_sse42(a, wa, b, wb) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::intersect_min_sum_avx2(a, wa, b, wb) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Sse42 | Level::Avx2 => portable::intersect_min_sum(a, wa, b, wb),
    }
}

/// `|a ∩ b|` for two sorted slices — common-neighbour counting and the
/// Bron–Kerbosch pivot score.
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    match level() {
        Level::Scalar => scalar::intersect_count(a, b),
        Level::Portable => portable::intersect_count(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level()` only returns these after feature detection.
        Level::Sse42 => unsafe { x86::intersect_count_sse42(a, b) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::intersect_count_avx2(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Sse42 | Level::Avx2 => portable::intersect_count(a, b),
    }
}

/// Appends `a ∩ b` (sorted) to `out` — the Bron–Kerbosch candidate-set
/// refinement. Integer and order-preserving, so every level produces
/// identical output; the fast levels share the galloping merge.
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    match level() {
        Level::Scalar => scalar::intersect_into(a, b, out),
        _ => portable::intersect_into(a, b, out),
    }
}

/// For each `needles[i]` (sorted, and guaranteed present), appends its
/// index within `haystack` to `out` — one merge instead of a binary
/// search per needle. Backs the multiplicity-feature slot lookup, where
/// the needles are a clique's co-members inside one CSR row.
///
/// # Panics
///
/// Debug builds assert every needle is found; release builds skip
/// missing needles (the caller's clique contract makes that unreachable).
pub fn find_positions(needles: &[u32], haystack: &[u32], out: &mut Vec<u32>) {
    match level() {
        Level::Scalar => scalar::find_positions(needles, haystack, out),
        _ => portable::find_positions(needles, haystack, out),
    }
}

// ---------------------------------------------------------------------
// Dense-layer forward kernel.
// ---------------------------------------------------------------------

/// One dense-layer forward pass over **transposed** (column-major)
/// weights: `out[o] = (Σ_k x[k]·wt[k·n_out + o]) + bias[o]`, with each
/// lane's sum folded strictly in `k` order from `0.0` (the
/// sequential-accumulation contract — see the crate docs). Vector
/// levels run 4 (AVX2) or 2 (SSE4.2) output lanes at once with
/// separate `mul` and `add` (no FMA), so every lane's rounding matches
/// the scalar fold bit for bit.
///
/// `out` is cleared first; `x.len() · n_out == wt.len()` and
/// `bias.len() == n_out` are the caller's contract (debug-asserted).
pub fn dense_forward(wt: &[f64], bias: &[f64], x: &[f64], n_out: usize, out: &mut Vec<f64>) {
    debug_assert_eq!(wt.len(), x.len() * n_out);
    debug_assert_eq!(bias.len(), n_out);
    match level() {
        Level::Scalar | Level::Portable => scalar::dense_forward(wt, bias, x, n_out, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `level()` only returns these after feature detection.
        Level::Sse42 => unsafe { x86::dense_forward_sse42(wt, bias, x, n_out, out) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::dense_forward_avx2(wt, bias, x, n_out, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Level::Sse42 | Level::Avx2 => scalar::dense_forward(wt, bias, x, n_out, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One sequential test: `override_level` is process-global, so
    // asserting detection and override behaviour from parallel tests
    // would race.
    #[test]
    fn detection_caches_and_override_round_trips() {
        let first = level();
        assert_ne!(first, Level::Scalar, "scalar is override-only");
        assert_eq!(level(), first, "cached level is stable");
        assert_eq!(active(), first.name());
        for l in [Level::Scalar, Level::Portable, first] {
            override_level(l);
            assert_eq!(level(), l);
            assert_eq!(active(), l.name());
        }
    }

    #[test]
    fn level_names_are_stable() {
        assert_eq!(Level::Avx2.name(), "avx2");
        assert_eq!(Level::Sse42.name(), "sse4.2");
        assert_eq!(Level::Portable.name(), "portable");
        assert_eq!(Level::Scalar.name(), "scalar");
    }
}
