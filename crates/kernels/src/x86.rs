//! x86_64 vector paths (AVX2 / SSE4.2), selected at runtime by
//! [`crate::level`] after `is_x86_feature_detected!` — every function
//! here is `unsafe` precisely because the caller vouches for the
//! feature bits.
//!
//! The intersection kernels iterate the shorter slice and advance a
//! cursor through the longer one a whole vector register at a time
//! (unsigned compare via the sign-bit flip, then a movemask popcount of
//! the `< needle` prefix). Length regimes hand off to the portable
//! module where vectors cannot win: near-equal lengths use its
//! branchless two-pointer, extreme skew its galloping search. Sums stay
//! `u64`, so all of this reorders freely under bit-identity.
//!
//! [`dense_forward_avx2`] / [`dense_forward_sse42`] run 4 / 2 output
//! lanes per iteration with separate `mul` and `add` — **never FMA** —
//! keeping every lane's rounding identical to the scalar fold (the
//! crate-level sequential-accumulation contract).

use crate::portable;
use crate::GALLOP_RATIO;
use std::arch::x86_64::*;

/// Below this length ratio the branchless two-pointer wins (a vector
/// probe that advances the cursor by ~1 lane wastes its width).
const SIMD_ADVANCE_RATIO: usize = 4;

/// `Σ min(wa, wb)` over the intersection, AVX2 cursor advance.
///
/// # Safety
///
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn intersect_min_sum_avx2(a: &[u32], wa: &[u32], b: &[u32], wb: &[u32]) -> u64 {
    if a.len() > b.len() {
        return intersect_min_sum_avx2(b, wb, a, wa);
    }
    if a.is_empty() {
        return 0;
    }
    let ratio = b.len() / a.len();
    if !(SIMD_ADVANCE_RATIO..GALLOP_RATIO).contains(&ratio) || b.len() < 8 {
        return portable::intersect_min_sum(a, wa, b, wb);
    }
    let bias = _mm256_set1_epi32(i32::MIN);
    let mut total = 0u64;
    let mut j = 0usize;
    for (i, &x) in a.iter().enumerate() {
        // Skip b-elements < x, 8 lanes per compare. The xor flips the
        // sign bit so the signed epi32 compare orders u32 correctly;
        // b is ascending, so the `< x` lanes are a prefix of the mask.
        let needle = _mm256_xor_si256(_mm256_set1_epi32(x as i32), bias);
        while j + 8 <= b.len() {
            let block = _mm256_xor_si256(_mm256_loadu_si256(b.as_ptr().add(j).cast()), bias);
            let lt = _mm256_cmpgt_epi32(needle, block);
            let mask = _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32;
            if mask == 0xFF {
                j += 8;
            } else {
                j += mask.trailing_ones() as usize;
                break;
            }
        }
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() {
            break;
        }
        if b[j] == x {
            total += u64::from(wa[i].min(wb[j]));
            j += 1;
        }
    }
    total
}

/// `|a ∩ b|`, AVX2 cursor advance.
///
/// # Safety
///
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn intersect_count_avx2(a: &[u32], b: &[u32]) -> usize {
    if a.len() > b.len() {
        return intersect_count_avx2(b, a);
    }
    if a.is_empty() {
        return 0;
    }
    let ratio = b.len() / a.len();
    if !(SIMD_ADVANCE_RATIO..GALLOP_RATIO).contains(&ratio) || b.len() < 8 {
        return portable::intersect_count(a, b);
    }
    let bias = _mm256_set1_epi32(i32::MIN);
    let mut count = 0usize;
    let mut j = 0usize;
    for &x in a {
        let needle = _mm256_xor_si256(_mm256_set1_epi32(x as i32), bias);
        while j + 8 <= b.len() {
            let block = _mm256_xor_si256(_mm256_loadu_si256(b.as_ptr().add(j).cast()), bias);
            let lt = _mm256_cmpgt_epi32(needle, block);
            let mask = _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32;
            if mask == 0xFF {
                j += 8;
            } else {
                j += mask.trailing_ones() as usize;
                break;
            }
        }
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() {
            break;
        }
        if b[j] == x {
            count += 1;
            j += 1;
        }
    }
    count
}

/// `Σ min(wa, wb)` over the intersection, SSE4.2 (4-lane) advance.
///
/// # Safety
///
/// The CPU must support SSE4.2.
#[target_feature(enable = "sse4.2")]
pub unsafe fn intersect_min_sum_sse42(a: &[u32], wa: &[u32], b: &[u32], wb: &[u32]) -> u64 {
    if a.len() > b.len() {
        return intersect_min_sum_sse42(b, wb, a, wa);
    }
    if a.is_empty() {
        return 0;
    }
    let ratio = b.len() / a.len();
    if !(SIMD_ADVANCE_RATIO..GALLOP_RATIO).contains(&ratio) || b.len() < 4 {
        return portable::intersect_min_sum(a, wa, b, wb);
    }
    let bias = _mm_set1_epi32(i32::MIN);
    let mut total = 0u64;
    let mut j = 0usize;
    for (i, &x) in a.iter().enumerate() {
        let needle = _mm_xor_si128(_mm_set1_epi32(x as i32), bias);
        while j + 4 <= b.len() {
            let block = _mm_xor_si128(_mm_loadu_si128(b.as_ptr().add(j).cast()), bias);
            let lt = _mm_cmpgt_epi32(needle, block);
            let mask = _mm_movemask_ps(_mm_castsi128_ps(lt)) as u32;
            if mask == 0xF {
                j += 4;
            } else {
                j += mask.trailing_ones() as usize;
                break;
            }
        }
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() {
            break;
        }
        if b[j] == x {
            total += u64::from(wa[i].min(wb[j]));
            j += 1;
        }
    }
    total
}

/// `|a ∩ b|`, SSE4.2 (4-lane) advance.
///
/// # Safety
///
/// The CPU must support SSE4.2.
#[target_feature(enable = "sse4.2")]
pub unsafe fn intersect_count_sse42(a: &[u32], b: &[u32]) -> usize {
    if a.len() > b.len() {
        return intersect_count_sse42(b, a);
    }
    if a.is_empty() {
        return 0;
    }
    let ratio = b.len() / a.len();
    if !(SIMD_ADVANCE_RATIO..GALLOP_RATIO).contains(&ratio) || b.len() < 4 {
        return portable::intersect_count(a, b);
    }
    let bias = _mm_set1_epi32(i32::MIN);
    let mut count = 0usize;
    let mut j = 0usize;
    for &x in a {
        let needle = _mm_xor_si128(_mm_set1_epi32(x as i32), bias);
        while j + 4 <= b.len() {
            let block = _mm_xor_si128(_mm_loadu_si128(b.as_ptr().add(j).cast()), bias);
            let lt = _mm_cmpgt_epi32(needle, block);
            let mask = _mm_movemask_ps(_mm_castsi128_ps(lt)) as u32;
            if mask == 0xF {
                j += 4;
            } else {
                j += mask.trailing_ones() as usize;
                break;
            }
        }
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() {
            break;
        }
        if b[j] == x {
            count += 1;
            j += 1;
        }
    }
    count
}

/// Dense forward over transposed weights, 4 output lanes per iteration.
/// Per lane: `mul` then `add` in strict `k` order — the scalar fold's
/// exact rounding (FMA would fuse the rounding and change the bits).
///
/// # Safety
///
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn dense_forward_avx2(
    wt: &[f64],
    bias: &[f64],
    x: &[f64],
    n_out: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.resize(n_out, 0.0);
    let mut o = 0usize;
    while o + 4 <= n_out {
        let mut acc = _mm256_setzero_pd();
        for (k, &xk) in x.iter().enumerate() {
            let w = _mm256_loadu_pd(wt.as_ptr().add(k * n_out + o));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(xk), w));
        }
        let r = _mm256_add_pd(acc, _mm256_loadu_pd(bias.as_ptr().add(o)));
        _mm256_storeu_pd(out.as_mut_ptr().add(o), r);
        o += 4;
    }
    for tail in o..n_out {
        let mut acc = 0.0f64;
        for (k, &xk) in x.iter().enumerate() {
            acc += xk * wt[k * n_out + tail];
        }
        out[tail] = acc + bias[tail];
    }
}

/// Dense forward over transposed weights, 2 output lanes per iteration
/// (same contract as [`dense_forward_avx2`]).
///
/// # Safety
///
/// The CPU must support SSE4.2.
#[target_feature(enable = "sse4.2")]
pub unsafe fn dense_forward_sse42(
    wt: &[f64],
    bias: &[f64],
    x: &[f64],
    n_out: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.resize(n_out, 0.0);
    let mut o = 0usize;
    while o + 2 <= n_out {
        let mut acc = _mm_setzero_pd();
        for (k, &xk) in x.iter().enumerate() {
            let w = _mm_loadu_pd(wt.as_ptr().add(k * n_out + o));
            acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(xk), w));
        }
        let r = _mm_add_pd(acc, _mm_loadu_pd(bias.as_ptr().add(o)));
        _mm_storeu_pd(out.as_mut_ptr().add(o), r);
        o += 2;
    }
    for tail in o..n_out {
        let mut acc = 0.0f64;
        for (k, &xk) in x.iter().enumerate() {
            acc += xk * wt[k * n_out + tail];
        }
        out[tail] = acc + bias[tail];
    }
}
