//! The no-`unsafe` fast path: branchless two-pointer merges for
//! similar-length slices, galloping (exponential probe + binary search)
//! when one side dwarfs the other — the Bron–Kerbosch pivot shape.
//!
//! All kernels here are integer-sum or order-preserving, so any
//! traversal order gives the scalar reference's exact result.

use crate::GALLOP_RATIO;

/// First index `>= from` with `haystack[idx] >= target`, by exponential
/// probe from `from` then binary search over the bracketed gap. `O(log
/// gap)` instead of `O(gap)` — the payoff when the cursor jumps far.
#[inline]
fn lower_bound_from(haystack: &[u32], from: usize, target: u32) -> usize {
    let mut step = 1usize;
    let mut lo = from;
    let mut probe = from;
    while probe < haystack.len() && haystack[probe] < target {
        lo = probe + 1;
        probe += step;
        step *= 2;
    }
    let end = probe.min(haystack.len());
    lo + haystack[lo..end].partition_point(|&v| v < target)
}

/// Branchless `Σ min(wa, wb)` over the intersection; gallops when the
/// lengths are skewed by [`GALLOP_RATIO`] or more.
pub fn intersect_min_sum(a: &[u32], wa: &[u32], b: &[u32], wb: &[u32]) -> u64 {
    if a.len() > b.len() {
        return intersect_min_sum(b, wb, a, wa);
    }
    if a.is_empty() {
        return 0;
    }
    let mut total = 0u64;
    if b.len() / a.len() >= GALLOP_RATIO {
        let mut j = 0usize;
        for (i, &x) in a.iter().enumerate() {
            j = lower_bound_from(b, j, x);
            if j == b.len() {
                break;
            }
            if b[j] == x {
                total += u64::from(wa[i].min(wb[j]));
                j += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (x, y) = (a[i], b[j]);
            // Unconditional loads + a conditional-move sum keep the loop
            // free of unpredictable branches.
            let m = u64::from(wa[i].min(wb[j]));
            total += if x == y { m } else { 0 };
            i += usize::from(x <= y);
            j += usize::from(y <= x);
        }
    }
    total
}

/// Branchless `|a ∩ b|`; gallops when the lengths are skewed.
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    if a.len() > b.len() {
        return intersect_count(b, a);
    }
    if a.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    if b.len() / a.len() >= GALLOP_RATIO {
        let mut j = 0usize;
        for &x in a {
            j = lower_bound_from(b, j, x);
            if j == b.len() {
                break;
            }
            if b[j] == x {
                count += 1;
                j += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (x, y) = (a[i], b[j]);
            count += usize::from(x == y);
            i += usize::from(x <= y);
            j += usize::from(y <= x);
        }
    }
    count
}

/// Sorted intersection appended to `out`; gallops when skewed.
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    if a.len() > b.len() {
        return intersect_into(b, a, out);
    }
    if a.is_empty() {
        return;
    }
    if b.len() / a.len() >= GALLOP_RATIO {
        let mut j = 0usize;
        for &x in a {
            j = lower_bound_from(b, j, x);
            if j == b.len() {
                break;
            }
            if b[j] == x {
                out.push(x);
                j += 1;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (x, y) = (a[i], b[j]);
            if x == y {
                out.push(x);
            }
            i += usize::from(x <= y);
            j += usize::from(y <= x);
        }
    }
}

/// When the haystack is at least this many times longer than the needle
/// set, [`find_positions`] binary-searches each needle in the remaining
/// suffix; below it, the needles are dense enough that one linear merge
/// over the haystack is cheaper.
const POSITIONS_SEARCH_RATIO: usize = 8;

/// Needle positions with a forward-only cursor: each lookup starts
/// where the last one ended, so a sparse needle set costs one
/// shrinking-suffix binary search per needle (never more comparisons
/// than the reference's full-row searches) and a dense one costs a
/// single merge pass over the haystack.
pub fn find_positions(needles: &[u32], haystack: &[u32], out: &mut Vec<u32>) {
    if needles.is_empty() {
        return;
    }
    let mut j = 0usize;
    if haystack.len() / needles.len() >= POSITIONS_SEARCH_RATIO {
        for &needle in needles {
            j += haystack[j..].partition_point(|&v| v < needle);
            if j < haystack.len() && haystack[j] == needle {
                out.push(j as u32);
                j += 1;
            } else {
                debug_assert!(false, "needle {needle} missing from haystack");
            }
        }
    } else {
        for &needle in needles {
            while j < haystack.len() && haystack[j] < needle {
                j += 1;
            }
            if j < haystack.len() && haystack[j] == needle {
                out.push(j as u32);
                j += 1;
            } else {
                debug_assert!(false, "needle {needle} missing from haystack");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_from_brackets_every_gap() {
        let b: Vec<u32> = (0..200).map(|i| i * 3).collect();
        for from in [0usize, 1, 7, 199, 200] {
            for target in [0u32, 1, 3, 299, 300, 598, 600] {
                let got = lower_bound_from(&b, from, target);
                let want = from + b[from.min(b.len())..].partition_point(|&v| v < target);
                assert_eq!(got, want, "from {from} target {target}");
            }
        }
    }
}
