//! CPU affinity without a libc dependency: `sched_setaffinity` by raw
//! syscall on linux-x86_64, a graceful no-op on every other target.

/// Pins the **calling thread** to logical CPU `cpu`. Returns whether
/// the pin took effect: `false` for out-of-range CPUs, kernel
/// rejection (e.g. a cgroup cpuset excluding that core), or any
/// non-linux-x86_64 target — callers treat pinning as best-effort and
/// never fail on it.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_to_core(cpu: usize) -> bool {
    // One u64 word per 64 CPUs; 1024 covers every machine this can run
    // on. A cpu beyond the mask is a caller bug, answered with `false`
    // rather than a misleading modulo pin.
    let mut mask = [0u64; 16];
    if cpu >= mask.len() * 64 {
        return false;
    }
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    const SYS_SCHED_SETAFFINITY: isize = 203;
    let ret: isize;
    // SAFETY: sched_setaffinity(pid = 0 → calling thread, mask size,
    // mask pointer) reads `mask` and touches no other memory; rcx/r11
    // are declared clobbered as the syscall ABI requires.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Pinning is unsupported here; reports `false` so callers fall back
/// gracefully.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_to_core(_cpu: usize) -> bool {
    false
}

/// The number of logical CPUs available to this process (at least 1) —
/// the modulus pinning callers spread their threads over.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_positive() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn out_of_range_cpu_is_rejected_not_pinned() {
        assert!(!pin_to_core(usize::MAX));
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 exists on every machine; the syscall path itself is
        // what this exercises. The test thread stays pinned afterwards,
        // which is harmless for a test process.
        assert!(pin_to_core(0));
    }
}
