//! Scalar reference implementations — the semantic ground truth.
//!
//! These are the simplest correct loops, preserved verbatim from the
//! call sites they replaced: the parity suite asserts every dispatched
//! path bit-identical to them, and the benches use them (via
//! [`crate::override_level`] with [`crate::Level::Scalar`]) as the
//! in-process baseline. Do not optimise this module.

use std::cmp::Ordering;

/// Reference `Σ min(wa, wb)` over the sorted intersection: the plain
/// three-way-compare merge `mhh_view` used before this crate existed.
pub fn intersect_min_sum(a: &[u32], wa: &[u32], b: &[u32], wb: &[u32]) -> u64 {
    let mut total = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                total += u64::from(wa[i].min(wb[j]));
                i += 1;
                j += 1;
            }
        }
    }
    total
}

/// Reference `|a ∩ b|`: the plain two-pointer merge.
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Reference sorted intersection, appended to `out`.
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Reference needle positions: one binary search per needle — exactly
/// the per-pair `GraphView::slot` lookup this kernel replaced.
pub fn find_positions(needles: &[u32], haystack: &[u32], out: &mut Vec<u32>) {
    for &needle in needles {
        match haystack.binary_search(&needle) {
            Ok(pos) => out.push(pos as u32),
            Err(_) => debug_assert!(false, "needle {needle} missing from haystack"),
        }
    }
}

/// Reference dense forward over transposed weights: per output lane,
/// the fold `(((0 + x₀·w₀ₒ) + x₁·w₁ₒ) + …) + bₒ` — operation-for-
/// operation the `row.iter().zip(x).map(..).sum() + b` loop that
/// `Layer::forward` ran over row-major weights.
pub fn dense_forward(wt: &[f64], bias: &[f64], x: &[f64], n_out: usize, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(n_out);
    for (o, &b) in bias.iter().enumerate().take(n_out) {
        let mut acc = 0.0f64;
        for (k, &xk) in x.iter().enumerate() {
            acc += xk * wt[k * n_out + o];
        }
        out.push(acc + b);
    }
}
