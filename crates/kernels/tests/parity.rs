//! Property tests: every dispatched kernel is **bit-identical** to its
//! scalar reference — for random CSR-shaped rows, skewed lengths,
//! hole-compacted (short, arbitrary-prefix) rows, values at the top of
//! the u32 domain (the unsigned-compare bias trick), and MLP layer
//! widths 1–64.
//!
//! Each case checks the ambient dispatch level (CI runs this suite
//! twice: once with detection on, once under `MARIOH_NO_SIMD=1`) *and*
//! every level the CPU supports, forced via `override_level` under a
//! process-global lock.

use marioh_kernels as kernels;
use proptest::collection;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use std::ops::RangeInclusive;
use std::sync::Mutex;

/// `override_level` is process-global; forced-level tests serialize on
/// this (racing overrides could only swap between parity-correct
/// levels, but deterministic tests beat accidentally-correct ones).
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

/// Every level this CPU can actually run, plus the ambient one.
fn forced_levels() -> Vec<kernels::Level> {
    let mut levels = vec![kernels::Level::Portable];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            levels.push(kernels::Level::Sse42);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            levels.push(kernels::Level::Avx2);
        }
    }
    levels
}

/// Runs `check` under every supported level, restoring the previous
/// level afterwards.
fn at_every_level(check: impl Fn()) {
    check(); // ambient level first (MARIOH_NO_SIMD is honoured here)
    let _guard = LEVEL_LOCK.lock().expect("level lock");
    let prev = kernels::level();
    for level in forced_levels() {
        kernels::override_level(level);
        check();
    }
    kernels::override_level(prev);
}

/// A sorted, strictly-increasing neighbour row with parallel weights,
/// drawn from `domain` (narrow domains force dense intersections).
fn weighted_row(
    domain: RangeInclusive<u32>,
    max_len: usize,
) -> BoxedStrategy<(Vec<u32>, Vec<u32>)> {
    collection::vec((domain, 1u32..=u32::MAX), 0..max_len + 1)
        .prop_map(|mut pairs| {
            pairs.sort_unstable_by_key(|p| p.0);
            pairs.dedup_by_key(|p| p.0);
            pairs.into_iter().unzip()
        })
        .boxed()
}

/// Row pairs across the length regimes the dispatcher switches on:
/// similar lengths (branchless), moderate skew (SIMD cursor advance),
/// extreme skew (galloping), and top-of-u32 values.
#[allow(clippy::type_complexity)]
fn row_pair() -> BoxedStrategy<((Vec<u32>, Vec<u32>), (Vec<u32>, Vec<u32>))> {
    let top = u32::MAX - 400;
    prop_oneof![
        (weighted_row(0..=300, 200), weighted_row(0..=300, 200)),
        (weighted_row(0..=900, 12), weighted_row(0..=900, 700)),
        (weighted_row(0..=2000, 6), weighted_row(0..=2000, 1500)),
        (
            weighted_row(top..=u32::MAX, 64),
            weighted_row(top..=u32::MAX, 300)
        ),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn intersect_min_sum_matches_scalar(rows in row_pair()) {
        let ((a, wa), (b, wb)) = rows;
        let want = kernels::scalar::intersect_min_sum(&a, &wa, &b, &wb);
        at_every_level(|| {
            assert_eq!(
                kernels::intersect_min_sum(&a, &wa, &b, &wb),
                want,
                "min_sum diverged at level {}",
                kernels::active()
            );
        });
    }

    #[test]
    fn intersect_count_matches_scalar(rows in row_pair()) {
        let ((a, _), (b, _)) = rows;
        let want = kernels::scalar::intersect_count(&a, &b);
        at_every_level(|| {
            assert_eq!(
                kernels::intersect_count(&a, &b),
                want,
                "count diverged at level {}",
                kernels::active()
            );
        });
    }

    #[test]
    fn intersect_into_matches_scalar(rows in row_pair()) {
        let ((a, _), (b, _)) = rows;
        let mut want = Vec::new();
        kernels::scalar::intersect_into(&a, &b, &mut want);
        at_every_level(|| {
            let mut got = Vec::new();
            kernels::intersect_into(&a, &b, &mut got);
            assert_eq!(got, want, "intersect_into diverged at level {}", kernels::active());
        });
    }

    #[test]
    fn find_positions_matches_scalar(
        entries in collection::vec((0u32..=5000, 0u8..2), 1..400),
    ) {
        // The haystack is every generated value; the needles are the
        // flagged subset — sorted, unique, and all present, exactly the
        // clique-row contract.
        let mut entries = entries;
        entries.sort_unstable_by_key(|e| e.0);
        entries.dedup_by_key(|e| e.0);
        let haystack: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let needles: Vec<u32> = entries.iter().filter(|e| e.1 == 1).map(|e| e.0).collect();
        let mut want = Vec::new();
        kernels::scalar::find_positions(&needles, &haystack, &mut want);
        at_every_level(|| {
            let mut got = Vec::new();
            kernels::find_positions(&needles, &haystack, &mut got);
            assert_eq!(got, want, "find_positions diverged at level {}", kernels::active());
        });
    }

    #[test]
    fn dense_forward_matches_scalar_across_widths(
        dims in (1usize..=64, 1usize..=64),
        seed in 0u64..1_000_000,
    ) {
        // Sized buffers follow the widths, so fill them from a seeded
        // RNG instead of a dependent strategy.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (n_in, n_out) = dims;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut draw = |n: usize| -> Vec<f64> {
            (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect()
        };
        let wt = draw(n_in * n_out);
        let bias = draw(n_out);
        let x = draw(n_in);
        let mut want = Vec::new();
        kernels::scalar::dense_forward(&wt, &bias, &x, n_out, &mut want);
        at_every_level(|| {
            let mut got = Vec::new();
            kernels::dense_forward(&wt, &bias, &x, n_out, &mut got);
            let identical = got.len() == want.len()
                && got
                    .iter()
                    .zip(&want)
                    .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(
                identical,
                "dense_forward not bit-identical at level {} (n_in {n_in}, n_out {n_out})",
                kernels::active()
            );
        });
    }
}

#[test]
fn empty_and_degenerate_inputs() {
    let empty: [u32; 0] = [];
    let row = [1u32, 5, 9];
    let w = [2u32, 3, 4];
    at_every_level(|| {
        assert_eq!(kernels::intersect_min_sum(&empty, &empty, &row, &w), 0);
        assert_eq!(kernels::intersect_min_sum(&row, &w, &empty, &empty), 0);
        assert_eq!(kernels::intersect_count(&empty, &row), 0);
        let mut out = Vec::new();
        kernels::intersect_into(&row, &empty, &mut out);
        assert!(out.is_empty());
        kernels::find_positions(&empty, &row, &mut out);
        assert!(out.is_empty());
        let mut dense = vec![42.0];
        kernels::dense_forward(&[], &[], &[], 0, &mut dense);
        assert!(dense.is_empty(), "n_out = 0 clears the output");
    });
}
