//! Cyclic Jacobi eigen-decomposition for dense symmetric matrices.
//!
//! Robust and simple; O(n³) per sweep, fine for the ≤ few-hundred-node
//! Laplacians used by spectral clustering (Tables VII–VIII). For larger
//! implicit operators use [`crate::lanczos`].

use crate::dense::DenseMatrix;

/// Eigen-decomposition of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in *ascending* order.
    pub values: Vec<f64>,
    /// `values.len()` eigenvectors; `vectors.row(i)` pairs with
    /// `values[i]` (row-major for cache-friendly row access).
    pub vectors: DenseMatrix,
}

/// Computes all eigenvalues/eigenvectors of symmetric `a` by the cyclic
/// Jacobi method.
///
/// # Panics
///
/// Panics if `a` is not square. Symmetry is debug-asserted.
pub fn jacobi_eigen(a: &DenseMatrix) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen needs a square matrix");
    debug_assert!(a.is_symmetric(1e-9), "jacobi_eigen needs symmetry");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);

    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius mass; stop when negligible.
        let mut off = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                off += m.get(p, q) * m.get(p, q);
            }
        }
        if off.sqrt() < 1e-12 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation G(p, q, θ) on both sides of m.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors (rows of v are the vectors-to-be,
                // so rotate rows p and q).
                for k in 0..n {
                    let vpk = v.get(p, k);
                    let vqk = v.get(q, k);
                    v.set(p, k, c * vpk - s * vqk);
                    v.set(q, k, s * vpk + c * vqk);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m.get(i, i)
            .partial_cmp(&m.get(j, j))
            .expect("NaN eigenvalue")
    });
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        vectors.row_mut(dst).copy_from_slice(v.row(src));
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{dot, norm2};

    fn reconstruct(e: &EigenDecomposition) -> DenseMatrix {
        let n = e.values.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (k, &lambda) in e.values.iter().enumerate() {
            let v = e.vectors.row(k);
            for i in 0..n {
                for j in 0..n {
                    m.set(i, j, m.get(i, j) + lambda * v[i] * v[j]);
                }
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn two_by_two_known_answer() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
        // Eigenvector for 1 is ∝ (1, -1).
        let v = e.vectors.row(0);
        assert!((v[0] + v[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstructs_random_symmetric_matrices() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 5, 10, 20] {
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let v = rng.gen_range(-1.0..1.0);
                    a.set(i, j, v);
                    a.set(j, i, v);
                }
            }
            let e = jacobi_eigen(&a);
            let r = reconstruct(&e);
            let mut err = 0.0f64;
            for i in 0..n {
                for j in 0..n {
                    err = err.max((a.get(i, j) - r.get(i, j)).abs());
                }
            }
            assert!(err < 1e-8, "reconstruction error {err} at n={n}");
            // Eigenvectors orthonormal.
            for i in 0..n {
                assert!((norm2(e.vectors.row(i)) - 1.0).abs() < 1e-8);
                for j in i + 1..n {
                    assert!(dot(e.vectors.row(i), e.vectors.row(j)).abs() < 1e-8);
                }
            }
            // Ascending order.
            assert!(e.values.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        }
    }

    #[test]
    fn graph_laplacian_has_zero_eigenvalue() {
        // Path graph P3 Laplacian.
        let a = DenseMatrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ]);
        let e = jacobi_eigen(&a);
        assert!(e.values[0].abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!((e.values[2] - 3.0).abs() < 1e-10);
    }
}
