//! Compressed sparse row (CSR) matrices.
//!
//! The GCN encoder (Table IX) multiplies by the symmetrically normalised
//! adjacency matrix `Â = D̂^{-1/2}(A + I)D̂^{-1/2}` on every forward and
//! backward pass. The projected graphs here have |E| ≪ |V|², so a dense
//! representation would waste both memory and matvec time; CSR keeps the
//! per-multiply cost at O(nnz).

use crate::dense::DenseMatrix;

/// A CSR `f64` sparse matrix.
///
/// Rows are stored contiguously: the entries of row `r` live at
/// `indptr[r]..indptr[r+1]` in `indices` (column ids, strictly increasing
/// within a row) and `values`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Duplicate (row, col) entries are summed; entries that sum to exactly
    /// zero are kept (callers that care can prune them — keeping the
    /// behaviour simple avoids surprises with explicitly-stored zeros).
    ///
    /// # Panics
    ///
    /// Panics if any triplet lies outside `rows × cols`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "triplet ({r}, {c}) outside {rows}x{cols} matrix"
            );
        }
        let mut sorted: Vec<(u32, u32, f64)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        indptr.push(0);
        let mut cur_row = 0u32;
        for &(r, c, v) in &sorted {
            while cur_row < r {
                indptr.push(indices.len());
                cur_row += 1;
            }
            if let (Some(&last_c), true) = (indices.last(), indptr.last() != Some(&indices.len())) {
                if last_c == c {
                    // Duplicate within this row: accumulate.
                    *values.last_mut().expect("values nonempty") += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
        }
        while (cur_row as usize) < rows {
            indptr.push(indices.len());
            cur_row += 1;
        }
        debug_assert_eq!(indptr.len(), rows + 1);
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `r` as `(column, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let span = self.indptr[r]..self.indptr[r + 1];
        self.indices[span.clone()]
            .iter()
            .copied()
            .zip(self.values[span].iter().copied())
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec input dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
    }

    /// Dense product `A X` for a row-major dense `X` (`cols × k`).
    ///
    /// This is the GCN propagation step; the loop order (row of A outer,
    /// sparse entries inner, embedding dimension innermost) keeps the dense
    /// rows streaming through cache.
    pub fn matmul_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(x.rows(), self.cols, "matmul dimension mismatch");
        let k = x.cols();
        let mut out = DenseMatrix::zeros(self.rows, k);
        for r in 0..self.rows {
            // Accumulate into a stack row then write once.
            let out_row = out.row_mut(r);
            for (c, v) in self.row(r) {
                let x_row = x.row(c as usize);
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Materialises the matrix densely (tests and small problems only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out.set(r, c as usize, v);
            }
        }
        out
    }

    /// Whether the matrix equals its transpose (structure and values).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let mirrored = self.get(c as usize, r as u32);
                if (mirrored - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// The stored value at `(r, c)`, or 0.0 when absent (binary search
    /// within the row).
    pub fn get(&self, r: usize, c: u32) -> f64 {
        let span = self.indptr[r]..self.indptr[r + 1];
        match self.indices[span.clone()].binary_search(&c) {
            Ok(i) => self.values[span.start + i],
            Err(_) => 0.0,
        }
    }
}

/// Builds the symmetrically normalised adjacency with self-loops,
/// `Â = D̂^{-1/2}(A + I)D̂^{-1/2}`, from an undirected weighted edge list
/// (`u`, `v`, weight) over `n` nodes — the propagation operator of Kipf &
/// Welling's GCN.
///
/// Each undirected edge should appear once; both orientations and the
/// self-loops are inserted here. Isolated nodes receive a self-loop of
/// weight 1 (their degree is then 1, so the row stays stochastic).
///
/// # Panics
///
/// Panics if an endpoint is `>= n` or a weight is not finite and positive.
pub fn normalized_adjacency(n: usize, edges: &[(u32, u32, f64)]) -> CsrMatrix {
    let mut degree = vec![1.0f64; n]; // self-loop contributes 1 to every D̂
    for &(u, v, w) in edges {
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge endpoint out of range"
        );
        assert!(
            w.is_finite() && w > 0.0,
            "edge weight must be finite and positive"
        );
        degree[u as usize] += w;
        degree[v as usize] += w;
    }
    let inv_sqrt: Vec<f64> = degree.iter().map(|&d| 1.0 / d.sqrt()).collect();
    let mut triplets = Vec::with_capacity(2 * edges.len() + n);
    for (i, &inv) in inv_sqrt.iter().enumerate() {
        triplets.push((i as u32, i as u32, inv * inv));
    }
    for &(u, v, w) in edges {
        let norm = w * inv_sqrt[u as usize] * inv_sqrt[v as usize];
        triplets.push((u, v, norm));
        triplets.push((v, u, norm));
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_builds_expected_structure() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (2, 0, -1.0), (0, 0, 1.0)]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 0), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
        let row0: Vec<(u32, f64)> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (1, 2.0)]);
        let row1: Vec<(u32, f64)> = m.row(1).collect();
        assert!(row1.is_empty());
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.5), (0, 1, 2.5), (1, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 4.0);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = CsrMatrix::from_triplets(4, 4, &[]);
        assert_eq!(m.nnz(), 0);
        let mut y = vec![9.0; 4];
        m.matvec_into(&[1.0, 2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_triplets() {
        CsrMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]);
    }

    #[test]
    fn matvec_matches_dense() {
        let triplets = [
            (0u32, 0u32, 1.0),
            (0, 2, 3.0),
            (1, 1, -2.0),
            (2, 0, 0.5),
            (2, 2, 4.0),
        ];
        let m = CsrMatrix::from_triplets(3, 3, &triplets);
        let d = m.to_dense();
        let x = [1.0, -1.0, 2.0];
        let mut ys = vec![0.0; 3];
        let mut yd = vec![0.0; 3];
        m.matvec_into(&x, &mut ys);
        d.matvec_into(&x, &mut yd);
        assert_eq!(ys, yd);
    }

    #[test]
    fn matmul_dense_matches_dense_matmul() {
        let m =
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 2.0), (1, 1, 3.0), (2, 0, 1.0), (2, 1, -1.0)]);
        let x = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let got = m.matmul_dense(&x);
        let want = m.to_dense().matmul(&x);
        assert_eq!(got, want);
    }

    #[test]
    fn rectangular_shapes_are_respected() {
        let m = CsrMatrix::from_triplets(2, 5, &[(1, 4, 7.0)]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 5);
        let mut y = vec![0.0; 2];
        m.matvec_into(&[0.0, 0.0, 0.0, 0.0, 1.0], &mut y);
        assert_eq!(y, vec![0.0, 7.0]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 3.0)]);
        assert!(sym.is_symmetric(1e-12));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0)]);
        assert!(!asym.is_symmetric(1e-12));
        let rect = CsrMatrix::from_triplets(2, 3, &[]);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn normalized_adjacency_of_single_edge() {
        // Two nodes, one unit edge: D̂ = diag(2, 2).
        let a = normalized_adjacency(2, &[(0, 1, 1.0)]);
        assert!(a.is_symmetric(1e-12));
        assert!((a.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((a.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((a.get(1, 1) - 0.5).abs() < 1e-12);
        // Rows sum to 1 for this regular graph.
        let s: f64 = a.row(0).map(|(_, v)| v).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_adjacency_isolated_node_keeps_self_loop() {
        let a = normalized_adjacency(3, &[(0, 1, 2.0)]);
        assert_eq!(a.get(2, 2), 1.0);
        assert_eq!(a.row(2).count(), 1);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn normalized_adjacency_rejects_bad_weight() {
        normalized_adjacency(2, &[(0, 1, 0.0)]);
    }

    #[test]
    fn normalized_adjacency_spectral_radius_at_most_one() {
        // Â is similar to a stochastic-like operator; its spectral radius
        // is ≤ 1. Check via power iteration on a small random graph.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 12;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                if rng.gen_bool(0.3) {
                    edges.push((u, v, rng.gen_range(0.5..3.0)));
                }
            }
        }
        let a = normalized_adjacency(n, &edges);
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; n];
        for _ in 0..200 {
            a.matvec_into(&x, &mut y);
            let norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(norm.is_finite());
            for (xi, yi) in x.iter_mut().zip(&y) {
                *xi = yi / norm.max(1e-300);
            }
        }
        a.matvec_into(&x, &mut y);
        let lambda: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(lambda <= 1.0 + 1e-9, "spectral radius estimate {lambda}");
    }
}
