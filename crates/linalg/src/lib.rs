//! Minimal dense linear algebra for the MARIOH reproduction.
//!
//! The paper's evaluation needs three numeric kernels that are not worth an
//! external dependency at this scale:
//!
//! * symmetric eigen-decomposition (spectral clustering / embeddings,
//!   Tables VII–VIII) — cyclic Jacobi for dense matrices,
//! * extremal eigenvalues of large implicit operators (singular values of
//!   the incidence matrix, Table IV) — Lanczos with full
//!   reorthogonalisation,
//! * k-means++ (spectral clustering).
//!
//! Everything is `f64`, row-major, and allocation-conscious per the Rust
//! perf-book guidance (workhorse buffers, `Vec::with_capacity`).

#![warn(missing_docs)]

pub mod dense;
pub mod jacobi;
pub mod kmeans;
pub mod lanczos;
pub mod sparse;

pub use dense::DenseMatrix;
pub use jacobi::{jacobi_eigen, EigenDecomposition};
pub use kmeans::{kmeans, KMeansResult};
pub use lanczos::{lanczos_extremal_eigs, top_singular_values, top_singular_values_operator};
pub use sparse::{normalized_adjacency, CsrMatrix};
