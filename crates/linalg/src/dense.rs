//! Row-major dense matrices.

use std::fmt;

/// A row-major dense `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// `y = A x` into the provided buffer (`y.len() == rows`).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, out) in y.iter_mut().enumerate() {
            let row = self.row(r);
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// `y = Aᵀ x` into the provided buffer (`y.len() == cols`).
    pub fn transpose_matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, &a) in self.row(r).iter().enumerate() {
                y[c] += a * xr;
            }
        }
    }

    /// Matrix product `A · B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order for cache friendliness on row-major storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (j, &b) in brow.iter().enumerate() {
                    orow[j] += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Whether the matrix is symmetric to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in r + 1..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Euclidean norm of a vector.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Normalises `x` in place; returns its previous norm (0 ⇒ unchanged).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        for v in x.iter_mut() {
            *v /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(0, 1, 5.0);
        m.set(1, 2, -1.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, -1.0]);
        assert_eq!(m.col(2), vec![0.0, -1.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let mut y = vec![0.0; 3];
        a.matvec_into(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0, 11.0]);
        let mut z = vec![0.0; 2];
        a.transpose_matvec_into(&[1.0, 0.0, 1.0], &mut z);
        assert_eq!(z, vec![6.0, 8.0]);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[4.0, 3.0]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn symmetry_check() {
        let s = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let ns = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        assert!(!ns.is_symmetric(1e-12));
    }

    #[test]
    fn vector_helpers() {
        let mut x = vec![3.0, 4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(dot(&x, &[1.0, 1.0]), 7.0);
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 0.0], &mut y);
        assert_eq!(y, vec![3.0, 1.0]);
    }

    #[test]
    fn frobenius() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }
}
