//! Lanczos iteration for extremal eigenvalues of large symmetric
//! operators, and top singular values of implicit rectangular matrices.

use crate::dense::{axpy, dot, normalize, DenseMatrix};
use crate::jacobi::jacobi_eigen;
use rand::Rng;

/// Approximates the `k` largest eigenvalues of a symmetric linear operator
/// `apply: x ↦ Ax` of dimension `n`, using Lanczos with full
/// reorthogonalisation (cheap at the Krylov sizes we need, and immune to
/// ghost eigenvalues).
///
/// Returns eigenvalues in *descending* order; fewer than `k` may be
/// returned if the Krylov space exhausts (e.g. low-rank operators).
pub fn lanczos_extremal_eigs<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    apply: &mut dyn FnMut(&[f64], &mut [f64]),
    rng: &mut R,
) -> Vec<f64> {
    if n == 0 || k == 0 {
        return Vec::new();
    }
    // Krylov dimension: a small multiple of k converges well in practice.
    let m = (3 * k + 10).min(n);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);

    let mut q = vec![0.0; n];
    for v in q.iter_mut() {
        *v = rng.gen_range(-1.0..1.0);
    }
    normalize(&mut q);
    let mut w = vec![0.0; n];

    for _ in 0..m {
        apply(&q, &mut w);
        let alpha = dot(&q, &w);
        alphas.push(alpha);
        // w ← w − α q − β q_prev, then full reorthogonalisation.
        axpy(-alpha, &q, &mut w);
        basis.push(std::mem::take(&mut q));
        for b in &basis {
            let proj = dot(b, &w);
            axpy(-proj, b, &mut w);
        }
        let beta = normalize(&mut w);
        if beta < 1e-12 {
            break; // Krylov space exhausted.
        }
        betas.push(beta);
        q = std::mem::replace(&mut w, vec![0.0; n]);
    }

    // Eigenvalues of the tridiagonal via the dense Jacobi solver (the
    // tridiagonal is tiny).
    let steps = alphas.len();
    let mut t = DenseMatrix::zeros(steps, steps);
    for (i, &a) in alphas.iter().enumerate() {
        t.set(i, i, a);
    }
    for (i, &b) in betas.iter().enumerate().take(steps.saturating_sub(1)) {
        t.set(i, i + 1, b);
        t.set(i + 1, i, b);
    }
    let mut eigs = jacobi_eigen(&t).values;
    eigs.reverse(); // descending
    eigs.truncate(k);
    eigs
}

/// Top-`k` singular values of an implicit `rows × cols` matrix given its
/// forward and transpose matvecs, via Lanczos on the Gram operator
/// `x ↦ Aᵀ(Ax)` (or `AAᵀ`, whichever side is smaller).
pub fn top_singular_values_operator<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    k: usize,
    apply: &mut dyn FnMut(&[f64], &mut [f64]),
    apply_t: &mut dyn FnMut(&[f64], &mut [f64]),
    rng: &mut R,
) -> Vec<f64> {
    let (dim, small_is_cols) = if cols <= rows {
        (cols, true)
    } else {
        (rows, false)
    };
    if dim == 0 || k == 0 {
        return Vec::new();
    }
    let mut tmp = vec![0.0; if small_is_cols { rows } else { cols }];
    let mut gram = |x: &[f64], y: &mut [f64]| {
        if small_is_cols {
            apply(x, &mut tmp); // tmp = A x       (rows)
            apply_t(&tmp, y); // y = Aᵀ tmp        (cols)
        } else {
            apply_t(x, &mut tmp); // tmp = Aᵀ x    (cols)
            apply(&tmp, y); // y = A tmp           (rows)
        }
    };
    lanczos_extremal_eigs(dim, k, &mut gram, rng)
        .into_iter()
        .map(|lambda| lambda.max(0.0).sqrt())
        .collect()
}

/// Top-`k` singular values of a dense matrix (convenience wrapper used by
/// the structural-property code and tests).
pub fn top_singular_values<R: Rng + ?Sized>(a: &DenseMatrix, k: usize, rng: &mut R) -> Vec<f64> {
    let (r, c) = (a.rows(), a.cols());
    top_singular_values_operator(
        r,
        c,
        k,
        &mut |x, y| a.matvec_into(x, y),
        &mut |x, y| a.transpose_matvec_into(x, y),
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn diagonal_operator_eigenvalues() {
        let diag = [9.0, 7.0, 5.0, 3.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        let eigs = lanczos_extremal_eigs(
            5,
            3,
            &mut |x, y| {
                for i in 0..5 {
                    y[i] = diag[i] * x[i];
                }
            },
            &mut rng,
        );
        assert_eq!(eigs.len(), 3);
        assert!((eigs[0] - 9.0).abs() < 1e-8, "{eigs:?}");
        assert!((eigs[1] - 7.0).abs() < 1e-8, "{eigs:?}");
        assert!((eigs[2] - 5.0).abs() < 1e-8, "{eigs:?}");
    }

    #[test]
    fn singular_values_of_diagonal_rect() {
        // 3x2 matrix [[3,0],[0,4],[0,0]] has singular values {4, 3}.
        let a = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0], vec![0.0, 0.0]]);
        let mut rng = StdRng::seed_from_u64(2);
        let sv = top_singular_values(&a, 2, &mut rng);
        assert!((sv[0] - 4.0).abs() < 1e-8, "{sv:?}");
        assert!((sv[1] - 3.0).abs() < 1e-8, "{sv:?}");
    }

    #[test]
    fn matches_jacobi_on_random_spd() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30;
        // SPD matrix A = B Bᵀ.
        let mut b = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b.set(i, j, rng.gen_range(-1.0..1.0));
            }
        }
        let a = b.matmul(&b.transpose());
        let exact = {
            let mut v = jacobi_eigen(&a).values;
            v.reverse();
            v
        };
        let approx = lanczos_extremal_eigs(n, 4, &mut |x, y| a.matvec_into(x, y), &mut rng);
        for i in 0..4 {
            assert!(
                (approx[i] - exact[i]).abs() < 1e-6 * exact[0].max(1.0),
                "eig {i}: lanczos {} vs jacobi {}",
                approx[i],
                exact[i]
            );
        }
    }

    #[test]
    fn low_rank_operator_terminates_early() {
        // Rank-1 operator x ↦ u (uᵀ x).
        let u = [1.0, 2.0, 3.0, 4.0];
        let mut rng = StdRng::seed_from_u64(4);
        let eigs = lanczos_extremal_eigs(
            4,
            4,
            &mut |x, y| {
                let s: f64 = u.iter().zip(x).map(|(a, b)| a * b).sum();
                for (yi, &ui) in y.iter_mut().zip(&u) {
                    *yi = ui * s;
                }
            },
            &mut rng,
        );
        let expected: f64 = u.iter().map(|v| v * v).sum();
        assert!((eigs[0] - expected).abs() < 1e-8);
        // Remaining returned eigenvalues (if any) are ~0.
        for &e in &eigs[1..] {
            assert!(e.abs() < 1e-8);
        }
    }

    #[test]
    fn empty_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(lanczos_extremal_eigs(0, 3, &mut |_x, _y| {}, &mut rng).is_empty());
        assert!(lanczos_extremal_eigs(5, 0, &mut |_x, _y| {}, &mut rng).is_empty());
    }
}
