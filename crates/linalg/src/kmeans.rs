//! k-means clustering with k-means++ initialisation (Lloyd's algorithm).

use crate::dense::DenseMatrix;
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster assignment per row of the input.
    pub assignments: Vec<usize>,
    /// `k × d` centroid matrix.
    pub centroids: DenseMatrix,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Clusters the rows of `points` into `k` clusters.
///
/// k-means++ seeding followed by Lloyd iterations until assignment
/// convergence or `max_iters`. Empty clusters are reseeded from the point
/// farthest from its centroid.
///
/// # Panics
///
/// Panics when `k == 0` or `points` has no rows.
pub fn kmeans<R: Rng + ?Sized>(
    points: &DenseMatrix,
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> KMeansResult {
    let n = points.rows();
    let d = points.cols();
    assert!(k > 0, "k must be positive");
    assert!(n > 0, "no points to cluster");
    let k = k.min(n);

    // --- k-means++ seeding ---
    let mut centroids = DenseMatrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));
    let mut min_d2: Vec<f64> = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().sum();
        let choice = if total <= f64::EPSILON {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(points.row(choice));
        for (i, slot) in min_d2.iter_mut().enumerate() {
            let dd = sq_dist(points.row(i), centroids.row(c));
            if dd < *slot {
                *slot = dd;
            }
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; n];
    for _ in 0..max_iters {
        let mut changed = false;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let p = points.row(i);
            let (best, _) = (0..k)
                .map(|c| (c, sq_dist(p, centroids.row(c))))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
                .expect("k >= 1");
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = DenseMatrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assignments[i]] += 1;
            let row = points.row(i);
            let s = sums.row_mut(assignments[i]);
            for (sv, &pv) in s.iter_mut().zip(row) {
                *sv += pv;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Reseed from the worst-fit point.
                let worst = (0..n)
                    .max_by(|&a, &b| {
                        sq_dist(points.row(a), centroids.row(assignments[a]))
                            .partial_cmp(&sq_dist(points.row(b), centroids.row(assignments[b])))
                            .expect("NaN distance")
                    })
                    .expect("n >= 1");
                centroids.row_mut(c).copy_from_slice(points.row(worst));
                changed = true;
            } else {
                let inv = 1.0 / count as f64;
                let s: Vec<f64> = sums.row(c).iter().map(|v| v * inv).collect();
                centroids.row_mut(c).copy_from_slice(&s);
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(assignments[i])))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn separates_two_obvious_blobs() {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..10 {
            rows.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        let points = DenseMatrix::from_rows(&rows);
        let mut rng = StdRng::seed_from_u64(0);
        let res = kmeans(&points, 2, 100, &mut rng);
        let first = res.assignments[0];
        assert!(res.assignments[..10].iter().all(|&a| a == first));
        assert!(res.assignments[10..].iter().all(|&a| a != first));
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let points = DenseMatrix::from_rows(&[vec![0.0], vec![2.0], vec![4.0]]);
        let mut rng = StdRng::seed_from_u64(1);
        let res = kmeans(&points, 1, 50, &mut rng);
        assert!((res.centroids.get(0, 0) - 2.0).abs() < 1e-9);
        assert_eq!(res.assignments, vec![0, 0, 0]);
    }

    #[test]
    fn k_clamped_to_n() {
        let points = DenseMatrix::from_rows(&[vec![0.0], vec![5.0]]);
        let mut rng = StdRng::seed_from_u64(2);
        let res = kmeans(&points, 10, 50, &mut rng);
        // Two points, two clusters, zero inertia.
        assert!(res.inertia < 1e-12);
        assert_ne!(res.assignments[0], res.assignments[1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rows = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        use rand::Rng;
        for _ in 0..50 {
            rows.push(vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)]);
        }
        let points = DenseMatrix::from_rows(&rows);
        let a = kmeans(&points, 4, 100, &mut StdRng::seed_from_u64(7)).assignments;
        let b = kmeans(&points, 4, 100, &mut StdRng::seed_from_u64(7)).assignments;
        assert_eq!(a, b);
    }
}
