//! The HTTP front of the job service: socket handling, routing, and
//! graceful shutdown.
//!
//! One short-lived thread per connection (requests are small and answered
//! from the in-memory store; the heavy lifting happens on the worker
//! pool), a non-blocking accept loop so shutdown never hangs in
//! `accept(2)`, and `Connection: close` semantics throughout.

use crate::http::{error_body, read_request, write_response, write_text_response, Request};
use crate::job::{BatchError, BatchSubmission, JobManager, JobSpec, JobStatus, SubmitError};
use crate::json::Json;
use crate::shards::{spawn_shard_router, ShardEventSink};
use crate::worker::spawn_workers;
use marioh_core::MariohError;
use marioh_dispatch::{DispatchConfig, Dispatcher, WorkerCommand};
use marioh_store::{ArtifactStore, DiskStore, JobStore, MemoryStore, DEFAULT_RETAINED_JOBS};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps between polls when idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection socket read/write timeout.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing reconstruction jobs.
    pub workers: usize,
    /// Capacity of the job queue (further submissions get 503).
    pub queue_cap: usize,
    /// Shard worker processes (`marioh serve --shards N`). Zero — the
    /// default — keeps the in-process worker pool; a positive count
    /// replaces it with the [`marioh_dispatch::Dispatcher`] driving `N`
    /// child processes over the wire protocol. Results are bit-identical
    /// either way (both modes run [`marioh_dispatch::execute_job`]).
    pub shards: usize,
    /// Command line of the shard worker (the dispatcher appends
    /// `--connect ADDR --shard K`). Empty — the default — re-executes
    /// the current binary with a `shard-worker` subcommand; the special
    /// value `["in-thread"]` runs shard workers as threads of this
    /// process (still over loopback TCP), for tests and benches that
    /// have no `marioh` binary to exec.
    pub shard_worker: Vec<String>,
    /// Default per-job deadline (`marioh serve --job-timeout`): a job
    /// still running this long after dispatch is cancelled and recorded
    /// failed with a typed timeout reason. Specs carrying their own
    /// `timeout_secs` override it; `None` leaves jobs unbounded.
    pub job_timeout: Option<Duration>,
    /// Shard heartbeat timeout (`marioh serve --shard-timeout`): a shard
    /// silent this long is declared dead and respawned. `None` keeps the
    /// dispatcher's default; zero is rejected.
    pub shard_timeout: Option<Duration>,
    /// Pin worker threads to CPU cores, round-robin (`marioh serve
    /// --pin-cores`). A scheduling hint only — job results are
    /// bit-identical either way, and the flag is a silent no-op on
    /// platforms without `sched_setaffinity`. Ignored in shard mode
    /// (shard children manage their own threads).
    pub pin_cores: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_cap: 64,
            shards: 0,
            shard_worker: Vec::new(),
            job_timeout: None,
            shard_timeout: None,
            pin_cores: false,
        }
    }
}

/// Storage configuration of [`Server::start_with_storage`].
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Directory of the durable [`DiskStore`]; `None` keeps everything
    /// in memory (records and cache die with the process).
    pub state_dir: Option<PathBuf>,
    /// Terminal job records retained before the oldest are evicted
    /// (`marioh serve --retain`).
    pub retain: usize,
    /// Artifact byte budget for the disk store (`marioh serve
    /// --store-budget`); exceeding it evicts least-recently-used
    /// artifacts. `None` disables size-aware eviction.
    pub store_budget: Option<u64>,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            state_dir: None,
            retain: DEFAULT_RETAINED_JOBS,
            store_budget: None,
        }
    }
}

/// A running reconstruction service.
///
/// Dropping the handle leaks the background threads; call
/// [`Server::shutdown`] for a graceful stop that cancels in-flight jobs.
pub struct Server {
    addr: SocketAddr,
    manager: JobManager,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    dispatcher: Option<Arc<Dispatcher>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// [`MariohError::Config`] for a zero worker count or queue capacity,
    /// [`MariohError::Io`] when the address cannot be bound.
    pub fn start(config: ServerConfig) -> Result<Server, MariohError> {
        Server::start_with_storage(config, StorageConfig::default())
    }

    /// Like [`Server::start`], with explicit storage: a `state_dir`
    /// selects the durable [`DiskStore`] — the server replays its
    /// record log, serves pre-restart results, and re-queues jobs that
    /// were interrupted mid-run.
    ///
    /// # Errors
    ///
    /// Everything [`Server::start`] returns, plus
    /// [`MariohError::Config`]/[`MariohError::Io`] when the state dir
    /// cannot be opened (wrong format version, corrupt records).
    pub fn start_with_storage(
        config: ServerConfig,
        storage: StorageConfig,
    ) -> Result<Server, MariohError> {
        if config.workers == 0 {
            return Err(MariohError::config("workers must be >= 1 (got 0)"));
        }
        if config.queue_cap == 0 {
            return Err(MariohError::config("queue capacity must be >= 1 (got 0)"));
        }
        if storage.retain == 0 {
            return Err(MariohError::config("retention must be >= 1 (got 0)"));
        }
        if config.job_timeout.is_some_and(|t| t.is_zero()) {
            return Err(MariohError::config("job timeout must be >= 1 second"));
        }
        if config.shard_timeout.is_some_and(|t| t.is_zero()) {
            return Err(MariohError::config("shard timeout must be >= 1 second"));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let (job_store, artifact_store): (Arc<dyn JobStore>, Arc<dyn ArtifactStore>) =
            match &storage.state_dir {
                Some(dir) => {
                    let mut tuning = marioh_store::StoreTuning::new(storage.retain);
                    tuning.budget = storage.store_budget;
                    let store = Arc::new(DiskStore::open_tuned(dir, tuning)?);
                    (store.clone(), store)
                }
                None => {
                    let store = Arc::new(MemoryStore::new(storage.retain));
                    (store.clone(), store)
                }
            };
        let manager =
            JobManager::with_stores(config.queue_cap, config.workers, job_store, artifact_store);
        manager.set_job_timeout(config.job_timeout);
        let (worker_threads, dispatcher) = if config.shards > 0 {
            manager.set_shard_mode(config.shards);
            let worker = if config.shard_worker == ["in-thread"] {
                WorkerCommand::InThread
            } else if config.shard_worker.is_empty() {
                let exe = std::env::current_exe()
                    .map_err(|e| MariohError::config(format!("cannot locate own binary: {e}")))?;
                WorkerCommand::Process(vec![
                    exe.to_string_lossy().into_owned(),
                    "shard-worker".to_owned(),
                ])
            } else {
                WorkerCommand::Process(config.shard_worker.clone())
            };
            let sink = Arc::new(ShardEventSink {
                manager: manager.clone(),
            });
            let mut dispatch_config = DispatchConfig::new(config.shards, worker);
            if let Some(timeout) = config.shard_timeout {
                dispatch_config.shard_timeout = timeout;
            }
            let dispatcher = Arc::new(Dispatcher::start(dispatch_config, sink).map_err(|e| {
                MariohError::config(format!("failed to start shard dispatcher: {e}"))
            })?);
            manager.attach_dispatcher(&dispatcher);
            let router = spawn_shard_router(&manager, Arc::clone(&dispatcher));
            (vec![router], Some(dispatcher))
        } else {
            (
                spawn_workers(&manager, config.workers, config.pin_cores),
                None,
            )
        };
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let manager = manager.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("marioh-accept".to_owned())
                .spawn(move || accept_loop(listener, manager, stop))
                .expect("spawn accept thread")
        };
        Ok(Server {
            addr,
            manager,
            stop,
            accept_thread: Some(accept_thread),
            worker_threads,
            dispatcher,
        })
    }

    /// The bound address (the actual port when configured with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared job manager (stats, direct submission in benches).
    pub fn manager(&self) -> &JobManager {
        &self.manager
    }

    /// Graceful shutdown: stop accepting connections, cancel every queued
    /// and running job, and join the worker pool. Running jobs observe
    /// their [`marioh_core::CancelToken`] at the next training epoch or
    /// search-round boundary, so shutdown completes within one such step
    /// of each in-flight job.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Wakes the worker pool (or the shard router) out of take_next.
        self.manager.shutdown();
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        // After the router has stopped feeding it: send Goodbye frames,
        // cancel in-flight jobs, and reap the shard worker processes.
        // (On a durable store, jobs caught mid-flight re-queue at the
        // next startup via the usual recovery path.)
        if let Some(dispatcher) = self.dispatcher.take() {
            dispatcher.shutdown();
        }
    }
}

/// Concurrent connection cap: beyond it, new connections get an
/// immediate 503 instead of a thread — one client opening sockets cannot
/// pin unbounded threads or body buffers.
const MAX_CONNECTIONS: usize = 64;

/// Decrements the live-connection count when a handler thread ends,
/// however it ends.
struct ConnectionSlot(Arc<AtomicUsize>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, manager: JobManager, stop: Arc<AtomicBool>) {
    let live = Arc::new(AtomicUsize::new(0));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                if live.fetch_add(1, Ordering::SeqCst) >= MAX_CONNECTIONS {
                    live.fetch_sub(1, Ordering::SeqCst);
                    let _ = stream.set_nonblocking(false);
                    let _ = write_response(
                        &mut stream,
                        503,
                        &error_body("too many open connections; retry later"),
                    );
                    continue;
                }
                let slot = ConnectionSlot(Arc::clone(&live));
                let manager = manager.clone();
                // Detached: connections are short-lived (Connection:
                // close + socket timeouts), so shutdown does not wait on
                // them.
                let spawned = std::thread::Builder::new()
                    .name("marioh-conn".to_owned())
                    .spawn(move || {
                        let _slot = slot;
                        handle_connection(stream, &manager);
                    });
                drop(spawned); // on spawn failure the slot frees with the closure
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(stream: TcpStream, manager: &JobManager) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_nonblocking(false);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let started = Instant::now();
    let mut endpoint = None;
    let (status, reply) = match read_request(&mut reader) {
        Ok(Some(request)) => {
            endpoint = Some(endpoint_of(&request.path));
            route(&request, manager)
        }
        Ok(None) => return, // client connected and left
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            (400, Reply::Json(error_body(e.to_string())))
        }
        Err(_) => return, // transport error; nothing sensible to send
    };
    let _ = match &reply {
        Reply::Json(body) => write_response(&mut writer, status, body),
        Reply::Text { content_type, body } => {
            write_text_response(&mut writer, status, content_type, body)
        }
    };
    if let Some(endpoint) = endpoint {
        manager
            .registry()
            .histogram_with("marioh_http_request_seconds", &[("endpoint", endpoint)])
            .observe(started.elapsed());
    }
}

/// The latency-histogram label for a request path: known routes keep
/// their shape with ids collapsed to `:id` (bounded cardinality), and
/// everything else shares one bucket.
fn endpoint_of(path: &str) -> &'static str {
    match segments(path).as_slice() {
        ["healthz"] => "/healthz",
        ["stats"] => "/stats",
        ["metrics"] => "/metrics",
        ["jobs"] => "/jobs",
        ["jobs", _] => "/jobs/:id",
        ["jobs", _, "result"] => "/jobs/:id/result",
        ["batches", _] => "/batches/:id",
        ["models"] => "/models",
        _ => "other",
    }
}

/// What a route produced: almost always JSON; `/metrics` is Prometheus
/// plain text.
enum Reply {
    Json(Json),
    Text {
        content_type: &'static str,
        body: String,
    },
}

#[cfg(test)]
impl Reply {
    fn as_json(&self) -> &Json {
        match self {
            Reply::Json(body) => body,
            Reply::Text { body, .. } => panic!("expected a JSON reply, got text {body:?}"),
        }
    }
}

/// Splits `/jobs/17/result` into its non-empty segments.
fn segments(path: &str) -> Vec<&str> {
    path.split('/').filter(|s| !s.is_empty()).collect()
}

/// The Prometheus text exposition content type served on `/metrics`.
const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn route(request: &Request, manager: &JobManager) -> (u16, Reply) {
    // `/metrics` is the one non-JSON route: the Prometheus rendering of
    // the same merged snapshot `/stats` reads, so the two views can
    // never disagree.
    if request.method == "GET" && segments(&request.path).as_slice() == ["metrics"] {
        return (
            200,
            Reply::Text {
                content_type: METRICS_CONTENT_TYPE,
                body: manager.metrics_snapshot().render_prometheus(),
            },
        );
    }
    let (status, body) = route_json(request, manager);
    (status, Reply::Json(body))
}

fn route_json(request: &Request, manager: &JobManager) -> (u16, Json) {
    let method = request.method.as_str();
    match (method, segments(&request.path).as_slice()) {
        // Degraded (read-only store after persistent I/O failure) still
        // answers 200: the service *is* serving, from memory and the
        // artifact overlay — orchestrators should not kill it, but
        // operators need to see it.
        ("GET", ["healthz"]) => {
            let status = if manager.store_degraded() {
                "degraded"
            } else {
                "ok"
            };
            (200, Json::Obj(vec![("status".into(), Json::str(status))]))
        }
        ("GET", ["stats"]) => (200, stats_body(manager)),
        ("GET", ["jobs"]) => (200, jobs_body(manager)),
        ("GET", ["models"]) => (200, models_body(manager)),
        ("POST", ["jobs"]) => submit(request, manager),
        ("GET", ["jobs", id]) => with_job_id(id, |id| match manager.view(id) {
            Some(view) => (200, view_body(&view)),
            None => not_found(id),
        }),
        ("GET", ["jobs", id, "result"]) => with_job_id(id, |id| job_result(id, manager)),
        ("GET", ["batches", id]) => match id.parse::<u64>() {
            Ok(batch) => batch_body(batch, manager),
            Err(_) => (400, error_body(format!("invalid batch id {id:?}"))),
        },
        ("DELETE", ["jobs", id]) => with_job_id(id, |id| match manager.cancel(id) {
            Some(status) => (
                200,
                Json::Obj(vec![
                    ("id".into(), Json::num(id as f64)),
                    ("status".into(), Json::str(status.as_str())),
                ]),
            ),
            None => not_found(id),
        }),
        (_, ["healthz" | "stats" | "models" | "metrics"])
        | (_, ["jobs", ..])
        | (_, ["batches", ..]) => (
            405,
            error_body(format!("method {method} not allowed on {}", request.path)),
        ),
        _ => (404, error_body(format!("no such route {}", request.path))),
    }
}

fn not_found(id: u64) -> (u16, Json) {
    (404, error_body(format!("no such job {id}")))
}

fn with_job_id(raw: &str, f: impl FnOnce(u64) -> (u16, Json)) -> (u16, Json) {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => (400, error_body(format!("invalid job id {raw:?}"))),
    }
}

fn submit(request: &Request, manager: &JobManager) -> (u16, Json) {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("request body is not valid UTF-8")),
    };
    let body = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return (400, error_body(format!("invalid JSON body: {e}"))),
    };
    // An array body is a batch: all-or-nothing admission, one store
    // commit, per-index errors on rejection.
    if let Json::Arr(items) = &body {
        return submit_batch(items, manager);
    }
    let spec = match JobSpec::from_json(&body) {
        Ok(spec) => spec,
        Err(msg) => return (400, error_body(msg)),
    };
    match manager.submit(spec) {
        Ok(id) => {
            // A cache hit is `done` on arrival; report the real status
            // (and the marker) so clients need not poll to notice.
            let view = manager.view(id);
            let status = view.as_ref().map_or(JobStatus::Queued, |v| v.status);
            let mut pairs = vec![
                ("id".into(), Json::num(id as f64)),
                ("status".into(), Json::str(status.as_str())),
            ];
            if view.is_some_and(|v| v.cached) {
                pairs.push(("cached".into(), Json::Bool(true)));
            }
            (201, Json::Obj(pairs))
        }
        Err(SubmitError::Invalid(msg)) => (400, error_body(msg)),
        Err(e @ SubmitError::QueueFull { .. }) => (503, error_body(e.to_string())),
    }
}

/// Renders `(index, message)` pairs as the batch-rejection body.
fn batch_errors_body(errors: Vec<(usize, String)>) -> Json {
    let details: Vec<Json> = errors
        .into_iter()
        .map(|(index, error)| {
            Json::Obj(vec![
                ("index".into(), Json::num(index as f64)),
                ("error".into(), Json::str(error)),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "error".into(),
            Json::str("batch rejected; no job was submitted"),
        ),
        ("errors".into(), Json::Arr(details)),
    ])
}

fn submit_batch(items: &[Json], manager: &JobManager) -> (u16, Json) {
    let mut specs = Vec::with_capacity(items.len());
    let mut errors = Vec::new();
    for (index, item) in items.iter().enumerate() {
        match JobSpec::from_json(item) {
            Ok(spec) => specs.push(spec),
            Err(msg) => errors.push((index, msg)),
        }
    }
    if !errors.is_empty() {
        return (400, batch_errors_body(errors));
    }
    match manager.submit_batch(specs) {
        Ok(BatchSubmission { batch, ids }) => (
            201,
            Json::Obj(vec![
                ("batch".into(), Json::num(batch as f64)),
                ("count".into(), Json::num(ids.len() as f64)),
                (
                    "ids".into(),
                    Json::Arr(ids.into_iter().map(|id| Json::num(id as f64)).collect()),
                ),
            ]),
        ),
        Err(BatchError::Invalid(errors)) => (400, batch_errors_body(errors)),
        Err(BatchError::Rejected(SubmitError::Invalid(msg))) => (400, error_body(msg)),
        Err(BatchError::Rejected(e @ SubmitError::QueueFull { .. })) => {
            (503, error_body(e.to_string()))
        }
    }
}

fn batch_body(batch: u64, manager: &JobManager) -> (u16, Json) {
    let Some(members) = manager.batch_view(batch) else {
        return (404, error_body(format!("no such batch {batch}")));
    };
    let (mut done, mut failed, mut cancelled) = (0usize, 0usize, 0usize);
    let jobs: Vec<Json> = members
        .iter()
        .map(|(id, view)| match view {
            Some(view) => {
                match view.status {
                    JobStatus::Done => done += 1,
                    JobStatus::Failed => failed += 1,
                    JobStatus::Cancelled => cancelled += 1,
                    _ => {}
                }
                view_body(view)
            }
            // Evicted from the retention window: terminal, details gone.
            None => {
                done += 1;
                Json::Obj(vec![
                    ("id".into(), Json::num(*id as f64)),
                    ("status".into(), Json::str("evicted")),
                ])
            }
        })
        .collect();
    let terminal = done + failed + cancelled;
    (
        200,
        Json::Obj(vec![
            ("batch".into(), Json::num(batch as f64)),
            ("count".into(), Json::num(members.len() as f64)),
            ("done".into(), Json::num(done as f64)),
            ("failed".into(), Json::num(failed as f64)),
            ("cancelled".into(), Json::num(cancelled as f64)),
            ("complete".into(), Json::Bool(terminal == members.len())),
            ("jobs".into(), Json::Arr(jobs)),
        ]),
    )
}

fn job_result(id: u64, manager: &JobManager) -> (u16, Json) {
    let Some((status, result)) = manager.result(id) else {
        return not_found(id);
    };
    match (status, result) {
        (JobStatus::Done, Some(result)) => {
            let edges: Vec<Json> = result
                .reconstruction
                .sorted_edges()
                .into_iter()
                .map(|e| {
                    Json::Obj(vec![
                        (
                            "nodes".into(),
                            Json::Arr(e.nodes().iter().map(|n| Json::num(n.0 as f64)).collect()),
                        ),
                        (
                            "multiplicity".into(),
                            Json::num(result.reconstruction.multiplicity(e) as f64),
                        ),
                    ])
                })
                .collect();
            (
                200,
                Json::Obj(vec![
                    ("id".into(), Json::num(id as f64)),
                    ("jaccard".into(), Json::num(result.jaccard)),
                    ("edges".into(), Json::Arr(edges)),
                ]),
            )
        }
        (status, _) => (
            409,
            error_body(format!(
                "job {id} is {status}; results exist only for done jobs"
            )),
        ),
    }
}

fn view_body(view: &crate::job::JobView) -> Json {
    let mut pairs = vec![
        ("id".into(), Json::num(view.id as f64)),
        ("status".into(), Json::str(view.status.as_str())),
        (
            "progress".into(),
            Json::Obj(vec![
                ("rounds".into(), Json::num(view.rounds as f64)),
                ("committed".into(), Json::num(view.committed as f64)),
            ]),
        ),
    ];
    if view.cached {
        pairs.push(("cached".into(), Json::Bool(true)));
    }
    if let Some(error) = &view.error {
        pairs.push(("error".into(), Json::str(error.clone())));
    }
    Json::Obj(pairs)
}

fn jobs_body(manager: &JobManager) -> Json {
    let jobs: Vec<Json> = manager.scan().iter().map(view_body).collect();
    Json::Obj(vec![
        ("count".into(), Json::num(jobs.len() as f64)),
        ("jobs".into(), Json::Arr(jobs)),
    ])
}

fn models_body(manager: &JobManager) -> Json {
    let models: Vec<Json> = manager
        .list_models()
        .into_iter()
        .map(|entry| {
            let mut pairs = Vec::new();
            if let Some(name) = entry.name {
                pairs.push(("name".into(), Json::str(name)));
            }
            if let Some(hash) = entry.hash {
                pairs.push(("spec_hash".into(), Json::str(hash.to_hex())));
            }
            pairs.push(("mode".into(), Json::str(entry.mode)));
            Json::Obj(pairs)
        })
        .collect();
    Json::Obj(vec![
        ("count".into(), Json::num(models.len() as f64)),
        ("models".into(), Json::Arr(models)),
    ])
}

fn stats_body(manager: &JobManager) -> Json {
    let s = manager.stats();
    let statuses = manager.shard_statuses();
    let breakers_open = statuses.iter().filter(|s| s.breaker_open).count();
    let shard_status: Vec<Json> = statuses
        .into_iter()
        .map(|status| {
            Json::Obj(vec![
                ("shard".into(), Json::num(status.shard as f64)),
                (
                    "last_heartbeat_ms".into(),
                    Json::num(status.last_heartbeat_ms as f64),
                ),
                ("inflight".into(), Json::num(status.inflight as f64)),
                ("breaker_open".into(), Json::Bool(status.breaker_open)),
                ("strikes".into(), Json::num(status.strikes as f64)),
            ])
        })
        .collect();
    let mut pairs = vec![
        ("queue_depth".into(), Json::num(s.queue_depth as f64)),
        ("running".into(), Json::num(s.running as f64)),
        ("workers".into(), Json::num(s.workers as f64)),
        ("queue_cap".into(), Json::num(s.queue_cap as f64)),
        ("jobs_submitted".into(), Json::num(s.submitted as f64)),
        ("jobs_finished".into(), Json::num(s.finished as f64)),
        ("pipeline_runs".into(), Json::num(s.pipeline_runs as f64)),
        ("cache_hits".into(), Json::num(s.cache_hits as f64)),
        ("models_trained".into(), Json::num(s.models_trained as f64)),
        ("cliques_reused".into(), Json::num(s.cliques_reused as f64)),
        (
            "cliques_rescored".into(),
            Json::num(s.cliques_rescored as f64),
        ),
        (
            "search_reuse_ratio".into(),
            Json::num(if s.cliques_reused + s.cliques_rescored == 0 {
                0.0
            } else {
                s.cliques_reused as f64 / (s.cliques_reused + s.cliques_rescored) as f64
            }),
        ),
        ("results_cached".into(), Json::num(s.results_cached as f64)),
        ("models_cached".into(), Json::num(s.models_cached as f64)),
        ("result_bytes".into(), Json::num(s.result_bytes as f64)),
        ("model_bytes".into(), Json::num(s.model_bytes as f64)),
        ("store".into(), Json::str(s.store)),
        ("shards".into(), Json::num(s.shards as f64)),
        ("shard_restarts".into(), Json::num(s.shard_restarts as f64)),
        ("degraded".into(), Json::Bool(s.degraded)),
    ];
    if !shard_status.is_empty() {
        pairs.push(("breakers_open".into(), Json::num(breakers_open as f64)));
        pairs.push(("shard_status".into(), Json::Arr(shard_status)));
    }
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_rejects_zero_workers_and_zero_queue() {
        for config in [
            ServerConfig {
                workers: 0,
                ..ServerConfig::default()
            },
            ServerConfig {
                queue_cap: 0,
                ..ServerConfig::default()
            },
        ] {
            assert!(matches!(Server::start(config), Err(MariohError::Config(_))));
        }
    }

    #[test]
    fn start_reports_bind_failures_as_io() {
        match Server::start(ServerConfig {
            addr: "256.0.0.1:99999".to_owned(),
            ..ServerConfig::default()
        }) {
            Err(MariohError::Io(_)) => {}
            Err(other) => panic!("expected Io error, got {other}"),
            Ok(_) => panic!("bind to an invalid address succeeded"),
        }
    }

    #[test]
    fn connection_cap_answers_503_and_recovers_when_slots_free() {
        use std::time::{Duration, Instant};
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_cap: 4,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        // Saturate the cap with idle connections that never send a byte.
        let idle: Vec<std::net::TcpStream> = (0..MAX_CONNECTIONS)
            .map(|_| std::net::TcpStream::connect(addr).expect("connect"))
            .collect();
        // Once the accept loop has admitted them all, further requests
        // are turned away instead of getting a new thread: a 503 when
        // the refusal arrives intact, or a reset when the kernel drops
        // the socket's unread request data first.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match crate::client::get(addr, "/healthz") {
                Ok(response) if response.status == 503 => {
                    assert!(response.body.contains("too many open connections"));
                    assert_eq!(
                        response.header("retry-after"),
                        Some("1"),
                        "every 503 must tell the client when to retry"
                    );
                    break;
                }
                Ok(_) => {}
                Err(_) => break,
            }
            assert!(Instant::now() < deadline, "connection cap never engaged");
            std::thread::sleep(Duration::from_millis(10));
        }
        // Dropping the idle connections frees their slots.
        drop(idle);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if crate::client::get(addr, "/healthz").expect("probe").status == 200 {
                break;
            }
            assert!(Instant::now() < deadline, "server never recovered");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    #[test]
    fn routing_table_without_sockets() {
        let manager = JobManager::new(4, 1);
        let req = |method: &str, path: &str, body: &[u8]| Request {
            method: method.into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.to_vec(),
        };
        assert_eq!(route(&req("GET", "/healthz", b""), &manager).0, 200);
        assert_eq!(route(&req("GET", "/stats", b""), &manager).0, 200);
        assert_eq!(route(&req("GET", "/nope", b""), &manager).0, 404);
        assert_eq!(route(&req("PUT", "/jobs", b""), &manager).0, 405);
        assert_eq!(route(&req("POST", "/healthz", b""), &manager).0, 405);
        assert_eq!(route(&req("GET", "/jobs/7", b""), &manager).0, 404);
        assert_eq!(route(&req("GET", "/jobs/x", b""), &manager).0, 400);
        assert_eq!(route(&req("DELETE", "/jobs/7", b""), &manager).0, 404);
        assert_eq!(route(&req("GET", "/jobs/7/result", b""), &manager).0, 404);
        assert_eq!(route(&req("POST", "/jobs", b"not json"), &manager).0, 400);
        assert_eq!(route(&req("POST", "/jobs", b"{}"), &manager).0, 400);
        assert_eq!(route(&req("POST", "/metrics", b""), &manager).0, 405);
        let (status, reply) = route(&req("GET", "/metrics", b""), &manager);
        assert_eq!(status, 200);
        match reply {
            Reply::Text { content_type, body } => {
                assert_eq!(content_type, METRICS_CONTENT_TYPE);
                assert!(body.contains("marioh_server_pipeline_runs_total"), "{body}");
            }
            Reply::Json(body) => panic!("metrics must be plain text, got {body}"),
        }

        let (status, reply) = route(&req("POST", "/jobs", br#"{"dataset": "Hosts"}"#), &manager);
        assert_eq!(status, 201);
        let id = reply.as_json().get("id").unwrap().as_u64().unwrap();
        assert_eq!(
            route(&req("GET", &format!("/jobs/{id}"), b""), &manager).0,
            200
        );
        // Still queued (no workers running): the result is a 409.
        assert_eq!(
            route(&req("GET", &format!("/jobs/{id}/result"), b""), &manager).0,
            409
        );
        // Queue capacity 4: the fifth submission is a 503.
        for _ in 0..3 {
            assert_eq!(
                route(&req("POST", "/jobs", br#"{"dataset": "Hosts"}"#), &manager).0,
                201
            );
        }
        assert_eq!(
            route(&req("POST", "/jobs", br#"{"dataset": "Hosts"}"#), &manager).0,
            503
        );
        // Cancel the queued job through the route.
        let (status, reply) = route(&req("DELETE", &format!("/jobs/{id}"), b""), &manager);
        assert_eq!(status, 200);
        assert_eq!(
            reply.as_json().get("status").unwrap().as_str(),
            Some("cancelled")
        );
    }
}
