//! The orchestration layer over the persistence stack: the bounded FIFO
//! queue, worker wakeup, and cancellation tokens.
//!
//! Job *records* — lifecycle state, progress, results — live in a
//! [`JobStore`] from `marioh-store` (in-memory by default, disk-backed
//! under `marioh serve --state-dir`), and completed artifacts live in an
//! [`ArtifactStore`] keyed by each spec's canonical content hash. The
//! [`JobManager`] here owns only what dies with the process anyway:
//! the queue, the condvar workers block on, the per-job [`CancelToken`]s,
//! and the process-lifetime cache/run counters.
//!
//! Submission consults the artifact cache: a spec whose hash already has
//! a cached result is recorded `Done` immediately (`cached: true` in its
//! view) without ever entering the queue — MARIOH is deterministic, so
//! the cached reconstruction *is* the reconstruction. On a durable
//! store, jobs that were queued or running when the process died are
//! re-queued at construction.

use marioh_core::progress::CancelToken;
use marioh_core::{MariohError, SavedModel};
use marioh_dispatch::{Dispatcher, ShardStatus};
use marioh_obs::{Counter, Gauge, Registry, Snapshot};
use marioh_store::{
    ArtifactStats, ArtifactStore, JobStore, MemoryStore, ModelEntry, SpecHash, Transition,
    DEFAULT_RETAINED_JOBS,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

// The job domain model lives in `marioh-store`; re-export it so server
// consumers keep their import paths.
pub use marioh_store::spec::{
    variant_by_name, JobInput, JobParams, JobResult, JobSpec, JobStatus, JobView, ModelRef,
    MAX_THROTTLE_MS,
};

/// Aggregate counters served by `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs waiting in the queue.
    pub queue_depth: usize,
    /// Jobs currently held by workers.
    pub running: usize,
    /// Size of the worker pool.
    pub workers: usize,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Jobs accepted (store lifetime — survives restarts on a durable
    /// store).
    pub submitted: u64,
    /// Jobs that reached a terminal state (store lifetime).
    pub finished: u64,
    /// Reconstruction pipelines actually executed by workers since this
    /// process started — cache hits never increment it.
    pub pipeline_runs: u64,
    /// Submissions answered from the artifact cache since this process
    /// started.
    pub cache_hits: u64,
    /// Classifiers trained since this process started (model-reuse jobs
    /// never increment it; counted through the observer's
    /// `on_training_done`).
    pub models_trained: u64,
    /// Clique evaluations the incremental search engine answered from
    /// the previous round's state, summed over every round of every job
    /// this process ran (streamed in through the progress observer).
    pub cliques_reused: u64,
    /// Clique evaluations actually (re-)scored, same scope.
    pub cliques_rescored: u64,
    /// Results currently in the artifact cache.
    pub results_cached: usize,
    /// Trained models currently in the artifact store.
    pub models_cached: usize,
    /// Encoded (post-compression) bytes of cached results on disk.
    pub result_bytes: u64,
    /// Encoded bytes of stored models on disk.
    pub model_bytes: u64,
    /// Shard worker processes (`marioh serve --shards`); 0 when the
    /// in-process worker pool serves jobs.
    pub shards: usize,
    /// Shard workers replaced after dying (SIGKILL, crash, heartbeat
    /// timeout) since this process started.
    pub shard_restarts: u64,
    /// `"memory"` or `"disk"`.
    pub store: &'static str,
    /// Whether the job store is in read-only degraded mode (persistent
    /// I/O failure; serving continues from memory and the artifact
    /// overlay).
    pub degraded: bool,
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// Invalid specification; the message is the 400 response body.
    Invalid(String),
    /// The queue is at capacity; the client should retry later (503).
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(msg) => f.write_str(msg),
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue is full (capacity {capacity}); retry later")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a batch submission was rejected. Batches are all-or-nothing: on
/// any error, no job of the batch was accepted.
#[derive(Debug)]
pub enum BatchError {
    /// One or more specs failed validation; each entry is the failing
    /// spec's index in the submitted array and its message (the per-index
    /// 400 payload).
    Invalid(Vec<(usize, String)>),
    /// A whole-batch rejection: the queue cannot absorb the batch, or
    /// the server is shutting down.
    Rejected(SubmitError),
}

/// A successfully accepted batch.
#[derive(Debug, Clone)]
pub struct BatchSubmission {
    /// The batch id (`GET /batches/:id`).
    pub batch: u64,
    /// Per-spec job ids, in submission order.
    pub ids: Vec<u64>,
}

/// Per-process orchestration state (the store holds everything that
/// outlives the process).
struct Orchestration {
    queue: VecDeque<u64>,
    /// Tokens for queued and running jobs; removed at terminal states.
    tokens: HashMap<u64, CancelToken>,
    shutdown: bool,
    running: usize,
    /// Batch id → member job ids. Process-lifetime, like the queue: the
    /// member *jobs* are durable, the grouping is a submission-time
    /// convenience.
    batches: HashMap<u64, Vec<u64>>,
    next_batch: u64,
    /// Running jobs with a deadline: id → (deadline, timeout seconds).
    /// Set at dispatch, cleared at every terminal path.
    deadlines: HashMap<u64, (Instant, u64)>,
    /// Jobs the deadline watchdog cancelled, with their timeout in
    /// seconds. Consulted by the finish paths to turn the worker's
    /// `Cancelled` report into a typed timeout failure.
    timed_out: HashMap<u64, u64>,
}

struct Shared {
    orch: Mutex<Orchestration>,
    work_ready: Condvar,
    store: Arc<dyn JobStore>,
    artifacts: Arc<dyn ArtifactStore>,
    queue_cap: usize,
    workers: usize,
    /// Per-manager metrics registry: the single source every frontend
    /// reads. `/stats` and `GET /metrics` both render from it (plus the
    /// process-global registry), so the two views can never disagree.
    registry: Arc<Registry>,
    pipeline_runs: Arc<Counter>,
    cache_hits: Arc<Counter>,
    models_trained: Arc<Counter>,
    shards: Arc<Gauge>,
    shard_restarts: Arc<Counter>,
    /// The shard dispatcher, when `--shards` is active. Weak: the
    /// dispatcher's event sink owns a manager clone, so a strong handle
    /// here would cycle.
    dispatcher: Mutex<Weak<Dispatcher>>,
    /// Server-wide default job deadline (`marioh serve --job-timeout`);
    /// `None` means jobs without their own `timeout_secs` run unbounded.
    job_timeout: Mutex<Option<Duration>>,
    /// Whether the deadline watchdog thread has been spawned (lazily, on
    /// the first job that actually has a deadline).
    watchdog_started: AtomicBool,
}

/// The concurrent job queue and orchestration over a pluggable store.
/// Cheap to clone; all clones share one store.
#[derive(Clone)]
pub struct JobManager {
    shared: Arc<Shared>,
}

/// A job handed to a worker by [`JobManager::take_next`].
pub struct DispatchedJob {
    /// Job id, for progress reports and [`JobManager::finish`].
    pub id: u64,
    /// The specification (ownership moves to the worker).
    pub spec: JobSpec,
    /// The spec's content hash — the artifact-cache key the worker
    /// consults before building a pipeline.
    pub spec_hash: SpecHash,
    /// The token `DELETE /jobs/:id` and shutdown fire.
    pub cancel: CancelToken,
}

impl JobManager {
    /// A manager over a fresh in-memory store with the given queue
    /// capacity, reporting `workers` in its stats (the worker pool
    /// itself lives in the server). Retains the
    /// [`DEFAULT_RETAINED_JOBS`] most recent terminal records.
    pub fn new(queue_cap: usize, workers: usize) -> JobManager {
        let store = Arc::new(MemoryStore::new(DEFAULT_RETAINED_JOBS));
        JobManager::with_stores(queue_cap, workers, store.clone(), store)
    }

    /// A manager over explicit stores (the server builds a
    /// [`marioh_store::DiskStore`] here for `--state-dir`). Jobs the
    /// store recovered — queued or interrupted mid-run in a previous
    /// process — are re-queued immediately with fresh cancel tokens.
    pub fn with_stores(
        queue_cap: usize,
        workers: usize,
        store: Arc<dyn JobStore>,
        artifacts: Arc<dyn ArtifactStore>,
    ) -> JobManager {
        let recovered = store.recover_queued();
        let mut orch = Orchestration {
            queue: VecDeque::new(),
            tokens: HashMap::new(),
            shutdown: false,
            running: 0,
            batches: HashMap::new(),
            next_batch: 1,
            deadlines: HashMap::new(),
            timed_out: HashMap::new(),
        };
        for id in recovered {
            orch.tokens.insert(id, CancelToken::new());
            orch.queue.push_back(id);
        }
        let registry = Arc::new(Registry::default());
        JobManager {
            shared: Arc::new(Shared {
                orch: Mutex::new(orch),
                work_ready: Condvar::new(),
                store,
                artifacts,
                queue_cap,
                workers,
                pipeline_runs: registry.counter("marioh_server_pipeline_runs_total"),
                cache_hits: registry.counter("marioh_server_cache_hits_total"),
                models_trained: registry.counter("marioh_server_models_trained_total"),
                shards: registry.gauge("marioh_server_shards"),
                shard_restarts: registry.counter("marioh_server_shard_restarts_total"),
                registry,
                dispatcher: Mutex::new(Weak::new()),
                job_timeout: Mutex::new(None),
                watchdog_started: AtomicBool::new(false),
            }),
        }
    }

    /// Sets the server-wide default job deadline (`marioh serve
    /// --job-timeout`). Jobs whose spec carries its own `timeout_secs`
    /// override it; `None` leaves default-less jobs unbounded. Applies
    /// to jobs dispatched after the call.
    pub fn set_job_timeout(&self, timeout: Option<Duration>) {
        *self
            .shared
            .job_timeout
            .lock()
            .expect("job timeout lock poisoned") = timeout;
    }

    fn lock(&self) -> MutexGuard<'_, Orchestration> {
        self.shared.orch.lock().expect("job queue lock poisoned")
    }

    fn store(&self) -> &dyn JobStore {
        &*self.shared.store
    }

    /// Validates and enqueues a job, returning its id. A spec whose
    /// content hash already has a cached result is recorded `Done`
    /// instantly — no queue slot, no worker, no pipeline.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] with the pipeline builder's message for
    /// bad hyperparameters, an unresolvable `model` reference, or when
    /// shutting down; [`SubmitError::QueueFull`] when the queue is at
    /// capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let hash = self.validate_spec(&spec)?;
        // The cache probe can read (and parse, on a disk store) a large
        // artifact — do it before touching the orchestration lock that
        // every worker dispatch and finish contends on.
        let cached = self.shared.artifacts.get_result(&hash);
        let shutting_down =
            || SubmitError::Invalid("server is shutting down; not accepting jobs".to_owned());
        if let Some(result) = cached {
            if self.lock().shutdown {
                return Err(shutting_down());
            }
            // Deterministic pipeline + identical spec = identical result.
            // No queue slot, no token: the record is terminal on arrival.
            let id = self.store().submit(&spec, &hash);
            self.store().transition(
                id,
                Transition::Done {
                    result,
                    cached: true,
                },
            );
            self.shared.cache_hits.inc();
            return Ok(id);
        }
        let mut orch = self.lock();
        if orch.shutdown {
            return Err(shutting_down());
        }
        if orch.queue.len() >= self.shared.queue_cap {
            return Err(SubmitError::QueueFull {
                capacity: self.shared.queue_cap,
            });
        }
        let id = self.store().submit(&spec, &hash);
        orch.tokens.insert(id, CancelToken::new());
        orch.queue.push_back(id);
        self.shared.work_ready.notify_one();
        Ok(id)
    }

    /// The validation half of [`JobManager::submit`]: spec validity, the
    /// content hash, and fail-fast model-reference checks. The donor of
    /// a `model: "job:<id>"` reference must already be done (accepting a
    /// still-running donor would turn into a timing-dependent failure at
    /// dispatch on multi-worker pools); workers still re-resolve at
    /// dispatch — the donor can be evicted, or a recovered job's donor
    /// may be gone after restart.
    fn validate_spec(&self, spec: &JobSpec) -> Result<SpecHash, SubmitError> {
        spec.validate()
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;
        let hash = spec
            .content_hash()
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;
        match &spec.model {
            Some(ModelRef::Job(donor)) => match self.store().view(*donor) {
                None => {
                    return Err(SubmitError::Invalid(format!(
                        "model donor job {donor} is unknown (or evicted)"
                    )));
                }
                Some(view) if view.status != JobStatus::Done => {
                    return Err(SubmitError::Invalid(format!(
                        "model donor job {donor} is {}; models exist only for done jobs",
                        view.status
                    )));
                }
                Some(_) => {}
            },
            Some(ModelRef::Named(name))
                if self.shared.artifacts.get_named_model(name).is_none() =>
            {
                return Err(SubmitError::Invalid(format!(
                    "no saved model named {name:?}"
                )));
            }
            _ => {}
        }
        Ok(hash)
    }

    /// Atomically submits a batch of specs, returning a batch id and the
    /// per-spec job ids. All-or-nothing: every spec is validated first
    /// and any failure rejects the whole batch with per-index messages.
    /// On a durable store the accepted batch is one log commit (one
    /// fsync), not one per job. Specs whose results are already cached
    /// are recorded `Done` on arrival without taking queue slots.
    ///
    /// # Errors
    ///
    /// [`BatchError::Invalid`] with per-index messages for invalid
    /// specs; [`BatchError::Rejected`] when the batch is empty, the
    /// queue cannot absorb it, or the manager is shutting down.
    pub fn submit_batch(&self, specs: Vec<JobSpec>) -> Result<BatchSubmission, BatchError> {
        if specs.is_empty() {
            return Err(BatchError::Rejected(SubmitError::Invalid(
                "batch is empty; submit at least one spec".to_owned(),
            )));
        }
        let mut errors: Vec<(usize, String)> = Vec::new();
        let mut hashes: Vec<SpecHash> = Vec::with_capacity(specs.len());
        for (index, spec) in specs.iter().enumerate() {
            match self.validate_spec(spec) {
                Ok(hash) => hashes.push(hash),
                Err(SubmitError::Invalid(msg)) => errors.push((index, msg)),
                Err(e @ SubmitError::QueueFull { .. }) => {
                    unreachable!("validation never reports {e}")
                }
            }
        }
        if !errors.is_empty() {
            return Err(BatchError::Invalid(errors));
        }
        // Cache probes before the orchestration lock, like single submit.
        let cached: Vec<Option<Arc<JobResult>>> = hashes
            .iter()
            .map(|hash| self.shared.artifacts.get_result(hash))
            .collect();
        let queue_need = cached.iter().filter(|c| c.is_none()).count();
        let mut orch = self.lock();
        if orch.shutdown {
            return Err(BatchError::Rejected(SubmitError::Invalid(
                "server is shutting down; not accepting jobs".to_owned(),
            )));
        }
        if orch.queue.len() + queue_need > self.shared.queue_cap {
            return Err(BatchError::Rejected(SubmitError::QueueFull {
                capacity: self.shared.queue_cap,
            }));
        }
        let items: Vec<(JobSpec, SpecHash)> = specs.into_iter().zip(hashes).collect();
        let ids = self.store().submit_batch(&items);
        let mut done: Vec<(u64, Transition)> = Vec::new();
        for (id, hit) in ids.iter().zip(cached) {
            match hit {
                Some(result) => {
                    self.shared.cache_hits.inc();
                    done.push((
                        *id,
                        Transition::Done {
                            result,
                            cached: true,
                        },
                    ));
                }
                None => {
                    orch.tokens.insert(*id, CancelToken::new());
                    orch.queue.push_back(*id);
                }
            }
        }
        if !done.is_empty() {
            self.store().transition_batch(done);
        }
        let batch = orch.next_batch;
        orch.next_batch += 1;
        orch.batches.insert(batch, ids.clone());
        self.shared.work_ready.notify_all();
        Ok(BatchSubmission { batch, ids })
    }

    /// The member jobs of a batch with their current views, in
    /// submission order (`None` for members already evicted), or `None`
    /// for unknown batch ids.
    pub fn batch_view(&self, batch: u64) -> Option<Vec<(u64, Option<JobView>)>> {
        let ids = self.lock().batches.get(&batch).cloned()?;
        Some(
            ids.into_iter()
                .map(|id| (id, self.store().view(id)))
                .collect(),
        )
    }

    /// Blocks until a job is available (FIFO) or the manager shuts down
    /// (`None`). Marks the job `Running`.
    pub fn take_next(&self) -> Option<DispatchedJob> {
        let mut orch = self.lock();
        loop {
            if orch.shutdown {
                return None;
            }
            if let Some(id) = orch.queue.pop_front() {
                orch.running += 1;
                let cancel = orch.tokens.get(&id).cloned().unwrap_or_default();
                let spec = self.store().start(id).expect("queued job has its spec");
                let spec_hash = self
                    .store()
                    .spec_hash(id)
                    .expect("submitted job has a hash");
                self.arm_deadline(&mut orch, id, &spec);
                return Some(DispatchedJob {
                    id,
                    spec,
                    spec_hash,
                    cancel,
                });
            }
            orch = self
                .shared
                .work_ready
                .wait(orch)
                .expect("job queue lock poisoned");
        }
    }

    /// Arms the deadline for a job being dispatched: the spec's own
    /// `timeout_secs` when set, the server-wide default otherwise. Jobs
    /// with neither run unbounded. Spawns the watchdog thread on first
    /// use.
    fn arm_deadline(&self, orch: &mut Orchestration, id: u64, spec: &JobSpec) {
        let secs = if spec.timeout_secs > 0 {
            Some(spec.timeout_secs)
        } else {
            self.shared
                .job_timeout
                .lock()
                .expect("job timeout lock poisoned")
                .map(|d| d.as_secs())
                .filter(|s| *s > 0)
        };
        let Some(secs) = secs else { return };
        if let Some(deadline) = Instant::now().checked_add(Duration::from_secs(secs)) {
            orch.deadlines.insert(id, (deadline, secs));
            self.ensure_watchdog();
        }
    }

    fn ensure_watchdog(&self) {
        if self.shared.watchdog_started.swap(true, Ordering::SeqCst) {
            return;
        }
        let shared = Arc::downgrade(&self.shared);
        std::thread::Builder::new()
            .name("marioh-deadline".to_owned())
            .spawn(move || deadline_watchdog(shared))
            .expect("spawn deadline watchdog thread");
    }

    /// Clears a job's deadline bookkeeping at a terminal path and
    /// reports the timeout it hit, if any.
    fn close_deadline(orch: &mut Orchestration, id: u64) -> Option<u64> {
        orch.deadlines.remove(&id);
        orch.timed_out.remove(&id)
    }

    /// Records a finished job. A job already cancelled through
    /// [`JobManager::cancel`] stays `Cancelled` regardless of `outcome`
    /// (terminal records are immutable in the store); a job the deadline
    /// watchdog cancelled records as `Failed` with a typed timeout
    /// reason instead.
    pub fn finish(&self, id: u64, outcome: Result<JobResult, MariohError>) {
        let timed_out = {
            let mut orch = self.lock();
            orch.running = orch.running.saturating_sub(1);
            orch.tokens.remove(&id);
            JobManager::close_deadline(&mut orch, id)
        };
        match outcome {
            Ok(result) => {
                let result = Arc::new(result);
                // Artifact before record: a crash between the two leaves
                // an orphan artifact, never a done record without its
                // result. A *failed* artifact write on a durable store
                // would break that invariant at the next restart (a
                // replayed done record with nothing to serve), so it
                // fails the job instead — the pipeline is deterministic
                // and the client can resubmit once the disk recovers.
                if let Some(hash) = self.store().spec_hash(id) {
                    if let Err(e) = self.shared.artifacts.put_result(&hash, &result) {
                        self.store().transition(
                            id,
                            Transition::Failed(format!(
                                "reconstruction succeeded but its result could not be \
                                 persisted: {e}; resubmit once storage recovers"
                            )),
                        );
                        return;
                    }
                }
                self.store().transition(
                    id,
                    Transition::Done {
                        result,
                        cached: false,
                    },
                );
            }
            Err(MariohError::Cancelled) => {
                let transition = match timed_out {
                    Some(secs) => Transition::Failed(timeout_message(secs)),
                    None => Transition::Cancelled,
                };
                self.store().transition(id, transition);
            }
            Err(e) => {
                self.store()
                    .transition(id, Transition::Failed(e.to_string()));
            }
        }
    }

    /// Records a sweep of finished jobs at once — the shard dispatcher's
    /// batched twin of [`JobManager::finish`]. Artifacts are stored
    /// first, per job (same crash-ordering invariant as `finish`), then
    /// every record transition lands in one store commit — on a durable
    /// store, one fsync for the whole sweep.
    pub fn finish_batch(&self, outcomes: Vec<(u64, Result<JobResult, MariohError>)>) {
        if outcomes.is_empty() {
            return;
        }
        let mut timed_out: HashMap<u64, u64> = HashMap::new();
        {
            let mut orch = self.lock();
            for (id, _) in &outcomes {
                orch.running = orch.running.saturating_sub(1);
                orch.tokens.remove(id);
                if let Some(secs) = JobManager::close_deadline(&mut orch, *id) {
                    timed_out.insert(*id, secs);
                }
            }
        }
        let mut transitions: Vec<(u64, Transition)> = Vec::with_capacity(outcomes.len());
        for (id, outcome) in outcomes {
            match outcome {
                Ok(result) => {
                    let result = Arc::new(result);
                    // Artifact before record, exactly like `finish`.
                    if let Some(hash) = self.store().spec_hash(id) {
                        if let Err(e) = self.shared.artifacts.put_result(&hash, &result) {
                            transitions.push((
                                id,
                                Transition::Failed(format!(
                                    "reconstruction succeeded but its result could not be \
                                     persisted: {e}; resubmit once storage recovers"
                                )),
                            ));
                            continue;
                        }
                    }
                    transitions.push((
                        id,
                        Transition::Done {
                            result,
                            cached: false,
                        },
                    ));
                }
                Err(MariohError::Cancelled) => transitions.push((
                    id,
                    match timed_out.get(&id) {
                        Some(secs) => Transition::Failed(timeout_message(*secs)),
                        None => Transition::Cancelled,
                    },
                )),
                Err(e) => transitions.push((id, Transition::Failed(e.to_string()))),
            }
        }
        self.store().transition_batch(transitions);
    }

    /// Applies a sweep of non-terminal record transitions (progress
    /// counters, error notes) in one store commit. Used by the shard
    /// dispatcher's event sink; no orchestration state changes.
    pub fn record_progress_batch(&self, transitions: Vec<(u64, Transition)>) {
        if !transitions.is_empty() {
            self.store().transition_batch(transitions);
        }
    }

    /// Records a job answered from the artifact cache by a worker that
    /// found the artifact only after dispatch (e.g. its identical twin
    /// finished while it sat in the queue).
    pub fn finish_cached(&self, id: u64, result: Arc<JobResult>) {
        {
            let mut orch = self.lock();
            orch.running = orch.running.saturating_sub(1);
            orch.tokens.remove(&id);
            JobManager::close_deadline(&mut orch, id);
        }
        self.shared.cache_hits.inc();
        self.store().transition(
            id,
            Transition::Done {
                result,
                cached: true,
            },
        );
    }

    /// The cached result for a spec hash, if any.
    pub fn cached_result(&self, hash: &SpecHash) -> Option<Arc<JobResult>> {
        self.shared.artifacts.get_result(hash)
    }

    /// Resolves a job's `model` reference against the stores.
    ///
    /// # Errors
    ///
    /// A user-facing message (the job's failure text) when the donor is
    /// not done or its model is gone.
    pub fn resolve_model(&self, model: &ModelRef) -> Result<SavedModel, String> {
        match model {
            ModelRef::Job(donor) => {
                let view = self
                    .store()
                    .view(*donor)
                    .ok_or_else(|| format!("model donor job {donor} is unknown (or evicted)"))?;
                if view.status != JobStatus::Done {
                    return Err(format!(
                        "model donor job {donor} is {}; models exist only for done jobs",
                        view.status
                    ));
                }
                let hash = self
                    .store()
                    .spec_hash(*donor)
                    .ok_or_else(|| format!("model donor job {donor} is unknown (or evicted)"))?;
                self.shared.artifacts.get_model(&hash).ok_or_else(|| {
                    format!(
                        "no stored model for job {donor} (it was answered from cache, \
                         or the artifact store lost it)"
                    )
                })
            }
            ModelRef::Named(name) => self
                .shared
                .artifacts
                .get_named_model(name)
                .ok_or_else(|| format!("no saved model named {name:?}")),
        }
    }

    /// Stores the model a job trained, keyed by the job's spec hash, so
    /// later jobs can reference it as `model: "job:<id>"`. Best-effort:
    /// an artifact-store failure degrades model reuse, not the job.
    pub fn store_model(&self, hash: &SpecHash, model: &SavedModel) {
        let _ = self.shared.artifacts.put_model(hash, model);
    }

    /// Counts one pipeline actually executed (called by workers, never
    /// on cache hits).
    pub fn note_pipeline_run(&self) {
        self.shared.pipeline_runs.inc();
    }

    /// Counts one classifier trained (driven by the observer's
    /// `on_training_done`, so model-reuse jobs — which skip training —
    /// never count).
    pub fn note_trained(&self) {
        self.shared.models_trained.inc();
    }

    /// Records that this manager serves through `shards` shard worker
    /// processes (surfaces in `/stats`).
    pub fn set_shard_mode(&self, shards: usize) {
        self.shared.shards.set(shards as u64);
    }

    /// Counts one shard worker replacement (SIGKILL, crash, or heartbeat
    /// timeout followed by respawn).
    pub fn note_shard_restart(&self) {
        self.shared.shard_restarts.inc();
    }

    /// This manager's metrics registry — where the HTTP layer records
    /// request latencies and the server counters above live.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Attaches the shard dispatcher so stats and metrics can fold in
    /// per-shard heartbeat ages, in-flight counts, and pushed worker
    /// registries. Held weakly — the dispatcher's event sink already
    /// owns a manager clone.
    pub fn attach_dispatcher(&self, dispatcher: &Arc<Dispatcher>) {
        *self
            .shared
            .dispatcher
            .lock()
            .expect("dispatcher handle lock poisoned") = Arc::downgrade(dispatcher);
    }

    /// Per-shard status (heartbeat age, in-flight jobs, latest pushed
    /// metrics snapshot); empty when no dispatcher is attached.
    pub fn shard_statuses(&self) -> Vec<ShardStatus> {
        self.shared
            .dispatcher
            .lock()
            .expect("dispatcher handle lock poisoned")
            .upgrade()
            .map(|d| d.shard_statuses())
            .unwrap_or_default()
    }

    /// The one merged metrics view every frontend renders from: this
    /// manager's registry, the process-global registry (engine phases,
    /// store, dispatch wire traffic), and each shard worker's pushed
    /// registry re-labelled with `shard="K"`. `/stats` and `GET /metrics`
    /// both read this, so they can never disagree.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.shared.registry.snapshot();
        snap.merge(&marioh_obs::global().snapshot());
        for status in self.shard_statuses() {
            if let Some(text) = &status.snapshot {
                if let Ok(worker) = Snapshot::decode(text) {
                    snap.merge(&worker.with_label("shard", &status.shard.to_string()));
                }
            }
        }
        snap
    }

    /// Cancels a job: de-queues it if still queued, fires its token if
    /// running. Terminal jobs are left unchanged. Returns the resulting
    /// status, or `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let mut orch = self.lock();
        let view = self.store().view(id)?;
        if view.status.is_terminal() {
            return Some(view.status);
        }
        orch.queue.retain(|q| *q != id);
        if let Some(token) = orch.tokens.get(&id) {
            token.cancel();
        }
        if view.status == JobStatus::Queued {
            orch.tokens.remove(&id);
        }
        // An explicit cancel takes the job off the deadline watch; a
        // timeout already recorded races at the store (terminal-once).
        orch.deadlines.remove(&id);
        // The store arbitrates the race with a finishing worker:
        // whichever terminal transition lands first wins.
        self.store().transition(id, Transition::Cancelled)
    }

    /// A snapshot of one job, or `None` for unknown ids.
    pub fn view(&self, id: u64) -> Option<JobView> {
        self.store().view(id)
    }

    /// Snapshots of every retained job, ascending by id (`GET /jobs`).
    pub fn scan(&self) -> Vec<JobView> {
        self.store().scan()
    }

    /// Every stored model (`GET /models`).
    pub fn list_models(&self) -> Vec<ModelEntry> {
        self.shared.artifacts.list_models()
    }

    /// The job's status and (for done jobs) a shared handle to its
    /// result. An `Arc` clone, so large reconstructions are never copied
    /// under the store lock.
    pub fn result(&self, id: u64) -> Option<(JobStatus, Option<Arc<JobResult>>)> {
        self.store().result(id)
    }

    /// Records a completed search round for `id`.
    pub fn record_round(&self, id: u64, round: usize) {
        self.store().transition(
            id,
            Transition::Progress {
                rounds: Some(round),
                committed: None,
            },
        );
    }

    /// Records the cumulative commit total for `id`.
    pub fn record_commit(&self, id: u64, total_committed: usize) {
        self.store().transition(
            id,
            Transition::Progress {
                rounds: None,
                committed: Some(total_committed),
            },
        );
    }

    /// Records a worker-side failure message for `id`.
    pub fn record_error(&self, id: u64, msg: &str) {
        self.store()
            .transition(id, Transition::Note(msg.to_owned()));
    }

    /// Aggregate queue/worker/cache counters.
    pub fn stats(&self) -> ServerStats {
        let (queue_depth, running) = {
            let orch = self.lock();
            (orch.queue.len(), orch.running)
        };
        let counters = self.store().counters();
        let ArtifactStats {
            results,
            models,
            result_bytes,
            model_bytes,
        } = self.shared.artifacts.artifact_stats();
        // Engine reuse totals are recorded once, in core, on the global
        // registry (and on each shard worker's, folded in with a
        // `shard="K"` label); summing the family covers both modes.
        let merged = self.metrics_snapshot();
        ServerStats {
            queue_depth,
            running,
            workers: self.shared.workers,
            queue_cap: self.shared.queue_cap,
            submitted: counters.submitted,
            finished: counters.finished,
            pipeline_runs: self.shared.pipeline_runs.get(),
            cache_hits: self.shared.cache_hits.get(),
            models_trained: self.shared.models_trained.get(),
            cliques_reused: merged.total("marioh_engine_cliques_reused_total"),
            cliques_rescored: merged.total("marioh_engine_cliques_rescored_total"),
            results_cached: results,
            models_cached: models,
            result_bytes,
            model_bytes,
            shards: self.shared.shards.get() as usize,
            shard_restarts: self.shared.shard_restarts.get(),
            store: self.store().kind(),
            degraded: self.store().degraded(),
        }
    }

    /// Whether the job store is in read-only degraded mode (surfaced on
    /// `/healthz` and `/stats`).
    pub fn store_degraded(&self) -> bool {
        self.store().degraded()
    }

    /// Stops accepting and dispatching work: cancels every queued job,
    /// fires the tokens of running jobs, and wakes all blocked
    /// [`JobManager::take_next`] calls.
    pub fn shutdown(&self) {
        let mut orch = self.lock();
        orch.shutdown = true;
        while let Some(id) = orch.queue.pop_front() {
            if let Some(token) = orch.tokens.remove(&id) {
                token.cancel();
            }
            self.store().transition(id, Transition::Cancelled);
        }
        for token in orch.tokens.values() {
            token.cancel();
        }
        self.shared.work_ready.notify_all();
    }
}

/// How often the deadline watchdog scans for expired jobs.
const DEADLINE_TICK: Duration = Duration::from_millis(50);

/// The typed failure reason of a job the deadline watchdog cancelled.
fn timeout_message(secs: u64) -> String {
    format!("timed out: job exceeded its {secs}s deadline and was cancelled")
}

/// The deadline watchdog: scans running jobs' deadlines every
/// [`DEADLINE_TICK`] and fires the cancel token of any job past its
/// deadline — the same token `DELETE /jobs/:id` fires, so both serving
/// modes (in-process pool and shard dispatch) stop the job through
/// their existing cancellation machinery. The finish paths then turn
/// the worker's `Cancelled` report into a typed timeout failure via the
/// `timed_out` ledger. Exits when the manager shuts down or is dropped.
fn deadline_watchdog(shared: Weak<Shared>) {
    loop {
        std::thread::sleep(DEADLINE_TICK);
        let Some(shared) = shared.upgrade() else {
            return;
        };
        let mut orch = shared.orch.lock().expect("job queue lock poisoned");
        if orch.shutdown {
            return;
        }
        if orch.deadlines.is_empty() {
            continue;
        }
        let now = Instant::now();
        let expired: Vec<(u64, u64)> = orch
            .deadlines
            .iter()
            .filter(|(_, (deadline, _))| *deadline <= now)
            .map(|(id, (_, secs))| (*id, *secs))
            .collect();
        for (id, secs) in expired {
            orch.deadlines.remove(&id);
            orch.timed_out.insert(id, secs);
            if let Some(token) = orch.tokens.get(&id) {
                token.cancel();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use marioh_hypergraph::hyperedge::edge;

    fn tiny_spec() -> JobSpec {
        JobSpec::from_json(&Json::parse(r#"{"dataset": "Hosts"}"#).unwrap()).unwrap()
    }

    fn manager_with_retention(queue_cap: usize, workers: usize, retain: usize) -> JobManager {
        let store = Arc::new(MemoryStore::new(retain));
        JobManager::with_stores(queue_cap, workers, store.clone(), store)
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let m = JobManager::new(4, 1);
        let id = m.submit(tiny_spec()).unwrap();
        assert_eq!(m.view(id).unwrap().status, JobStatus::Queued);
        assert_eq!(m.stats().queue_depth, 1);

        let job = m.take_next().unwrap();
        assert_eq!(job.id, id);
        assert_eq!(m.view(id).unwrap().status, JobStatus::Running);
        assert_eq!(m.stats().running, 1);

        m.record_round(id, 3);
        m.record_commit(id, 17);
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        m.finish(
            id,
            Ok(JobResult {
                reconstruction: h,
                jaccard: 1.0,
            }),
        );
        let view = m.view(id).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!(view.rounds, 3);
        assert_eq!(view.committed, 17);
        assert!(!view.cached);
        let stats = m.stats();
        assert_eq!((stats.running, stats.finished, stats.submitted), (0, 1, 1));
        assert!(m.result(id).unwrap().1.is_some());
        assert_eq!(stats.results_cached, 1, "done results enter the cache");
    }

    #[test]
    fn identical_resubmission_is_answered_from_the_cache() {
        let m = JobManager::new(4, 1);
        let first = m.submit(tiny_spec()).unwrap();
        let job = m.take_next().unwrap();
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        m.finish(
            job.id,
            Ok(JobResult {
                reconstruction: h,
                jaccard: 0.9,
            }),
        );
        // The identical spec never touches the queue: done instantly,
        // flagged cached, sharing the stored result.
        let second = m.submit(tiny_spec()).unwrap();
        assert_ne!(first, second);
        let view = m.view(second).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert!(view.cached);
        assert_eq!(m.stats().queue_depth, 0);
        assert_eq!(m.stats().cache_hits, 1);
        let (_, result) = m.result(second).unwrap();
        assert_eq!(result.unwrap().jaccard, 0.9);
        // A semantically different spec misses.
        let mut other = tiny_spec();
        other.seed = 7;
        let third = m.submit(other).unwrap();
        assert_eq!(m.view(third).unwrap().status, JobStatus::Queued);
    }

    #[test]
    fn batch_submission_is_atomic_with_per_index_errors() {
        let m = JobManager::new(8, 1);
        // One invalid spec rejects the whole batch, naming its index.
        let mut bad = tiny_spec();
        bad.model = Some(ModelRef::Job(42));
        match m.submit_batch(vec![tiny_spec(), bad]).unwrap_err() {
            BatchError::Invalid(errors) => {
                assert_eq!(errors.len(), 1);
                assert_eq!(errors[0].0, 1, "the *second* spec is the bad one");
                assert!(errors[0].1.contains("donor job 42"), "{}", errors[0].1);
            }
            other => panic!("expected per-index errors, got {other:?}"),
        }
        assert_eq!(m.stats().submitted, 0, "a rejected batch submits nothing");
        assert!(matches!(
            m.submit_batch(Vec::new()).unwrap_err(),
            BatchError::Rejected(SubmitError::Invalid(msg)) if msg.contains("empty")
        ));
        // A valid batch lands under one batch id, in order.
        let mut second = tiny_spec();
        second.seed = 7;
        let BatchSubmission { batch, ids } = m.submit_batch(vec![tiny_spec(), second]).unwrap();
        assert_eq!(ids.len(), 2);
        let views = m.batch_view(batch).unwrap();
        assert_eq!(views.iter().map(|(id, _)| *id).collect::<Vec<_>>(), ids);
        assert!(views
            .iter()
            .all(|(_, v)| v.as_ref().unwrap().status == JobStatus::Queued));
        assert!(m.batch_view(batch + 1).is_none());
        // The queue guards the batch as a whole: all or nothing.
        let too_many: Vec<JobSpec> = (10..20)
            .map(|seed| {
                let mut spec = tiny_spec();
                spec.seed = seed;
                spec
            })
            .collect();
        assert!(matches!(
            m.submit_batch(too_many).unwrap_err(),
            BatchError::Rejected(SubmitError::QueueFull { capacity: 8 })
        ));
        assert_eq!(m.stats().queue_depth, 2, "rejected batch enqueued nothing");
        // Cached members are done on arrival and take no queue slot.
        let job = m.take_next().unwrap();
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        m.finish(
            job.id,
            Ok(JobResult {
                reconstruction: h,
                jaccard: 1.0,
            }),
        );
        let mut fresh = tiny_spec();
        fresh.seed = 99;
        let BatchSubmission { batch, .. } = m.submit_batch(vec![tiny_spec(), fresh]).unwrap();
        let views = m.batch_view(batch).unwrap();
        let first = views[0].1.as_ref().unwrap();
        assert_eq!(first.status, JobStatus::Done);
        assert!(first.cached);
        assert_eq!(views[1].1.as_ref().unwrap().status, JobStatus::Queued);
        assert_eq!(m.stats().cache_hits, 1);
    }

    #[test]
    fn dangling_model_references_are_rejected_at_submission() {
        let m = JobManager::new(4, 1);
        let mut spec = tiny_spec();
        spec.model = Some(ModelRef::Job(42));
        let err = m.submit(spec).unwrap_err();
        assert!(
            matches!(&err, SubmitError::Invalid(msg) if msg.contains("donor job 42")),
            "{err}"
        );
        let mut spec = tiny_spec();
        spec.model = Some(ModelRef::Named("nope".to_owned()));
        let err = m.submit(spec).unwrap_err();
        assert!(
            matches!(&err, SubmitError::Invalid(msg) if msg.contains("no saved model")),
            "{err}"
        );
        // A donor that exists but is not done yet is rejected too — on a
        // multi-worker pool it would otherwise race to a spurious
        // dispatch-time failure.
        let queued_donor = m.submit(tiny_spec()).unwrap();
        let mut spec = tiny_spec();
        spec.seed = 9;
        spec.model = Some(ModelRef::Job(queued_donor));
        let err = m.submit(spec).unwrap_err();
        assert!(
            matches!(&err, SubmitError::Invalid(msg) if msg.contains("is queued")),
            "{err}"
        );
    }

    #[test]
    fn invalid_spec_is_rejected_at_submit_with_builder_message() {
        use marioh_core::Pipeline;
        let m = JobManager::new(4, 1);
        let body = Json::parse(r#"{"dataset": "Hosts", "params": {"theta_init": 1.5}}"#).unwrap();
        let err = m.submit(JobSpec::from_json(&body).unwrap()).unwrap_err();
        let expected = Pipeline::builder()
            .theta_init(1.5)
            .build()
            .unwrap_err()
            .to_string();
        assert!(
            matches!(&err, SubmitError::Invalid(m) if *m == expected),
            "{err}"
        );
        assert_eq!(m.stats().submitted, 0);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let m = JobManager::new(2, 1);
        m.submit(tiny_spec()).unwrap();
        m.submit(tiny_spec()).unwrap();
        let err = m.submit(tiny_spec()).unwrap_err();
        assert!(
            matches!(err, SubmitError::QueueFull { capacity: 2 }),
            "{err}"
        );
        // Draining one slot re-opens the queue.
        let job = m.take_next().unwrap();
        m.submit(tiny_spec()).unwrap();
        m.finish(job.id, Err(MariohError::config("boom")));
        assert_eq!(m.view(job.id).unwrap().status, JobStatus::Failed);
    }

    #[test]
    fn cancel_dequeues_queued_jobs_and_fires_running_tokens() {
        let m = JobManager::new(8, 1);
        let queued = m.submit(tiny_spec()).unwrap();
        assert_eq!(m.cancel(queued), Some(JobStatus::Cancelled));
        assert_eq!(m.stats().queue_depth, 0);
        // The queue no longer hands it out.
        let running = m.submit(tiny_spec()).unwrap();
        let job = m.take_next().unwrap();
        assert_eq!(job.id, running);
        assert!(!job.cancel.is_cancelled());
        assert_eq!(m.cancel(running), Some(JobStatus::Cancelled));
        assert!(job.cancel.is_cancelled());
        // The worker's report afterwards cannot resurrect the job...
        m.finish(running, Err(MariohError::Cancelled));
        assert_eq!(m.view(running).unwrap().status, JobStatus::Cancelled);
        // ...and it was counted terminal exactly once.
        assert_eq!(m.stats().finished, 2);
        // Cancelling a terminal or unknown job is a no-op.
        assert_eq!(m.cancel(running), Some(JobStatus::Cancelled));
        assert_eq!(m.stats().finished, 2);
        assert_eq!(m.cancel(999), None);
    }

    #[test]
    fn terminal_records_are_evicted_beyond_the_retention_cap() {
        let m = manager_with_retention(4, 1, 3);
        let ids: Vec<u64> = (0..5)
            .map(|_| {
                let id = m.submit(tiny_spec()).unwrap();
                let job = m.take_next().unwrap();
                assert_eq!(job.id, id);
                m.finish(id, Err(MariohError::config("boom")));
                id
            })
            .collect();
        // Only the three most recent terminal records remain; evicted
        // ids behave exactly like unknown ones.
        for old in &ids[..2] {
            assert!(m.view(*old).is_none());
            assert!(m.result(*old).is_none());
            assert_eq!(m.cancel(*old), None);
        }
        for recent in &ids[2..] {
            assert_eq!(m.view(*recent).unwrap().status, JobStatus::Failed);
        }
        // Counters are history, not store size: eviction leaves them.
        assert_eq!(m.stats().finished, 5);
        assert_eq!(m.scan().len(), 3);
    }

    #[test]
    fn deadline_watchdog_times_out_running_jobs_with_a_typed_reason() {
        let m = JobManager::new(4, 1);
        m.set_job_timeout(Some(Duration::from_secs(1)));
        let id = m.submit(tiny_spec()).unwrap();
        let job = m.take_next().unwrap();
        // The watchdog fires the job's token once the deadline passes.
        let t0 = Instant::now();
        while !job.cancel.is_cancelled() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // The worker reports the cancellation; the record shows a typed
        // timeout failure, not a plain cancel.
        m.finish(id, Err(MariohError::Cancelled));
        let view = m.view(id).unwrap();
        assert_eq!(view.status, JobStatus::Failed);
        let msg = view.error.expect("timeouts carry a reason");
        assert!(msg.contains("timed out"), "{msg}");
        assert!(msg.contains("1s deadline"), "{msg}");
    }

    #[test]
    fn spec_timeout_overrides_the_default_and_explicit_cancel_stays_cancelled() {
        let m = JobManager::new(8, 1);
        // A server-wide default long enough to never fire in this test.
        m.set_job_timeout(Some(Duration::from_secs(3600)));
        let spec = JobSpec::from_json(
            &Json::parse(r#"{"dataset": "Hosts", "timeout_secs": 1, "seed": 3}"#).unwrap(),
        )
        .unwrap();
        let id = m.submit(spec).unwrap();
        let job = m.take_next().unwrap();
        let t0 = std::time::Instant::now();
        while !job.cancel.is_cancelled() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "spec-level deadline never fired"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        m.finish(id, Err(MariohError::Cancelled));
        assert_eq!(m.view(id).unwrap().status, JobStatus::Failed);

        // An explicit DELETE under an armed deadline records Cancelled,
        // never a timeout.
        let other = m.submit(tiny_spec()).unwrap();
        let job = m.take_next().unwrap();
        assert_eq!(job.id, other);
        assert_eq!(m.cancel(other), Some(JobStatus::Cancelled));
        m.finish(other, Err(MariohError::Cancelled));
        assert_eq!(m.view(other).unwrap().status, JobStatus::Cancelled);
    }

    #[test]
    fn shutdown_wakes_blocked_workers_and_cancels_queued_jobs() {
        let m = JobManager::new(8, 1);
        let waiter = {
            let m = m.clone();
            std::thread::spawn(move || m.take_next().map(|j| j.id))
        };
        let id = m.submit(tiny_spec()).unwrap();
        // The waiter takes the only job; give it a moment.
        while m.stats().running == 0 {
            std::thread::yield_now();
        }
        assert_eq!(waiter.join().unwrap(), Some(id));

        let queued = m.submit(tiny_spec()).unwrap();
        let blocked = {
            let m = m.clone();
            std::thread::spawn(move || m.take_next().map(|j| j.id))
        };
        // `queued` may be taken by `blocked` before shutdown; either way
        // the thread must return promptly after shutdown.
        m.shutdown();
        let taken = blocked.join().unwrap();
        if taken.is_none() {
            assert_eq!(m.view(queued).unwrap().status, JobStatus::Cancelled);
        }
        assert!(matches!(
            m.submit(tiny_spec()),
            Err(SubmitError::Invalid(msg)) if msg.contains("shutting down")
        ));
    }
}
