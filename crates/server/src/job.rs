//! Job specifications, the bounded FIFO queue, and the in-memory store.
//!
//! A [`JobSpec`] describes one reconstruction: its input (a registry
//! dataset or an uploaded edge list), the MARIOH variant, a seed, and
//! hyperparameter overrides that are validated through the same
//! [`Pipeline::builder`] every other frontend uses — an invalid
//! `theta_init` is rejected at submission with the builder's own message,
//! never after a worker has picked the job up.
//!
//! The [`JobManager`] owns the lifecycle: `Queued → Running →
//! Done | Failed | Cancelled`. Submission is bounded (a full queue is
//! backpressure, not memory growth), workers block on a condvar, and
//! cancellation is cooperative through each job's [`CancelToken`].

use crate::json::Json;
use marioh_core::{CancelToken, MariohError, Pipeline, PipelineBuilder, Variant};
use marioh_datasets::PaperDataset;
use marioh_hypergraph::{io as hio, Hypergraph};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Cap on the per-job [`JobSpec::throttle_ms`] pacing knob.
pub const MAX_THROTTLE_MS: u64 = 60_000;

/// What a job reconstructs.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// A registry dataset, generated at its fixed per-dataset seed.
    Dataset {
        /// Which calibrated dataset to generate.
        dataset: PaperDataset,
        /// Generation scale (`None` = the dataset's default scale).
        scale: Option<f64>,
    },
    /// An uploaded hypergraph, parsed from the text edge-list format of
    /// [`marioh_hypergraph::io`] at submission time.
    Edges(Hypergraph),
}

/// Hyperparameter overrides; `None` keeps the builder's default.
#[derive(Debug, Clone, Default)]
pub struct JobParams {
    /// Initial classification threshold `θ_init`.
    pub theta_init: Option<f64>,
    /// Negative-prediction processing ratio `r` in percent.
    pub neg_ratio: Option<f64>,
    /// Threshold adjust ratio `α`.
    pub alpha: Option<f64>,
    /// Worker threads inside one reconstruction.
    pub threads: Option<usize>,
    /// Outer-loop round cap.
    pub max_iterations: Option<usize>,
    /// Fraction of source hyperedges used as supervision.
    pub supervision_fraction: Option<f64>,
    /// Negatives sampled per positive during training.
    pub negative_ratio: Option<f64>,
    /// Toggles the provable filtering step.
    pub filtering: Option<bool>,
    /// Toggles Phase 2 of the bidirectional search.
    pub bidirectional: Option<bool>,
}

/// One reconstruction job as accepted by `POST /jobs`.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The input hypergraph source.
    pub input: JobInput,
    /// The MARIOH variant to run.
    pub variant: Variant,
    /// Seed driving the split/train/reconstruct RNG.
    pub seed: u64,
    /// Pacing knob for load tests and demos: the worker sleeps this many
    /// milliseconds (cancellable) before starting, and again after each
    /// search round, so tiny jobs occupy workers for an observable time.
    pub throttle_ms: u64,
    /// Hyperparameter overrides.
    pub params: JobParams,
}

fn expect_num(key: &str, v: &Json) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("hyperparameter {key:?} must be a number"))
}

fn expect_uint(key: &str, v: &Json) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("hyperparameter {key:?} must be a non-negative integer"))
}

fn expect_bool(key: &str, v: &Json) -> Result<bool, String> {
    v.as_bool()
        .ok_or_else(|| format!("hyperparameter {key:?} must be a boolean"))
}

fn check_unique(kind: &str, pairs: &[(String, Json)]) -> Result<(), String> {
    for (i, (key, _)) in pairs.iter().enumerate() {
        if pairs[..i].iter().any(|(k, _)| k == key) {
            return Err(format!("duplicate {kind} {key:?}"));
        }
    }
    Ok(())
}

/// Resolves a method name (`"MARIOH"`, `"marioh-f"`, …) to its variant.
pub fn variant_by_name(name: &str) -> Option<Variant> {
    Variant::all()
        .into_iter()
        .find(|v| v.name().eq_ignore_ascii_case(name))
        .or((name.eq_ignore_ascii_case("full")).then_some(Variant::Full))
}

impl JobParams {
    /// Parses the `"params"` object, rejecting duplicate and unknown
    /// hyperparameters. Values are range-checked later by
    /// [`JobSpec::validate`], so invalid domains carry the pipeline
    /// builder's own message.
    pub fn from_json(v: &Json) -> Result<JobParams, String> {
        let pairs = v
            .as_object()
            .ok_or_else(|| "\"params\" must be an object".to_owned())?;
        check_unique("hyperparameter", pairs)?;
        let mut params = JobParams::default();
        for (key, value) in pairs {
            match key.as_str() {
                "theta_init" => params.theta_init = Some(expect_num(key, value)?),
                "neg_ratio" => params.neg_ratio = Some(expect_num(key, value)?),
                "alpha" => params.alpha = Some(expect_num(key, value)?),
                "threads" => params.threads = Some(expect_uint(key, value)? as usize),
                "max_iterations" => params.max_iterations = Some(expect_uint(key, value)? as usize),
                "supervision_fraction" => {
                    params.supervision_fraction = Some(expect_num(key, value)?)
                }
                "negative_ratio" => params.negative_ratio = Some(expect_num(key, value)?),
                "filtering" => params.filtering = Some(expect_bool(key, value)?),
                "bidirectional" => params.bidirectional = Some(expect_bool(key, value)?),
                other => {
                    return Err(format!(
                        "unknown hyperparameter {other:?}; known: theta_init, neg_ratio, alpha, \
                         threads, max_iterations, supervision_fraction, negative_ratio, \
                         filtering, bidirectional"
                    ))
                }
            }
        }
        Ok(params)
    }
}

impl JobSpec {
    /// Parses a `POST /jobs` body. Every message this returns is the 400
    /// response body; hyperparameter *domain* errors are deferred to
    /// [`JobSpec::validate`] so they carry the builder's wording.
    pub fn from_json(body: &Json) -> Result<JobSpec, String> {
        let pairs = body
            .as_object()
            .ok_or_else(|| "request body must be a JSON object".to_owned())?;
        check_unique("field", pairs)?;

        let mut dataset: Option<PaperDataset> = None;
        let mut scale: Option<f64> = None;
        let mut edges: Option<Hypergraph> = None;
        let mut variant = Variant::Full;
        let mut seed = 0u64;
        let mut throttle_ms = 0u64;
        let mut params = JobParams::default();
        for (key, value) in pairs {
            match key.as_str() {
                "dataset" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| "\"dataset\" must be a string".to_owned())?;
                    dataset = Some(PaperDataset::resolve(name)?);
                }
                "scale" => {
                    let v = value
                        .as_f64()
                        .filter(|v| *v > 0.0)
                        .ok_or_else(|| "\"scale\" must be a positive number".to_owned())?;
                    scale = Some(v);
                }
                "edges" => {
                    let text = value
                        .as_str()
                        .ok_or_else(|| "\"edges\" must be a string in the hypergraph text format (one `<multiplicity> <node> <node> [...]` record per line)".to_owned())?;
                    let h = hio::read_hypergraph(text.as_bytes())
                        .map_err(|e| format!("invalid edge list: {e}"))?;
                    edges = Some(h);
                }
                "method" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| "\"method\" must be a string".to_owned())?;
                    variant = variant_by_name(name).ok_or_else(|| {
                        format!(
                            "unknown method {name:?}; known: {}",
                            Variant::all().map(|v| v.name()).join(", ")
                        )
                    })?;
                }
                "seed" => {
                    seed = value
                        .as_u64()
                        .ok_or_else(|| "\"seed\" must be a non-negative integer".to_owned())?;
                }
                "throttle_ms" => {
                    throttle_ms = value
                        .as_u64()
                        .filter(|v| *v <= MAX_THROTTLE_MS)
                        .ok_or_else(|| {
                            format!("\"throttle_ms\" must be an integer in [0, {MAX_THROTTLE_MS}]")
                        })?;
                }
                "params" => params = JobParams::from_json(value)?,
                other => {
                    return Err(format!(
                        "unknown field {other:?}; known: dataset, scale, edges, method, seed, \
                         throttle_ms, params"
                    ))
                }
            }
        }

        let input = match (dataset, edges) {
            (Some(dataset), None) => JobInput::Dataset { dataset, scale },
            (None, Some(h)) => JobInput::Edges(h),
            (Some(_), Some(_)) => {
                return Err("provide either \"dataset\" or \"edges\", not both".to_owned())
            }
            (None, None) => return Err("provide \"dataset\" or \"edges\"".to_owned()),
        };
        if scale.is_some() && matches!(input, JobInput::Edges(_)) {
            return Err("\"scale\" only applies to registry datasets".to_owned());
        }
        Ok(JobSpec {
            input,
            variant,
            seed,
            throttle_ms,
            params,
        })
    }

    /// Applies variant and overrides to a pipeline builder.
    pub fn apply(&self, builder: PipelineBuilder) -> PipelineBuilder {
        let p = &self.params;
        let mut b = builder.variant(self.variant);
        if let Some(v) = p.theta_init {
            b = b.theta_init(v);
        }
        if let Some(v) = p.neg_ratio {
            b = b.neg_ratio(v);
        }
        if let Some(v) = p.alpha {
            b = b.alpha(v);
        }
        if let Some(v) = p.threads {
            b = b.threads(v);
        }
        if let Some(v) = p.max_iterations {
            b = b.max_iterations(v);
        }
        if let Some(v) = p.supervision_fraction {
            b = b.supervision_fraction(v);
        }
        if let Some(v) = p.negative_ratio {
            b = b.negative_ratio(v);
        }
        if let Some(v) = p.filtering {
            b = b.filtering(v);
        }
        if let Some(v) = p.bidirectional {
            b = b.bidirectional(v);
        }
        b
    }

    /// Runs the pipeline builder's validation over the overrides.
    ///
    /// # Errors
    ///
    /// Exactly the [`MariohError::Config`] the builder produces — the
    /// HTTP layer forwards its message verbatim as the 400 body.
    pub fn validate(&self) -> Result<(), MariohError> {
        self.apply(Pipeline::builder()).build().map(|_| ())
    }
}

/// The lifecycle states of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// Picked up by a worker.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// Finished with an error (see the job's `error`).
    Failed,
    /// Cancelled, by `DELETE /jobs/:id` or server shutdown.
    Cancelled,
}

impl JobStatus {
    /// The lower-case wire name used in JSON responses.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A successful reconstruction.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The reconstructed hypergraph.
    pub reconstruction: Hypergraph,
    /// Jaccard similarity against the held-out target half.
    pub jaccard: f64,
}

/// A point-in-time snapshot of one job, as served by `GET /jobs/:id`.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id.
    pub id: u64,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Search rounds completed so far.
    pub rounds: usize,
    /// Hyperedges committed by the search so far.
    pub committed: usize,
    /// Failure message, present for failed jobs.
    pub error: Option<String>,
}

/// Aggregate counters served by `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Jobs waiting in the queue.
    pub queue_depth: usize,
    /// Jobs currently held by workers.
    pub running: usize,
    /// Size of the worker pool.
    pub workers: usize,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Jobs accepted since startup.
    pub submitted: u64,
    /// Jobs that reached a terminal state since startup.
    pub finished: u64,
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// Invalid specification; the message is the 400 response body.
    Invalid(String),
    /// The queue is at capacity; the client should retry later (503).
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(msg) => f.write_str(msg),
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue is full (capacity {capacity}); retry later")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Terminal job records retained for polling before the oldest are
/// evicted — the queue capacity bounds queued work, this bounds the
/// store itself, so a long-lived server's memory does not grow without
/// limit. Evicted ids answer 404, like unknown ones.
const MAX_RETAINED_JOBS: usize = 1024;

struct JobRecord {
    /// Taken (not cloned) by the worker that dispatches the job.
    spec: Option<JobSpec>,
    status: JobStatus,
    rounds: usize,
    committed: usize,
    error: Option<String>,
    /// Shared, not cloned, on reads: results can be large hypergraphs
    /// and [`JobManager::result`] runs under the store lock.
    result: Option<Arc<JobResult>>,
    cancel: CancelToken,
}

struct State {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    /// Terminal job ids in completion order, for retention eviction.
    terminal_order: VecDeque<u64>,
    shutdown: bool,
    running: usize,
    submitted: u64,
    finished: u64,
}

impl State {
    /// Counts a job that just reached a terminal state and evicts the
    /// oldest terminal records beyond the retention cap.
    fn note_terminal(&mut self, id: u64, retain: usize) {
        self.finished += 1;
        self.terminal_order.push_back(id);
        while self.terminal_order.len() > retain {
            if let Some(evicted) = self.terminal_order.pop_front() {
                self.jobs.remove(&evicted);
            }
        }
    }
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    queue_cap: usize,
    workers: usize,
    retain: usize,
}

/// The concurrent job queue and store. Cheap to clone; all clones share
/// one store.
#[derive(Clone)]
pub struct JobManager {
    shared: Arc<Shared>,
}

/// A job handed to a worker by [`JobManager::take_next`].
pub struct DispatchedJob {
    /// Job id, for progress reports and [`JobManager::finish`].
    pub id: u64,
    /// The specification (ownership moves to the worker).
    pub spec: JobSpec,
    /// The token `DELETE /jobs/:id` and shutdown fire.
    pub cancel: CancelToken,
}

impl JobManager {
    /// A manager with the given queue capacity, reporting `workers` in
    /// its stats (the worker pool itself lives in the server). Retains
    /// the [`MAX_RETAINED_JOBS`] most recent terminal records.
    pub fn new(queue_cap: usize, workers: usize) -> JobManager {
        JobManager::with_retention(queue_cap, workers, MAX_RETAINED_JOBS)
    }

    fn with_retention(queue_cap: usize, workers: usize, retain: usize) -> JobManager {
        JobManager {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    next_id: 1,
                    queue: VecDeque::new(),
                    jobs: HashMap::new(),
                    terminal_order: VecDeque::new(),
                    shutdown: false,
                    running: 0,
                    submitted: 0,
                    finished: 0,
                }),
                work_ready: Condvar::new(),
                queue_cap,
                workers,
                retain,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("job store lock poisoned")
    }

    /// Validates and enqueues a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] with the pipeline builder's message for
    /// bad hyperparameters (or when shutting down);
    /// [`SubmitError::QueueFull`] when the queue is at capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        spec.validate()
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;
        let mut state = self.lock();
        if state.shutdown {
            return Err(SubmitError::Invalid(
                "server is shutting down; not accepting jobs".to_owned(),
            ));
        }
        if state.queue.len() >= self.shared.queue_cap {
            return Err(SubmitError::QueueFull {
                capacity: self.shared.queue_cap,
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobRecord {
                spec: Some(spec),
                status: JobStatus::Queued,
                rounds: 0,
                committed: 0,
                error: None,
                result: None,
                cancel: CancelToken::new(),
            },
        );
        state.queue.push_back(id);
        state.submitted += 1;
        self.shared.work_ready.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available (FIFO) or the manager shuts down
    /// (`None`). Marks the job `Running`.
    pub fn take_next(&self) -> Option<DispatchedJob> {
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return None;
            }
            if let Some(id) = state.queue.pop_front() {
                state.running += 1;
                let record = state.jobs.get_mut(&id).expect("queued job exists");
                record.status = JobStatus::Running;
                let spec = record.spec.take().expect("spec taken once");
                let cancel = record.cancel.clone();
                return Some(DispatchedJob { id, spec, cancel });
            }
            state = self
                .shared
                .work_ready
                .wait(state)
                .expect("job store lock poisoned");
        }
    }

    /// Records a finished job. A job already cancelled through
    /// [`JobManager::cancel`] stays `Cancelled` regardless of `outcome`.
    pub fn finish(&self, id: u64, outcome: Result<JobResult, MariohError>) {
        let mut state = self.lock();
        state.running = state.running.saturating_sub(1);
        let Some(record) = state.jobs.get_mut(&id) else {
            return;
        };
        if record.status.is_terminal() {
            return; // cancelled mid-run; the DELETE already counted it
        }
        match outcome {
            Ok(result) => {
                record.status = JobStatus::Done;
                record.result = Some(Arc::new(result));
            }
            Err(MariohError::Cancelled) => record.status = JobStatus::Cancelled,
            Err(e) => {
                record.status = JobStatus::Failed;
                // The worker's `on_error` observer usually got here
                // first; keep its message rather than overwriting.
                record.error.get_or_insert_with(|| e.to_string());
            }
        }
        state.note_terminal(id, self.shared.retain);
    }

    /// Cancels a job: de-queues it if still queued, fires its token if
    /// running. Terminal jobs are left unchanged. Returns the resulting
    /// status, or `None` for unknown ids.
    pub fn cancel(&self, id: u64) -> Option<JobStatus> {
        let mut state = self.lock();
        let record = state.jobs.get(&id)?;
        if record.status.is_terminal() {
            return Some(record.status);
        }
        if record.status == JobStatus::Queued {
            state.queue.retain(|q| *q != id);
        }
        let record = state.jobs.get_mut(&id).expect("checked above");
        record.cancel.cancel();
        record.status = JobStatus::Cancelled;
        // A cancelled-while-queued spec (possibly a multi-MB uploaded
        // hypergraph) would otherwise sit in the retained record.
        record.spec = None;
        state.note_terminal(id, self.shared.retain);
        Some(JobStatus::Cancelled)
    }

    /// A snapshot of one job, or `None` for unknown ids.
    pub fn view(&self, id: u64) -> Option<JobView> {
        let state = self.lock();
        let record = state.jobs.get(&id)?;
        Some(JobView {
            id,
            status: record.status,
            rounds: record.rounds,
            committed: record.committed,
            error: record.error.clone(),
        })
    }

    /// The job's status and (for done jobs) a shared handle to its
    /// result. An `Arc` clone, so large reconstructions are never copied
    /// under the store lock.
    pub fn result(&self, id: u64) -> Option<(JobStatus, Option<Arc<JobResult>>)> {
        let state = self.lock();
        let record = state.jobs.get(&id)?;
        Some((record.status, record.result.clone()))
    }

    /// Records a completed search round for `id`.
    pub fn record_round(&self, id: u64, round: usize) {
        if let Some(record) = self.lock().jobs.get_mut(&id) {
            record.rounds = record.rounds.max(round);
        }
    }

    /// Records the cumulative commit total for `id`.
    pub fn record_commit(&self, id: u64, total_committed: usize) {
        if let Some(record) = self.lock().jobs.get_mut(&id) {
            record.committed = total_committed;
        }
    }

    /// Records a worker-side failure message for `id`.
    pub fn record_error(&self, id: u64, msg: &str) {
        if let Some(record) = self.lock().jobs.get_mut(&id) {
            record.error = Some(msg.to_owned());
        }
    }

    /// Aggregate queue/worker counters.
    pub fn stats(&self) -> ServerStats {
        let state = self.lock();
        ServerStats {
            queue_depth: state.queue.len(),
            running: state.running,
            workers: self.shared.workers,
            queue_cap: self.shared.queue_cap,
            submitted: state.submitted,
            finished: state.finished,
        }
    }

    /// Stops accepting and dispatching work: cancels every queued job,
    /// fires the tokens of running jobs, and wakes all blocked
    /// [`JobManager::take_next`] calls.
    pub fn shutdown(&self) {
        let mut state = self.lock();
        state.shutdown = true;
        while let Some(id) = state.queue.pop_front() {
            let record = state.jobs.get_mut(&id).expect("queued job exists");
            record.cancel.cancel();
            record.status = JobStatus::Cancelled;
            record.spec = None;
            state.note_terminal(id, self.shared.retain);
        }
        for record in state.jobs.values() {
            if record.status == JobStatus::Running {
                record.cancel.cancel();
            }
        }
        self.shared.work_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marioh_hypergraph::hyperedge::edge;

    fn tiny_spec() -> JobSpec {
        JobSpec::from_json(&Json::parse(r#"{"dataset": "Hosts"}"#).unwrap()).unwrap()
    }

    #[test]
    fn spec_parses_dataset_method_seed_and_params() {
        let body = Json::parse(
            r#"{"dataset": "hosts", "method": "MARIOH-F", "seed": 9,
                "throttle_ms": 5, "scale": 0.5,
                "params": {"theta_init": 0.8, "threads": 2, "filtering": false}}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&body).unwrap();
        assert!(matches!(
            spec.input,
            JobInput::Dataset {
                dataset: PaperDataset::Hosts,
                scale: Some(s)
            } if s == 0.5
        ));
        assert_eq!(spec.variant, Variant::NoFiltering);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.throttle_ms, 5);
        assert_eq!(spec.params.theta_init, Some(0.8));
        assert_eq!(spec.params.threads, Some(2));
        assert_eq!(spec.params.filtering, Some(false));
        spec.validate().unwrap();
    }

    #[test]
    fn spec_accepts_uploaded_edges() {
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge_with_multiplicity(edge(&[0, 1, 2]), 2);
        h.add_edge(edge(&[1, 3]));
        let mut text = Vec::new();
        hio::write_hypergraph(&h, &mut text).unwrap();
        let body = Json::Obj(vec![(
            "edges".to_owned(),
            Json::str(String::from_utf8(text).unwrap()),
        )]);
        let spec = JobSpec::from_json(&body).unwrap();
        match spec.input {
            JobInput::Edges(parsed) => {
                assert_eq!(parsed.unique_edge_count(), 2);
                assert_eq!(parsed.total_edge_count(), 3);
            }
            other => panic!("expected edges input, got {other:?}"),
        }
    }

    #[test]
    fn spec_rejections_name_the_offence() {
        for (body, needle) in [
            (r#"[]"#, "must be a JSON object"),
            (r#"{}"#, "provide \"dataset\" or \"edges\""),
            (r#"{"dataset": "nope"}"#, "unknown dataset"),
            (r#"{"dataset": "Hosts", "edges": "1 0 1"}"#, "not both"),
            (
                r#"{"dataset": "Hosts", "dataset": "Crime"}"#,
                "duplicate field \"dataset\"",
            ),
            (
                r#"{"dataset": "Hosts", "bogus": 1}"#,
                "unknown field \"bogus\"",
            ),
            (
                r#"{"dataset": "Hosts", "method": "pagerank"}"#,
                "unknown method",
            ),
            (r#"{"dataset": "Hosts", "seed": -1}"#, "\"seed\""),
            (r#"{"dataset": "Hosts", "scale": 0}"#, "\"scale\""),
            (
                r#"{"dataset": "Hosts", "throttle_ms": 999999}"#,
                "throttle_ms",
            ),
            (r#"{"edges": "not numbers"}"#, "invalid edge list"),
            (
                r#"{"edges": "1 0 1", "scale": 2}"#,
                "only applies to registry datasets",
            ),
            (
                r#"{"dataset": "Hosts", "params": {"theta_init": 0.9, "theta_init": 0.8}}"#,
                "duplicate hyperparameter \"theta_init\"",
            ),
            (
                r#"{"dataset": "Hosts", "params": {"volume": 11}}"#,
                "unknown hyperparameter",
            ),
            (
                r#"{"dataset": "Hosts", "params": {"threads": 1.5}}"#,
                "non-negative integer",
            ),
            (
                r#"{"dataset": "Hosts", "params": {"filtering": 1}}"#,
                "must be a boolean",
            ),
        ] {
            let err = JobSpec::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn validate_produces_the_builder_message_verbatim() {
        let body = Json::parse(r#"{"dataset": "Hosts", "params": {"theta_init": 1.5}}"#).unwrap();
        let spec = JobSpec::from_json(&body).unwrap();
        let got = spec.validate().unwrap_err().to_string();
        let expected = Pipeline::builder()
            .theta_init(1.5)
            .build()
            .unwrap_err()
            .to_string();
        assert_eq!(got, expected);
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let m = JobManager::new(4, 1);
        let id = m.submit(tiny_spec()).unwrap();
        assert_eq!(m.view(id).unwrap().status, JobStatus::Queued);
        assert_eq!(m.stats().queue_depth, 1);

        let job = m.take_next().unwrap();
        assert_eq!(job.id, id);
        assert_eq!(m.view(id).unwrap().status, JobStatus::Running);
        assert_eq!(m.stats().running, 1);

        m.record_round(id, 3);
        m.record_commit(id, 17);
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        m.finish(
            id,
            Ok(JobResult {
                reconstruction: h,
                jaccard: 1.0,
            }),
        );
        let view = m.view(id).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!(view.rounds, 3);
        assert_eq!(view.committed, 17);
        let stats = m.stats();
        assert_eq!((stats.running, stats.finished, stats.submitted), (0, 1, 1));
        assert!(m.result(id).unwrap().1.is_some());
    }

    #[test]
    fn invalid_spec_is_rejected_at_submit_with_builder_message() {
        let m = JobManager::new(4, 1);
        let body = Json::parse(r#"{"dataset": "Hosts", "params": {"theta_init": 1.5}}"#).unwrap();
        let err = m.submit(JobSpec::from_json(&body).unwrap()).unwrap_err();
        let expected = Pipeline::builder()
            .theta_init(1.5)
            .build()
            .unwrap_err()
            .to_string();
        assert!(
            matches!(&err, SubmitError::Invalid(m) if *m == expected),
            "{err}"
        );
        assert_eq!(m.stats().submitted, 0);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let m = JobManager::new(2, 1);
        m.submit(tiny_spec()).unwrap();
        m.submit(tiny_spec()).unwrap();
        let err = m.submit(tiny_spec()).unwrap_err();
        assert!(
            matches!(err, SubmitError::QueueFull { capacity: 2 }),
            "{err}"
        );
        // Draining one slot re-opens the queue.
        let job = m.take_next().unwrap();
        m.submit(tiny_spec()).unwrap();
        m.finish(job.id, Err(MariohError::config("boom")));
        assert_eq!(m.view(job.id).unwrap().status, JobStatus::Failed);
    }

    #[test]
    fn cancel_dequeues_queued_jobs_and_fires_running_tokens() {
        let m = JobManager::new(8, 1);
        let queued = m.submit(tiny_spec()).unwrap();
        assert_eq!(m.cancel(queued), Some(JobStatus::Cancelled));
        assert_eq!(m.stats().queue_depth, 0);
        // The queue no longer hands it out.
        let running = m.submit(tiny_spec()).unwrap();
        let job = m.take_next().unwrap();
        assert_eq!(job.id, running);
        assert!(!job.cancel.is_cancelled());
        assert_eq!(m.cancel(running), Some(JobStatus::Cancelled));
        assert!(job.cancel.is_cancelled());
        // The worker's report afterwards cannot resurrect the job...
        m.finish(running, Err(MariohError::Cancelled));
        assert_eq!(m.view(running).unwrap().status, JobStatus::Cancelled);
        // ...and it was counted terminal exactly once.
        assert_eq!(m.stats().finished, 2);
        // Cancelling a terminal or unknown job is a no-op.
        assert_eq!(m.cancel(running), Some(JobStatus::Cancelled));
        assert_eq!(m.stats().finished, 2);
        assert_eq!(m.cancel(999), None);
    }

    #[test]
    fn terminal_records_are_evicted_beyond_the_retention_cap() {
        let m = JobManager::with_retention(4, 1, 3);
        let ids: Vec<u64> = (0..5)
            .map(|_| {
                let id = m.submit(tiny_spec()).unwrap();
                let job = m.take_next().unwrap();
                assert_eq!(job.id, id);
                m.finish(id, Err(MariohError::config("boom")));
                id
            })
            .collect();
        // Only the three most recent terminal records remain; evicted
        // ids behave exactly like unknown ones.
        for old in &ids[..2] {
            assert!(m.view(*old).is_none());
            assert!(m.result(*old).is_none());
            assert_eq!(m.cancel(*old), None);
        }
        for recent in &ids[2..] {
            assert_eq!(m.view(*recent).unwrap().status, JobStatus::Failed);
        }
        // Counters are history, not store size: eviction leaves them.
        assert_eq!(m.stats().finished, 5);
    }

    #[test]
    fn shutdown_wakes_blocked_workers_and_cancels_queued_jobs() {
        let m = JobManager::new(8, 1);
        let waiter = {
            let m = m.clone();
            std::thread::spawn(move || m.take_next().map(|j| j.id))
        };
        let id = m.submit(tiny_spec()).unwrap();
        // The waiter takes the only job; give it a moment.
        while m.stats().running == 0 {
            std::thread::yield_now();
        }
        assert_eq!(waiter.join().unwrap(), Some(id));

        let queued = m.submit(tiny_spec()).unwrap();
        let blocked = {
            let m = m.clone();
            std::thread::spawn(move || m.take_next().map(|j| j.id))
        };
        // `queued` may be taken by `blocked` before shutdown; either way
        // the thread must return promptly after shutdown.
        m.shutdown();
        let taken = blocked.join().unwrap();
        if taken.is_none() {
            assert_eq!(m.view(queued).unwrap().status, JobStatus::Cancelled);
        }
        assert!(matches!(
            m.submit(tiny_spec()),
            Err(SubmitError::Invalid(msg)) if msg.contains("shutting down")
        ));
    }
}
