//! Sharded serving glue: the bridge between [`marioh_dispatch`] and the
//! [`JobManager`].
//!
//! Two pieces, mirroring the two directions of the wire:
//!
//! * [`spawn_shard_router`] replaces the in-process worker pool. A
//!   single router thread drains the job queue, performs the same
//!   pre-execution steps a worker would (cache consult, model-reuse
//!   resolution), and hands the job to the [`Dispatcher`] — which
//!   hash-partitions it onto a shard worker process.
//! * [`ShardEventSink`] receives the dispatcher's merged event batches
//!   and folds them back into the job/artifact stores: progress frames
//!   become store transitions, `Result` payloads (the exact
//!   artifact-store encoding) become finished jobs plus cached models,
//!   failures map onto the same error/cancellation paths the in-process
//!   pool uses. One `on_batch` call lands as one durable-store commit.

use crate::job::{DispatchedJob, JobManager, JobResult};
use marioh_core::{MariohError, SavedModel};
use marioh_dispatch::{DispatchEvent, DispatchEvents, DispatchJob, Dispatcher};
use marioh_store::{decode_result, SpecHash, Transition};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Folds dispatcher event batches into the job and artifact stores.
/// Called from the dispatcher's merger thread only.
pub(crate) struct ShardEventSink {
    pub(crate) manager: JobManager,
}

impl DispatchEvents for ShardEventSink {
    fn on_batch(&self, events: Vec<DispatchEvent>) {
        let mut progress: Vec<(u64, Transition)> = Vec::new();
        let mut outcomes: Vec<(u64, Result<JobResult, MariohError>)> = Vec::new();
        for event in events {
            match event {
                DispatchEvent::Progress {
                    job,
                    rounds,
                    committed,
                    // Engine reuse totals arrive through each worker's
                    // pushed metrics snapshot instead (wire v2); the
                    // Progress fields stay for v1 compatibility.
                    reused: _,
                    rescored: _,
                    trained,
                    note,
                } => {
                    if trained {
                        self.manager.note_trained();
                    }
                    if rounds.is_some() || committed.is_some() {
                        progress.push((
                            job,
                            Transition::Progress {
                                rounds: rounds.map(|r| r as usize),
                                committed: committed.map(|c| c as usize),
                            },
                        ));
                    }
                    if let Some(note) = note {
                        progress.push((job, Transition::Note(note)));
                    }
                }
                DispatchEvent::Done {
                    job,
                    spec_hash,
                    payload,
                    model,
                } => match decode_result(&payload) {
                    Ok(result) => {
                        let hash = SpecHash::from_bytes(spec_hash);
                        if let Some(bytes) = model {
                            // The model is a reuse optimization, not part
                            // of the result: a decode failure is noted,
                            // never fatal.
                            match SavedModel::read_from(&bytes[..]) {
                                Ok(saved) => self.manager.store_model(&hash, &saved),
                                Err(e) => progress.push((
                                    job,
                                    Transition::Note(format!("shard model discarded: {e}")),
                                )),
                            }
                        }
                        outcomes.push((job, Ok(result)));
                    }
                    Err(e) => outcomes.push((
                        job,
                        Err(MariohError::config(format!(
                            "shard returned an undecodable result: {e}"
                        ))),
                    )),
                },
                DispatchEvent::Failed {
                    job,
                    message,
                    cancelled,
                } => {
                    // The worker already streamed `on_error` as a note
                    // frame, so plain failures need no extra Note here.
                    let err = if cancelled {
                        MariohError::Cancelled
                    } else {
                        MariohError::config(message)
                    };
                    outcomes.push((job, Err(err)));
                }
                DispatchEvent::ShardRespawned { .. } => self.manager.note_shard_restart(),
            }
        }
        // Progress first so a job's final transition is its outcome.
        self.manager.record_progress_batch(progress);
        self.manager.finish_batch(outcomes);
    }

    fn result_already_landed(&self, job: u64, spec_hash: &[u8; 32]) -> bool {
        // A twin of the dead shard's job may have finished elsewhere —
        // its artifact is this job's answer, so skip the re-dispatch.
        // The common case (no twin) is a cache miss, which the disk
        // store's membership filter answers without touching disk, so
        // this probe is safe to run on every respawned job.
        let hash = SpecHash::from_bytes(*spec_hash);
        match self.manager.cached_result(&hash) {
            Some(result) => {
                self.manager.finish_cached(job, result);
                true
            }
            None => false,
        }
    }
}

/// Drains the job queue into the dispatcher until shutdown. The single
/// router thread replaces the whole in-process worker pool: execution
/// happens in the shard worker processes, so routing is never the
/// bottleneck.
pub(crate) fn spawn_shard_router(
    manager: &JobManager,
    dispatcher: Arc<Dispatcher>,
) -> JoinHandle<()> {
    let manager = manager.clone();
    std::thread::Builder::new()
        .name("marioh-shard-router".into())
        .spawn(move || route_jobs(manager, dispatcher))
        .expect("spawn shard router thread")
}

fn route_jobs(manager: JobManager, dispatcher: Arc<Dispatcher>) {
    while let Some(DispatchedJob {
        id,
        spec,
        spec_hash,
        cancel,
    }) = manager.take_next()
    {
        // Same pre-dispatch shortcuts as the in-process pool: a twin may
        // have finished while this job queued, and model references
        // resolve against *this* process's artifact store (shard workers
        // are stateless — the model travels in the dispatch frame).
        if let Some(cached) = manager.cached_result(&spec_hash) {
            manager.finish_cached(id, cached);
            continue;
        }
        let model = match &spec.model {
            Some(model_ref) => match manager.resolve_model(model_ref) {
                Ok(saved) => {
                    let mut bytes = Vec::new();
                    saved
                        .write_to(&mut bytes)
                        .expect("writes into a Vec cannot fail");
                    Some(bytes)
                }
                Err(msg) => {
                    manager.record_error(id, &msg);
                    manager.finish(id, Err(MariohError::config(msg)));
                    continue;
                }
            },
            None => None,
        };
        manager.note_pipeline_run();
        let job = DispatchJob {
            id,
            spec_hash: *spec_hash.as_bytes(),
            spec_json: spec.to_json().to_string(),
            model,
            cancel,
        };
        if let Err(message) = dispatcher.dispatch(job) {
            manager.finish(id, Err(MariohError::config(message)));
        }
    }
}
