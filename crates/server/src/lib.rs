//! `marioh-server`: a concurrent reconstruction service.
//!
//! Reconstruction is a long-running batch job — the paper's scalability
//! study (Fig. 7) runs minutes per dataset — so the serving shape is a
//! submit/poll/cancel job API rather than a blocking request/response.
//! This crate turns the validated [`marioh_core::Pipeline`] into exactly
//! that: jobs enter a bounded FIFO [`job::JobManager`], a pool of worker
//! threads drains it, and a dependency-free HTTP/1.1 front
//! (`std::net::TcpListener`; the build environment is offline) exposes
//! the lifecycle.
//!
//! # Architecture
//!
//! ```text
//!  client ──HTTP──▶ accept loop ──▶ router ──▶ JobManager (bounded FIFO + store)
//!                                                 ▲   │ take_next()
//!                                    progress via │   ▼
//!                                    ProgressObserver  worker pool ──▶ Pipeline
//!                                    + CancelToken     (split → train → reconstruct)
//! ```
//!
//! With [`ServerConfig::shards`] > 0 the worker pool is replaced by a
//! `marioh-dispatch` router: jobs are hash-partitioned across N
//! `marioh shard-worker` child processes speaking the `marioh-wire`
//! framed protocol, with results bit-identical to pooled mode and dead
//! shards respawned transparently. See `README.md` ("Sharded serving").
//!
//! # Endpoints
//!
//! | method & path | purpose | success | failures |
//! |---|---|---|---|
//! | `POST /jobs` | submit a job | 201 `{id, status}` | 400 invalid spec, 503 queue full |
//! | `POST /jobs` (array) | submit a batch atomically | 201 `{batch, count, ids}` | 400 per-index errors, 503 queue full |
//! | `GET /batches/:id` | batch progress rollup | 200 `{batch, …, complete, jobs}` | 404 |
//! | `GET /jobs` | list retained jobs | 200 `{count, jobs}` | — |
//! | `GET /jobs/:id` | status + progress | 200 `{id, status, progress, cached?, error?}` | 404 |
//! | `GET /jobs/:id/result` | reconstructed hyperedges | 200 `{id, jaccard, edges}` | 404, 409 not done |
//! | `DELETE /jobs/:id` | cancel (queued or running) | 200 `{id, status}` | 404 |
//! | `GET /models` | list stored trained models | 200 `{count, models}` | — |
//! | `GET /healthz` | liveness | 200 `{status: "ok"}` | — |
//! | `GET /stats` | queue/worker/cache counters | 200 | — |
//!
//! A job body names a registry dataset or uploads an edge list, picks a
//! method variant, and overrides hyperparameters — which are validated
//! through [`marioh_core::Pipeline::builder`] *at submission*, so an
//! invalid `theta_init` is a 400 carrying the builder's own message:
//!
//! ```json
//! {"dataset": "Hosts", "method": "MARIOH", "seed": 7,
//!  "params": {"theta_init": 0.9, "threads": 2}}
//! ```
//!
//! # Persistence & caching
//!
//! Storage is pluggable through [`marioh_store`]: [`job::JobManager`] is
//! orchestration only (queue, condvar, cancel tokens) over
//! `Arc<dyn JobStore>` + `Arc<dyn ArtifactStore>`. The default store is
//! in-memory; [`StorageConfig::state_dir`] (CLI: `marioh serve
//! --state-dir`) selects the durable [`marioh_store::DiskStore`], whose
//! record log + snapshot let a restarted server serve pre-crash results
//! and re-queue interrupted jobs. Results and trained models are cached
//! content-addressed by each spec's canonical hash
//! ([`marioh_store::JobSpec::content_hash`]): identical resubmissions
//! are answered instantly with `cached: true` and no pipeline run, and a
//! `"model": "job:<id>"` (or saved-model name) parameter skips training,
//! reproducing its donor bit-for-bit via the stored post-training RNG
//! state. See `README.md` ("Persistence & caching") for the on-disk
//! layout and examples.
//!
//! # Example
//!
//! ```
//! use marioh_server::{client, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default())?; // 127.0.0.1, ephemeral port
//! let addr = server.local_addr();
//! let accepted = client::post(addr, "/jobs", r#"{"dataset": "Hosts", "seed": 1}"#)?;
//! assert_eq!(accepted.status, 201);
//! let id = accepted.json().unwrap().get("id").unwrap().as_u64().unwrap();
//! // Poll GET /jobs/{id} until terminal, then fetch /jobs/{id}/result …
//! let status = client::get(addr, &format!("/jobs/{id}"))?;
//! assert_eq!(status.status, 200);
//! server.shutdown(); // cancels in-flight jobs cooperatively
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Cancellation is cooperative end to end: `DELETE /jobs/:id` fires the
//! job's [`marioh_core::CancelToken`], which training polls at every
//! optimiser epoch and the reconstruction loop at every round boundary —
//! a running job terminates within one epoch or one search round of
//! whatever stage it is in. [`Server::shutdown`] does the same for every
//! in-flight job.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod job;
pub mod server;
mod shards;
mod worker;

// The JSON codec moved to `marioh-store` with the rest of the
// persistence-facing encoding; the server-side path stays valid.
pub use marioh_store::json;

pub use job::{
    BatchError, BatchSubmission, JobInput, JobManager, JobParams, JobResult, JobSpec, JobStatus,
    JobView, ModelRef, ServerStats, SubmitError,
};
pub use json::Json;
pub use server::{Server, ServerConfig, StorageConfig};
