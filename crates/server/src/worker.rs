//! The in-process worker pool: each worker blocks on the job queue,
//! consults the artifact cache, runs the job through the shared
//! [`marioh_dispatch::execute_job`] executor, and reports progress back
//! into the job store through a [`ProgressObserver`] adapter.
//!
//! Execution itself lives in `marioh-dispatch` so that this pool and the
//! sharded multi-process mode share one definition of "run a job" —
//! which is what makes `--shards N` results bit-identical to
//! `--workers N`. Two storage-layer shortcuts preserve that identity:
//!
//! * **Cache consult.** Before building anything, the worker checks the
//!   artifact cache under the job's spec hash (a twin job may have
//!   finished while this one queued); a hit finishes the job instantly
//!   with `cached: true` and no pipeline run.
//! * **Model reuse.** A spec with `model: "job:<id>"` (or a saved model
//!   name) skips training: the stored [`SavedModel`] carries the donor's
//!   post-training RNG state, which the worker restores after the split
//!   — so with the same input and seed the reconstruction is
//!   bit-identical to the donor's, with zero training epochs.

use crate::job::{DispatchedJob, JobManager};
use marioh_core::search::SearchStats;
use marioh_core::{CancelToken, MariohError, ProgressObserver};
use marioh_dispatch::{cancellable_sleep, execute_job};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Streams pipeline progress into the job store, and applies the job's
/// `throttle_ms` pacing after each round.
struct JobObserver {
    manager: JobManager,
    id: u64,
    throttle_ms: u64,
    cancel: CancelToken,
}

impl ProgressObserver for JobObserver {
    fn on_round(&self, round: usize, _theta: f64, _stats: &SearchStats) {
        // Engine reuse counters land on the process-global metrics
        // registry inside core's round loop — nothing to fold in here.
        self.manager.record_round(self.id, round);
        if self.throttle_ms > 0 {
            cancellable_sleep(self.throttle_ms, &self.cancel);
        }
    }

    fn on_commit(&self, _round: usize, _committed: usize, total_committed: usize) {
        self.manager.record_commit(self.id, total_committed);
    }

    fn on_training_done(&self, _secs: f64) {
        // Model-reuse jobs never train, so never reach here — the
        // `/stats` models_trained counter is exactly the observer's
        // event count.
        self.manager.note_trained();
    }

    fn on_error(&self, msg: &str) {
        self.manager.record_error(self.id, msg);
    }
}

fn run_worker(manager: JobManager) {
    while let Some(DispatchedJob {
        id,
        spec,
        spec_hash,
        cancel,
    }) = manager.take_next()
    {
        // An identical job may have completed while this one queued; its
        // artifact is this job's answer.
        if let Some(cached) = manager.cached_result(&spec_hash) {
            manager.finish_cached(id, cached);
            continue;
        }
        // Resolve model reuse before spending anything on the pipeline.
        let reuse = match &spec.model {
            Some(model_ref) => match manager.resolve_model(model_ref) {
                Ok(saved) => Some(saved),
                Err(msg) => {
                    manager.record_error(id, &msg);
                    manager.finish(id, Err(MariohError::config(msg)));
                    continue;
                }
            },
            None => None,
        };
        let observer: Arc<dyn ProgressObserver> = Arc::new(JobObserver {
            manager: manager.clone(),
            id,
            throttle_ms: spec.throttle_ms,
            cancel: cancel.clone(),
        });
        manager.note_pipeline_run();
        let outcome = execute_job(spec, reuse, Arc::clone(&observer), cancel);
        let outcome = match outcome {
            Ok((result, trained)) => {
                if let Some(saved) = trained {
                    manager.store_model(&spec_hash, &saved);
                }
                Ok(result)
            }
            Err(e) => {
                if !matches!(e, MariohError::Cancelled) {
                    observer.on_error(&e.to_string());
                }
                Err(e)
            }
        };
        manager.finish(id, outcome);
    }
}

/// Spawns `n` worker threads draining `manager`'s queue. The threads
/// exit when [`JobManager::shutdown`] fires. With `pin`, each worker is
/// pinned to a CPU core round-robin over the cores the process may run
/// on — a scheduling hint only; results are bit-identical either way.
pub(crate) fn spawn_workers(manager: &JobManager, n: usize, pin: bool) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let manager = manager.clone();
            std::thread::Builder::new()
                .name(format!("marioh-worker-{i}"))
                .spawn(move || {
                    if pin {
                        marioh_kernels::pin_to_core(i % marioh_kernels::available_cores());
                    }
                    run_worker(manager)
                })
                .expect("spawn worker thread")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, JobStatus};
    use crate::json::Json;
    use marioh_datasets::split::split_source_target;
    use rand::{rngs::StdRng, SeedableRng};
    use std::time::Duration;

    fn spec(body: &str) -> JobSpec {
        JobSpec::from_json(&Json::parse(body).unwrap()).unwrap()
    }

    #[test]
    fn a_worker_pool_drains_jobs_to_done() {
        let manager = JobManager::new(16, 2);
        let workers = spawn_workers(&manager, 2, true);
        let ids: Vec<u64> = (0..3)
            .map(|seed| {
                manager
                    .submit(spec(&format!(r#"{{"dataset": "Hosts", "seed": {seed}}}"#)))
                    .unwrap()
            })
            .collect();
        for id in &ids {
            while !manager.view(*id).unwrap().status.is_terminal() {
                std::thread::sleep(Duration::from_millis(5));
            }
            let view = manager.view(*id).unwrap();
            assert_eq!(view.status, JobStatus::Done, "job {id}: {view:?}");
            let (_, result) = manager.result(*id).unwrap();
            let result = result.expect("done jobs carry a result");
            assert!(result.reconstruction.unique_edge_count() > 0);
            assert!(result.jaccard > 0.5, "jaccard {}", result.jaccard);
        }
        let stats = manager.stats();
        assert_eq!(stats.pipeline_runs, 3);
        assert_eq!(stats.models_trained, 3);
        assert_eq!(stats.cache_hits, 0);
        manager.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn model_reuse_skips_training_and_reproduces_the_donor() {
        let manager = JobManager::new(16, 1);
        let workers = spawn_workers(&manager, 1, false);
        let donor = manager
            .submit(spec(r#"{"dataset": "Hosts", "seed": 5}"#))
            .unwrap();
        while !manager.view(donor).unwrap().status.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(manager.view(donor).unwrap().status, JobStatus::Done);
        let trained_before = manager.stats().models_trained;
        assert_eq!(trained_before, 1);

        // Same input and seed, but reusing the donor's model. The result
        // cache would short-circuit an *identical* spec, but the model
        // reference changes the hash, so this runs a real pipeline —
        // without training.
        let reuser = manager
            .submit(spec(&format!(
                r#"{{"dataset": "Hosts", "seed": 5, "model": "job:{donor}"}}"#
            )))
            .unwrap();
        while !manager.view(reuser).unwrap().status.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        let view = manager.view(reuser).unwrap();
        assert_eq!(view.status, JobStatus::Done, "{view:?}");
        let stats = manager.stats();
        assert_eq!(
            stats.models_trained, trained_before,
            "reuse job must not train (observer saw no on_training_done)"
        );
        assert_eq!(stats.pipeline_runs, 2, "reuse still runs a pipeline");

        // Bit-identical reconstruction, thanks to the restored RNG state.
        let donor_result = manager.result(donor).unwrap().1.unwrap();
        let reuse_result = manager.result(reuser).unwrap().1.unwrap();
        assert_eq!(
            donor_result.jaccard.to_bits(),
            reuse_result.jaccard.to_bits()
        );
        assert_eq!(
            donor_result.reconstruction.sorted_edges(),
            reuse_result.reconstruction.sorted_edges()
        );
        manager.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn throttled_job_cancels_during_its_start_delay() {
        let manager = JobManager::new(4, 1);
        let workers = spawn_workers(&manager, 1, false);
        let id = manager
            .submit(spec(r#"{"dataset": "Hosts", "throttle_ms": 60000}"#))
            .unwrap();
        while manager.view(id).unwrap().status != JobStatus::Running {
            std::thread::sleep(Duration::from_millis(2));
        }
        let t0 = std::time::Instant::now();
        assert_eq!(manager.cancel(id), Some(JobStatus::Cancelled));
        // The worker frees its slot promptly, long before the 60 s delay.
        while manager.stats().running > 0 {
            assert!(t0.elapsed() < Duration::from_secs(10), "worker still busy");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(manager.view(id).unwrap().status, JobStatus::Cancelled);
        manager.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn empty_source_fails_and_surfaces_through_on_error() {
        let manager = JobManager::new(4, 1);
        let workers = spawn_workers(&manager, 1, false);
        // A 1-event upload: any seed whose 50/50 split sends that event
        // to the target side leaves the source empty, so training fails.
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge(marioh_hypergraph::hyperedge::edge(&[0, 1]));
        let seed = (0..64)
            .find(|s| {
                let mut rng = StdRng::seed_from_u64(*s);
                split_source_target(&h, &mut rng).0.unique_edge_count() == 0
            })
            .expect("some seed empties a 1-event source");
        let id = manager
            .submit(spec(&format!(r#"{{"edges": "1 0 1", "seed": {seed}}}"#)))
            .unwrap();
        while !manager.view(id).unwrap().status.is_terminal() {
            std::thread::sleep(Duration::from_millis(2));
        }
        let view = manager.view(id).unwrap();
        assert_eq!(view.status, JobStatus::Failed);
        let msg = view.error.expect("failed jobs carry an error");
        assert!(msg.contains("empty source"), "{msg}");
        manager.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }
}
