//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! Implements exactly what the job API needs — request-line + header
//! parsing, `Content-Length` bodies, and JSON responses with
//! `Connection: close` — with hard limits on line length, header count,
//! and body size bounding each connection's memory; the server's accept
//! loop additionally caps how many connections are live at once.

use crate::json::Json;
use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body (uploaded edge lists), in bytes.
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one `\r\n`- (or `\n`-) terminated line, enforcing [`MAX_LINE`].
fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(bad("connection closed mid-line"))
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| bad("request line is not valid UTF-8"))?;
                    return Ok(Some(line));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(bad("request line too long"));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads and parses one request from `reader`.
///
/// Returns `Ok(None)` when the connection closed cleanly before a request
/// started.
///
/// # Errors
///
/// `InvalidData` for malformed requests (the caller answers 400);
/// transport errors pass through unchanged.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad(format!("malformed request line {request_line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol {version:?}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or_else(|| bad("connection closed inside headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        if headers.len() > MAX_HEADERS {
            return Err(bad("too many headers"));
        }
    }

    let mut request = Request {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body: Vec::new(),
    };
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| bad(format!("invalid Content-Length {len:?}")))?;
        if len > MAX_BODY {
            return Err(bad(format!("body of {len} bytes exceeds limit {MAX_BODY}")));
        }
        // Grow with the bytes actually received rather than trusting the
        // declared length up front — a client announcing 8 MB and sending
        // nothing holds a socket, not an 8 MB allocation.
        let mut body = Vec::with_capacity(len.min(64 * 1024));
        let mut limited = io::Read::take(&mut *reader, len as u64);
        io::Read::read_to_end(&mut limited, &mut body)?;
        if body.len() != len {
            return Err(bad(format!(
                "connection closed mid-body ({} of {len} bytes)",
                body.len()
            )));
        }
        request.body = body;
    }
    Ok(Some(request))
}

/// The reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a JSON response with `Connection: close`.
pub fn write_response<W: Write>(writer: &mut W, status: u16, body: &Json) -> io::Result<()> {
    write_text_response(writer, status, "application/json", &body.to_string())
}

/// The `Retry-After` value (seconds) sent with every 503. Short on
/// purpose: the conditions behind a 503 (queue full, connection cap)
/// clear as soon as one job or connection finishes.
pub const RETRY_AFTER_SECS: u32 = 1;

/// Writes a response with an explicit content type (the Prometheus
/// `/metrics` exposition is plain text, not JSON). Every 503 — queue
/// full, connection cap, batch overflow — carries a `Retry-After`
/// header, added here so no rejection path can forget it.
pub fn write_text_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    payload: &str,
) -> io::Result<()> {
    let retry_after = if status == 503 {
        format!("Retry-After: {RETRY_AFTER_SECS}\r\n")
    } else {
        String::new()
    };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry_after}Connection: close\r\n\r\n{payload}",
        reason(status),
        payload.len(),
    )?;
    writer.flush()
}

/// Shorthand for the `{"error": msg}` body every failure response uses.
pub fn error_body(msg: impl Into<String>) -> Json {
    Json::Obj(vec![("error".to_owned(), Json::str(msg))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_request_with_body_and_query() {
        let req =
            parse("POST /jobs?debug=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn bare_lf_lines_and_missing_body_are_accepted() {
        let req = parse("GET /healthz HTTP/1.0\nAccept: */*\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_yields_none_and_garbage_yields_invalid_data() {
        assert!(parse("").unwrap().is_none());
        for raw in [
            "NOT-HTTP\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
        let oversized = format!(
            "GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(
            parse(&oversized).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn every_503_carries_retry_after_and_nothing_else_does() {
        let mut out = Vec::new();
        write_response(&mut out, 503, &error_body("full")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains(&format!("Retry-After: {RETRY_AFTER_SECS}\r\n")),
            "{text}"
        );
        for status in [200, 201, 400, 404, 409] {
            let mut out = Vec::new();
            write_response(&mut out, status, &error_body("x")).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(!text.contains("Retry-After"), "{status}: {text}");
        }
    }

    #[test]
    fn response_is_well_formed_http() {
        let mut out = Vec::new();
        write_response(&mut out, 201, &error_body("nope")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"nope\"}"));
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, "{\"error\":\"nope\"}".len());
    }
}
