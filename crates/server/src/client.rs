//! A tiny std-only blocking HTTP client, just enough to talk to
//! [`crate::Server`] from integration tests, benches, and examples —
//! the offline counterpart of a `curl` one-liner.

use crate::json::Json;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Socket timeout for every client operation.
const TIMEOUT: Duration = Duration::from_secs(60);

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Response headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl HttpResponse {
    /// Parses the body as JSON.
    ///
    /// # Errors
    ///
    /// The JSON parser's message when the body is not valid JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.body)
    }

    /// The first header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request (`Connection: close`; one request per
/// connection) and decodes the response.
///
/// # Errors
///
/// Transport failures, or `InvalidData` when the peer's response is not
/// parseable HTTP.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response has no header end"))?;
    let status = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line in {head:?}"),
            )
        })?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: payload.to_owned(),
    })
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body))
}

/// `DELETE path`.
pub fn delete(addr: SocketAddr, path: &str) -> io::Result<HttpResponse> {
    request(addr, "DELETE", path, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    #[test]
    fn client_speaks_to_a_live_server() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_cap: 4,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let health = get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(
            health.json().unwrap().get("status").unwrap().as_str(),
            Some("ok")
        );

        let missing = get(addr, "/jobs/12345").unwrap();
        assert_eq!(missing.status, 404);

        let bad = post(addr, "/jobs", "{").unwrap();
        assert_eq!(bad.status, 400);

        server.shutdown();
        // After shutdown the port stops answering.
        assert!(get(addr, "/healthz").is_err());
    }
}
