//! Repo automation: `cargo xtask bench-gate`.
//!
//! The perf-regression gate reads the checked-in `BENCH_*.json` results
//! (written by `cargo bench -p marioh-bench`), renders every headline
//! speedup into one dependency-free SVG trend chart, and exits non-zero
//! when any metric falls below its floor:
//!
//! * `BENCH_engine.json` — per-dataset `threads_4.speedup_vs_legacy`
//!   of the incremental engine (floor [`ENGINE_FLOOR`]).
//! * `BENCH_search.json` — per-dataset `scoring_ms.speedup` of
//!   view-batched scoring over the legacy per-clique path (floor
//!   [`SEARCH_FLOOR`]).
//! * `BENCH_dispatch.json` — per-shard-count `speedup_vs_sequential`,
//!   (floor [`DISPATCH_FLOOR`]), and `bit_identical` must hold — a
//!   faster but wrong dispatch path is the worst regression of all.
//! * `BENCH_kernels.json` — per-kernel speedup of the runtime-dispatched
//!   SIMD paths over the scalar reference: every kernel must be
//!   `bit_identical` and clear the [`KERNELS_BACKSTOP`], and at least
//!   two of the three headline kernels (MHH cache build, scoring-phase
//!   `predict_rows`, feature extraction) must clear [`KERNELS_FLOOR`].
//! * `BENCH_store.json` — the storage engine's filtered negative-probe
//!   speedup over raw disk probes (must clear [`STORE_PROBE_FLOOR`])
//!   and the v2 snapshot cold-open speedup over a v1 log replay (both
//!   bars share the [`STORE_BACKSTOP`]: neither may regress below the
//!   path it replaced).
//!
//! A result file carrying `"smoke": true` came from a CI smoke run
//! (timings are noise there), so it is charted but not gated. The SVG
//! goes to `target/bench-gate.svg` by default (`--out` overrides); CI
//! uploads it as a build artifact.

use marioh_store::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Floor on the engine's full-run speedup over the legacy path.
const ENGINE_FLOOR: f64 = 0.9;
/// Floor on view-batched scoring speedup (Foursquare sits at ~0.97:
/// batching buys nothing on its flat clique structure, so the floor
/// only catches real regressions, not that known plateau).
const SEARCH_FLOOR: f64 = 0.9;
/// Floor on sharded-dispatch speedup over the sequential loop.
const DISPATCH_FLOOR: f64 = 1.0;
/// Headline floor on kernel-dispatch speedup over the scalar reference:
/// at least [`KERNELS_HEADLINE_MIN`] of the three headline kernels must
/// clear it.
const KERNELS_FLOOR: f64 = 1.3;
/// How many headline kernels must clear [`KERNELS_FLOOR`].
const KERNELS_HEADLINE_MIN: usize = 2;
/// Per-kernel backstop: no dispatched kernel may regress below this
/// (shape-dependent kernels like feature extraction hover near 1.0× on
/// dense rows; the backstop catches real regressions, not that known
/// plateau).
const KERNELS_BACKSTOP: f64 = 0.75;
/// The kernels whose speedups the [`KERNELS_FLOOR`] 2-of-3 rule covers.
const KERNELS_HEADLINE: [&str; 3] = ["mhh_cache_build", "predict_rows", "feature_extract"];
/// Floor on the xor filter's negative-probe speedup over unfiltered
/// disk probes — the headline claim of the filtered artifact cache.
const STORE_PROBE_FLOOR: f64 = 5.0;
/// Backstop for both store bars: a speedup below 1.0 means the new
/// path (snapshot cold-open, filtered probe) lost to the one it
/// replaced.
const STORE_BACKSTOP: f64 = 1.0;

/// One bar of a chart panel.
#[derive(Debug)]
struct Bar {
    label: String,
    value: f64,
}

/// One gated benchmark: a titled group of bars sharing a floor.
#[derive(Debug)]
struct Panel {
    title: String,
    floor: f64,
    /// False for smoke-mode results: charted, never gated.
    gated: bool,
    bars: Vec<Bar>,
}

impl Panel {
    /// The gate violations in this panel, empty when it passes.
    fn violations(&self) -> Vec<String> {
        if !self.gated {
            return Vec::new();
        }
        self.bars
            .iter()
            .filter(|b| b.value < self.floor)
            .map(|b| {
                format!(
                    "{}: {} = {:.3} is below the floor {:.3}",
                    self.title, b.label, b.value, self.floor
                )
            })
            .collect()
    }
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{} is not valid JSON: {e}", path.display()))
}

/// Whether a result file declares itself a smoke run.
fn is_smoke(doc: &Json) -> bool {
    doc.get("smoke").and_then(Json::as_bool) == Some(true)
}

/// Pulls `path.to.field` out of nested objects.
fn field<'a>(doc: &'a Json, path: &[&str]) -> Option<&'a Json> {
    path.iter().try_fold(doc, |v, key| v.get(key))
}

/// One bar per dataset from a `{"datasets": [...]}` bench file, reading
/// the metric at `path` inside each dataset object.
fn dataset_bars(doc: &Json, path: &[&str], what: &str) -> Result<Vec<Bar>, String> {
    let datasets = doc
        .get("datasets")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{what}: missing \"datasets\" array"))?;
    datasets
        .iter()
        .map(|ds| {
            let label = ds
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{what}: dataset without a \"name\""))?
                .to_owned();
            let value = field(ds, path)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{what}: {label} lacks numeric {}", path.join(".")))?;
            Ok(Bar { label, value })
        })
        .collect()
}

fn engine_panel(doc: &Json) -> Result<Panel, String> {
    Ok(Panel {
        title: "engine: full-run speedup vs legacy (4 threads)".to_owned(),
        floor: ENGINE_FLOOR,
        gated: !is_smoke(doc),
        bars: dataset_bars(doc, &["threads_4", "speedup_vs_legacy"], "BENCH_engine")?,
    })
}

fn search_panel(doc: &Json) -> Result<Panel, String> {
    Ok(Panel {
        title: "search: view-batched scoring speedup".to_owned(),
        floor: SEARCH_FLOOR,
        gated: !is_smoke(doc),
        bars: dataset_bars(doc, &["scoring_ms", "speedup"], "BENCH_search")?,
    })
}

fn dispatch_panel(doc: &Json) -> Result<Panel, String> {
    let runs = doc
        .get("sharded")
        .and_then(Json::as_array)
        .ok_or_else(|| "BENCH_dispatch: missing \"sharded\" array".to_owned())?;
    let mut bars = Vec::new();
    for run in runs {
        let shards = run
            .get("shards")
            .and_then(Json::as_u64)
            .ok_or_else(|| "BENCH_dispatch: run without a \"shards\" count".to_owned())?;
        let value = run
            .get("speedup_vs_sequential")
            .and_then(Json::as_f64)
            .ok_or_else(|| {
                format!("BENCH_dispatch: {shards} shards lacks speedup_vs_sequential")
            })?;
        if run.get("bit_identical").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "BENCH_dispatch: {shards} shards is not bit_identical to the sequential run"
            ));
        }
        bars.push(Bar {
            label: format!("{shards} shards"),
            value,
        });
    }
    Ok(Panel {
        title: "dispatch: sharded speedup vs sequential".to_owned(),
        floor: DISPATCH_FLOOR,
        gated: !is_smoke(doc),
        bars,
    })
}

fn kernels_panel(doc: &Json) -> Result<Panel, String> {
    let runs = doc
        .get("kernels")
        .and_then(Json::as_array)
        .ok_or_else(|| "BENCH_kernels: missing \"kernels\" array".to_owned())?;
    let mut bars = Vec::new();
    let mut headline_passing = 0usize;
    for run in runs {
        let name = run
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "BENCH_kernels: kernel without a \"name\"".to_owned())?
            .to_owned();
        let value = run
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("BENCH_kernels: {name} lacks numeric speedup"))?;
        if run.get("bit_identical").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "BENCH_kernels: {name} is not bit_identical to the scalar reference"
            ));
        }
        if KERNELS_HEADLINE.contains(&name.as_str()) && value >= KERNELS_FLOOR {
            headline_passing += 1;
        }
        bars.push(Bar { label: name, value });
    }
    if !is_smoke(doc) && headline_passing < KERNELS_HEADLINE_MIN {
        return Err(format!(
            "BENCH_kernels: only {headline_passing} of the headline kernels \
             ({}) reach the {KERNELS_FLOOR:.1}x floor (need {KERNELS_HEADLINE_MIN})",
            KERNELS_HEADLINE.join(", ")
        ));
    }
    Ok(Panel {
        title: "kernels: dispatched speedup vs scalar reference".to_owned(),
        floor: KERNELS_BACKSTOP,
        gated: !is_smoke(doc),
        bars,
    })
}

fn store_panel(doc: &Json) -> Result<Panel, String> {
    let probe = field(doc, &["negative_probe", "speedup"])
        .and_then(Json::as_f64)
        .ok_or_else(|| "BENCH_store: missing numeric negative_probe.speedup".to_owned())?;
    let cold_open = field(doc, &["cold_open", "speedup"])
        .and_then(Json::as_f64)
        .ok_or_else(|| "BENCH_store: missing numeric cold_open.speedup".to_owned())?;
    if !is_smoke(doc) && probe < STORE_PROBE_FLOOR {
        return Err(format!(
            "BENCH_store: filtered negative probes are only {probe:.2}x faster than \
             unfiltered disk probes (floor {STORE_PROBE_FLOOR:.1}x)"
        ));
    }
    Ok(Panel {
        title: "store: speedup vs unfiltered / v1 replay".to_owned(),
        floor: STORE_BACKSTOP,
        gated: !is_smoke(doc),
        bars: vec![
            Bar {
                label: "negative probe".to_owned(),
                value: probe,
            },
            Bar {
                label: "cold open".to_owned(),
                value: cold_open,
            },
        ],
    })
}

/// Runs the whole gate over the bench files in `root`: parses, checks
/// floors, and returns the panels for charting.
///
/// # Errors
///
/// One message per problem — unreadable/malformed files first, then
/// every floor violation.
fn gate(root: &Path) -> Result<Vec<Panel>, Vec<String>> {
    type PanelFn = fn(&Json) -> Result<Panel, String>;
    let sources: [(&str, PanelFn); 5] = [
        ("BENCH_engine.json", engine_panel),
        ("BENCH_search.json", search_panel),
        ("BENCH_dispatch.json", dispatch_panel),
        ("BENCH_kernels.json", kernels_panel),
        ("BENCH_store.json", store_panel),
    ];
    let mut panels = Vec::new();
    let mut errors = Vec::new();
    for (file, build) in sources {
        match load(&root.join(file)).and_then(|doc| build(&doc)) {
            Ok(panel) => panels.push(panel),
            Err(e) => errors.push(e),
        }
    }
    for panel in &panels {
        errors.extend(panel.violations());
    }
    if errors.is_empty() {
        Ok(panels)
    } else {
        Err(errors)
    }
}

// --- SVG rendering (no dependencies; dark-theme palette) -------------

const CHART_WIDTH: f64 = 760.0;
const LEFT_MARGIN: f64 = 150.0;
const RIGHT_MARGIN: f64 = 70.0;
const BAR_HEIGHT: f64 = 14.0;
const BAR_GAP: f64 = 5.0;
const PANEL_HEADER: f64 = 34.0;
const PANEL_GAP: f64 = 18.0;
const TOP_MARGIN: f64 = 14.0;
const BOTTOM_MARGIN: f64 = 16.0;

const COLOR_BG: &str = "#0d1117";
const COLOR_TITLE: &str = "#e6edf3";
const COLOR_LABEL: &str = "#8b949e";
const COLOR_GRID: &str = "#30363d";
const COLOR_FASTER: &str = "#3fb950"; // at or above 1.0×
const COLOR_OK: &str = "#58a6ff"; // above the floor, below 1.0×
const COLOR_SLOWER: &str = "#f85149"; // below the floor

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the panels as one stacked horizontal-bar SVG.
fn render_svg(panels: &[Panel]) -> String {
    let bar_area = CHART_WIDTH - LEFT_MARGIN - RIGHT_MARGIN;
    let max_value = panels
        .iter()
        .flat_map(|p| p.bars.iter().map(|b| b.value))
        .fold(1.0f64, f64::max);
    let scale = bar_area / max_value;
    let height: f64 = TOP_MARGIN
        + BOTTOM_MARGIN
        + panels
            .iter()
            .map(|p| PANEL_HEADER + p.bars.len() as f64 * (BAR_HEIGHT + BAR_GAP) + PANEL_GAP)
            .sum::<f64>();
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{CHART_WIDTH}\" height=\"{height:.0}\" \
         font-family=\"Arial, Helvetica, sans-serif\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"{COLOR_BG}\"/>\n"
    );
    let mut y = TOP_MARGIN;
    for panel in panels {
        y += PANEL_HEADER;
        let suffix = if panel.gated {
            ""
        } else {
            " (smoke — not gated)"
        };
        svg.push_str(&format!(
            "<text x=\"12\" y=\"{:.1}\" fill=\"{COLOR_TITLE}\" font-size=\"14\">{}{}</text>\n",
            y - 12.0,
            escape(&panel.title),
            suffix
        ));
        let panel_height = panel.bars.len() as f64 * (BAR_HEIGHT + BAR_GAP);
        // Reference lines: the floor (dashed) and 1.0× (solid).
        for (value, dash) in [(panel.floor, " stroke-dasharray=\"4 3\""), (1.0, "")] {
            let x = LEFT_MARGIN + value * scale;
            svg.push_str(&format!(
                "<line x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\" \
                 stroke=\"{COLOR_GRID}\"{dash}/>\n",
                y - 4.0,
                y + panel_height
            ));
        }
        for bar in &panel.bars {
            let width = (bar.value * scale).max(1.5);
            let color = if bar.value < panel.floor {
                COLOR_SLOWER
            } else if bar.value < 1.0 {
                COLOR_OK
            } else {
                COLOR_FASTER
            };
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{COLOR_LABEL}\" font-size=\"11\" \
                 text-anchor=\"end\">{}</text>\n",
                LEFT_MARGIN - 8.0,
                y + BAR_HEIGHT - 3.0,
                escape(&bar.label)
            ));
            svg.push_str(&format!(
                "<rect x=\"{LEFT_MARGIN}\" y=\"{y:.1}\" width=\"{width:.1}\" \
                 height=\"{BAR_HEIGHT}\" fill=\"{color}\"/>\n"
            ));
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{COLOR_LABEL}\" font-size=\"11\">\
                 {:.2}&#215;</text>\n",
                LEFT_MARGIN + width + 6.0,
                y + BAR_HEIGHT - 3.0,
                bar.value
            ));
            y += BAR_HEIGHT + BAR_GAP;
        }
        y += PANEL_GAP;
    }
    svg.push_str("</svg>\n");
    svg
}

// --- Entry point -----------------------------------------------------

/// The workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("xtask sits two levels under the workspace root")
}

fn bench_gate(args: &[String]) -> Result<String, Vec<String>> {
    let mut root = workspace_root();
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<PathBuf, Vec<String>> {
            args.get(i + 1)
                .map(PathBuf::from)
                .ok_or_else(|| vec![format!("flag {} needs a value", args[i])])
        };
        match args[i].as_str() {
            "--root" => root = value(i)?,
            "--out" => out = Some(value(i)?),
            other => return Err(vec![format!("unknown bench-gate flag {other:?}")]),
        }
        i += 2;
    }
    let out = out.unwrap_or_else(|| root.join("target/bench-gate.svg"));
    let panels = gate(&root)?;
    let svg = render_svg(&panels);
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| vec![format!("cannot create {}: {e}", dir.display())])?;
    }
    std::fs::write(&out, &svg).map_err(|e| vec![format!("cannot write {}: {e}", out.display())])?;
    let mut summary = String::new();
    for panel in &panels {
        let min = panel
            .bars
            .iter()
            .map(|b| b.value)
            .fold(f64::INFINITY, f64::min);
        summary.push_str(&format!(
            "bench-gate: {} — min {:.3} (floor {:.3}{}) over {} bars\n",
            panel.title,
            min,
            panel.floor,
            if panel.gated {
                ""
            } else {
                ", smoke: not gated"
            },
            panel.bars.len()
        ));
    }
    summary.push_str(&format!("bench-gate: chart written to {}\n", out.display()));
    Ok(summary)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "bench-gate" => match bench_gate(rest) {
            Ok(summary) => {
                print!("{summary}");
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("bench-gate: FAIL: {e}");
                }
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: cargo xtask bench-gate [--root DIR] [--out FILE.svg]");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_bench_files_pass_the_gate() {
        let panels = gate(&workspace_root()).expect("checked-in bench results must pass");
        assert_eq!(panels.len(), 5);
        assert!(panels.iter().all(|p| !p.bars.is_empty()));
        assert!(panels.iter().all(|p| p.gated), "real results are gated");
    }

    #[test]
    fn injected_regression_fails_and_smoke_does_not() {
        let regressed = Json::parse(
            r#"{"datasets": [
                {"name": "Enron", "threads_4": {"speedup_vs_legacy": 0.42}},
                {"name": "Eu", "threads_4": {"speedup_vs_legacy": 1.3}}
            ]}"#,
        )
        .unwrap();
        let panel = engine_panel(&regressed).unwrap();
        let violations = panel.violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("Enron"), "{violations:?}");
        assert!(violations[0].contains("0.420"), "{violations:?}");

        let smoke = Json::parse(
            r#"{"smoke": true, "datasets": [
                {"name": "Enron", "threads_4": {"speedup_vs_legacy": 0.42}}
            ]}"#,
        )
        .unwrap();
        assert!(engine_panel(&smoke).unwrap().violations().is_empty());
    }

    #[test]
    fn non_bit_identical_dispatch_is_rejected_outright() {
        let doc = Json::parse(
            r#"{"sharded": [
                {"shards": 2, "speedup_vs_sequential": 1.9, "bit_identical": false}
            ]}"#,
        )
        .unwrap();
        let err = dispatch_panel(&doc).unwrap_err();
        assert!(err.contains("bit_identical"), "{err}");
    }

    #[test]
    fn kernels_panel_enforces_bit_identity_and_the_headline_rule() {
        // One headline kernel fast, the others slow: the 2-of-3 rule
        // rejects the file outright (not a mere per-bar violation).
        let thin = Json::parse(
            r#"{"kernels": [
                {"name": "mhh_cache_build", "speedup": 2.0, "bit_identical": true},
                {"name": "predict_rows", "speedup": 1.1, "bit_identical": true},
                {"name": "feature_extract", "speedup": 1.0, "bit_identical": true}
            ]}"#,
        )
        .unwrap();
        let err = kernels_panel(&thin).unwrap_err();
        assert!(err.contains("headline"), "{err}");
        // ...unless it is a smoke run (timings are noise there).
        let smoke = Json::parse(
            r#"{"smoke": true, "kernels": [
                {"name": "mhh_cache_build", "speedup": 0.9, "bit_identical": true}
            ]}"#,
        )
        .unwrap();
        assert!(kernels_panel(&smoke).unwrap().violations().is_empty());
        // A wrong kernel is rejected even at blazing speed.
        let wrong = Json::parse(
            r#"{"kernels": [
                {"name": "predict_rows", "speedup": 9.0, "bit_identical": false}
            ]}"#,
        )
        .unwrap();
        let err = kernels_panel(&wrong).unwrap_err();
        assert!(err.contains("bit_identical"), "{err}");
        // Two headline kernels over the floor pass, and the backstop
        // still flags a kernel that regresses outright.
        let regressed = Json::parse(
            r#"{"kernels": [
                {"name": "mhh_cache_build", "speedup": 1.6, "bit_identical": true},
                {"name": "predict_rows", "speedup": 3.7, "bit_identical": true},
                {"name": "feature_extract", "speedup": 0.5, "bit_identical": true}
            ]}"#,
        )
        .unwrap();
        let violations = kernels_panel(&regressed).unwrap().violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("feature_extract"), "{violations:?}");
    }

    #[test]
    fn store_panel_enforces_the_probe_floor_and_the_backstop() {
        // A filter that barely beats disk is rejected outright.
        let slow =
            Json::parse(r#"{"negative_probe": {"speedup": 2.0}, "cold_open": {"speedup": 3.0}}"#)
                .unwrap();
        let err = store_panel(&slow).unwrap_err();
        assert!(err.contains("5.0x"), "{err}");
        // ...unless it is a smoke run (timings are noise there).
        let smoke = Json::parse(
            r#"{"smoke": true, "negative_probe": {"speedup": 2.0}, "cold_open": {"speedup": 3.0}}"#,
        )
        .unwrap();
        assert!(store_panel(&smoke).unwrap().violations().is_empty());
        // The probe can pass while a cold-open regression below 1.0
        // still trips the backstop.
        let regressed =
            Json::parse(r#"{"negative_probe": {"speedup": 8.0}, "cold_open": {"speedup": 0.8}}"#)
                .unwrap();
        let violations = store_panel(&regressed).unwrap().violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("cold open"), "{violations:?}");
    }

    #[test]
    fn svg_chart_is_well_formed_and_colors_by_floor() {
        let panels = vec![Panel {
            title: "engine <fast & loose>".to_owned(),
            floor: 0.9,
            gated: true,
            bars: vec![
                Bar {
                    label: "ok".to_owned(),
                    value: 1.4,
                },
                Bar {
                    label: "meh".to_owned(),
                    value: 0.95,
                },
                Bar {
                    label: "bad".to_owned(),
                    value: 0.2,
                },
            ],
        }];
        let svg = render_svg(&panels);
        assert!(svg.starts_with("<svg "), "{svg}");
        assert!(svg.trim_end().ends_with("</svg>"), "{svg}");
        assert!(svg.contains("engine &lt;fast &amp; loose&gt;"), "{svg}");
        assert!(svg.contains(COLOR_FASTER) && svg.contains(COLOR_OK) && svg.contains(COLOR_SLOWER));
        // Raw angle brackets only delimit tags: escaping held everywhere.
        assert!(!svg.contains("<fast"), "unescaped label leaked into SVG");
    }

    #[test]
    fn bench_gate_end_to_end_writes_the_chart() {
        let out = std::env::temp_dir().join(format!("bench-gate-{}.svg", std::process::id()));
        let summary = bench_gate(&["--out".to_owned(), out.display().to_string()])
            .expect("real results pass");
        assert!(summary.contains("chart written"), "{summary}");
        let svg = std::fs::read_to_string(&out).unwrap();
        assert!(svg.contains("dispatch: sharded speedup"), "{svg}");
        let _ = std::fs::remove_file(&out);
    }
}
