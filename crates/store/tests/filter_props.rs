//! Property-style tests of the xor membership filter, through the
//! public API: the store is only allowed to trust a negative probe
//! because these hold for *every* key set, not just the unit-test
//! fixtures.
//!
//! * **Zero false negatives** — a key that was built in is always
//!   admitted, at any set size, after serialization, and under
//!   duplicate keys.
//! * **Bounded false positives** — absent keys are admitted at roughly
//!   the 8-bit fingerprint rate (~0.4%), far under the 2% we assert.

use marioh_store::filter::{filter_key, XorFilter};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

#[test]
fn no_false_negatives_over_varied_set_sizes_and_seeds() {
    for trial in 0..8u64 {
        let mut rng = Lcg(0x1234_5678 ^ (trial << 32));
        let size = [0, 1, 2, 5, 33, 257, 1_000, 20_000][trial as usize];
        let keys: Vec<u64> = (0..size).map(|_| rng.next()).collect();
        let filter = XorFilter::build(&keys);
        for (i, k) in keys.iter().enumerate() {
            assert!(
                filter.may_contain(*k),
                "trial {trial}: false negative for key {i} of {size}"
            );
        }
    }
}

#[test]
fn duplicate_keys_do_not_break_construction() {
    let mut rng = Lcg(0xD0D0);
    let mut keys: Vec<u64> = (0..500).map(|_| rng.next()).collect();
    let dupes = keys.clone();
    keys.extend(dupes); // every key twice
    keys.push(keys[0]); // and one thrice
    let filter = XorFilter::build(&keys);
    for k in &keys {
        assert!(filter.may_contain(*k));
    }
}

#[test]
fn false_positive_rate_stays_under_two_percent() {
    let mut rng = Lcg(0xFADE);
    for &size in &[100usize, 1_000, 10_000] {
        let keys: Vec<u64> = (0..size).map(|_| rng.next()).collect();
        let filter = XorFilter::build(&keys);
        // Probe keys drawn from a disjoint stream (collision odds with
        // the build set are negligible at 2^-64 per pair).
        let probes = 50_000;
        let fps = (0..probes)
            .map(|_| rng.next())
            .filter(|k| filter.may_contain(*k))
            .count();
        assert!(
            fps * 50 < probes,
            "size {size}: fp rate too high ({fps}/{probes})"
        );
    }
}

#[test]
fn serialization_preserves_every_answer() {
    let mut rng = Lcg(0xBEA7);
    let keys: Vec<u64> = (0..2_000).map(|_| rng.next()).collect();
    let filter = XorFilter::build(&keys);
    let back = XorFilter::from_bytes(&filter.to_bytes()).unwrap();
    // Identical on members and on a sample of non-members: the
    // round-trip must preserve the exact fingerprint table, not just
    // the no-false-negative guarantee.
    for k in &keys {
        assert!(back.may_contain(*k));
    }
    for _ in 0..10_000 {
        let probe = rng.next();
        assert_eq!(filter.may_contain(probe), back.may_contain(probe));
    }
}

#[test]
fn artifact_keys_differ_by_kind_salt() {
    let mut rng = Lcg(0x5A17);
    for _ in 0..1_000 {
        let mut hash = [0u8; 32];
        for chunk in hash.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next().to_le_bytes());
        }
        // The same spec hash must map to distinct keyspaces per
        // artifact kind, or a stored model would make the result probe
        // for its spec a guaranteed false positive.
        assert_ne!(filter_key(&hash, 1), filter_key(&hash, 2));
    }
}
