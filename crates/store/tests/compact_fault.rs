//! Crash-safety of the compaction protocol, driven by the
//! `store.compact` fault site. The site is hit twice per compaction —
//! at entry, and between the snapshot rename and segment retirement —
//! so `@nth:2` scripts a failure at the protocol's most delicate
//! interleaving: the snapshot already covers the WAL, but the covered
//! segments still exist.
//!
//! Own test binary on purpose: fault arming is process-global (see
//! `degraded.rs`).

use marioh_store::{
    ArtifactStore, DiskStore, JobResult, JobSpec, JobStore, Json, SpecHash, StoreTuning,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

static ARM_LOCK: Mutex<()> = Mutex::new(());

fn arm_lock() -> MutexGuard<'static, ()> {
    ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("marioh-compact-fault-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tuning() -> StoreTuning {
    StoreTuning {
        retain: 64,
        budget: None,
        segment_bytes: 256, // rotate every record or two
        compact_sealed: 1_000_000,
        auto_compact: false, // compaction only via compact_now
    }
}

fn spec(seed: u64) -> (JobSpec, SpecHash) {
    let s = JobSpec::from_json(
        &Json::parse(&format!(r#"{{"dataset": "Hosts", "seed": {seed}}}"#)).unwrap(),
    )
    .unwrap();
    let h = s.content_hash().unwrap();
    (s, h)
}

fn result() -> Arc<JobResult> {
    let mut h = marioh_hypergraph::Hypergraph::new(0);
    h.add_edge_with_multiplicity(marioh_hypergraph::hyperedge::edge(&[0, 1, 2]), 3);
    Arc::new(JobResult {
        reconstruction: h,
        jaccard: 0.8125,
    })
}

#[test]
fn a_failure_at_compaction_entry_leaves_the_wal_untouched() {
    let _guard = arm_lock();
    let dir = tmp_dir("entry");
    let store = DiskStore::open_tuned(&dir, tuning()).unwrap();
    let mut hashes = Vec::new();
    for i in 0..8 {
        let (s, h) = spec(i);
        store.submit(&s, &h);
        hashes.push(h);
    }
    store.put_result(&hashes[0], &result()).unwrap();
    let sealed_before = store.sealed_segments();
    assert!(sealed_before >= 2, "tiny cap must have forced rotations");

    marioh_fault::arm(marioh_fault::FaultPlan::parse("store.compact:err@nth:1").unwrap());
    let outcome = store.compact_now();
    marioh_fault::disarm();
    assert!(outcome.is_err(), "injected entry failure surfaces");
    assert_eq!(
        store.sealed_segments(),
        sealed_before,
        "aborted compaction retires nothing"
    );

    // Nothing was lost: a later compaction succeeds and a restart
    // replays the full state either way.
    store.compact_now().unwrap();
    assert_eq!(store.sealed_segments(), 0);
    drop(store);
    let store = DiskStore::open_tuned(&dir, tuning()).unwrap();
    assert_eq!(store.counters().submitted, 8);
    assert!(store.get_result(&hashes[0]).is_some());
}

#[test]
fn a_crash_between_snapshot_and_retirement_replays_idempotently() {
    let _guard = arm_lock();
    let dir = tmp_dir("mid");
    let store = DiskStore::open_tuned(&dir, tuning()).unwrap();
    let mut hashes = Vec::new();
    for i in 0..8 {
        let (s, h) = spec(i);
        store.submit(&s, &h);
        hashes.push(h);
    }
    store.put_result(&hashes[0], &result()).unwrap();
    store.put_result(&hashes[1], &result()).unwrap();
    let sealed_before = store.sealed_segments();
    assert!(sealed_before >= 2);

    // Fail between the snapshot rename and segment retirement: the
    // snapshot now covers every WAL record, the covered segments are
    // still on disk — exactly what a SIGKILL there leaves behind.
    marioh_fault::arm(marioh_fault::FaultPlan::parse("store.compact:err@nth:2").unwrap());
    let outcome = store.compact_now();
    marioh_fault::disarm();
    assert!(outcome.is_err());
    assert_eq!(store.sealed_segments(), sealed_before, "retirement skipped");
    drop(store);

    // Replay must treat the already-snapshotted segments as no-ops
    // (watermark skip), not double-apply them.
    let store = DiskStore::open_tuned(&dir, tuning()).unwrap();
    assert_eq!(store.counters().submitted, 8);
    assert_eq!(store.recover_queued().len(), 8);
    assert!(store.get_result(&hashes[0]).is_some());
    assert!(store.get_result(&hashes[1]).is_some());
    assert_eq!(store.artifact_stats().results, 2);

    // The next compaction finishes the interrupted one's work.
    store.compact_now().unwrap();
    assert_eq!(store.sealed_segments(), 0);
    drop(store);
    let store = DiskStore::open_tuned(&dir, tuning()).unwrap();
    assert_eq!(store.counters().submitted, 8);
    assert!(store.get_result(&hashes[1]).is_some());
}
