//! Property-style tests of the WAL segment framing, through the public
//! API only: randomized record sets, every possible torn-tail cut
//! point, and exhaustive single-byte corruption. The invariant under
//! test is the recovery contract the store builds on — a scan returns
//! a *correct prefix* (byte-identical payloads, contiguous sequence
//! numbers) or a loud error, never silently wrong data.

use marioh_store::segment::{
    read_segment, segment_file_name, SegmentWriter, FRAME_OVERHEAD, SEGMENT_HEADER_LEN,
};
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("marioh-segment-props")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic pseudo-random generator — property inputs must be
/// reproducible across runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_records(rng: &mut Lcg, count: usize, max_len: u64) -> Vec<Vec<u8>> {
    (0..count)
        .map(|_| {
            let len = rng.below(max_len) as usize;
            (0..len).map(|_| (rng.next() >> 40) as u8).collect()
        })
        .collect()
}

fn write_segment(dir: &Path, first_seq: u64, records: &[Vec<u8>]) -> PathBuf {
    let mut w = SegmentWriter::create(dir, first_seq).unwrap();
    for r in records {
        w.append(r).unwrap();
    }
    w.sync().unwrap();
    dir.join(segment_file_name(first_seq))
}

#[test]
fn random_record_sets_round_trip_with_contiguous_sequences() {
    let dir = tmp_dir("roundtrip");
    let mut rng = Lcg(0xB5);
    for case in 0..20u64 {
        let count = 1 + rng.below(30) as usize;
        let records = random_records(&mut rng, count, 200);
        let first_seq = 1 + rng.below(1 << 40);
        let path = write_segment(&dir, first_seq, &records);
        let scan = read_segment(&path, first_seq).unwrap();
        assert!(!scan.torn, "clean file must not read as torn (case {case})");
        assert_eq!(scan.records.len(), records.len());
        for (i, (seq, payload)) in scan.records.iter().enumerate() {
            assert_eq!(*seq, first_seq + i as u64, "sequences are contiguous");
            assert_eq!(payload, &records[i], "payload {i} byte-identical");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn every_tail_cut_point_yields_a_correct_prefix() {
    let dir = tmp_dir("torn");
    let mut rng = Lcg(0x5EED);
    let records = random_records(&mut rng, 6, 40);
    let path = write_segment(&dir, 7, &records);
    let full = std::fs::read(&path).unwrap();

    // Frame boundaries: byte offset where each record's frame ends.
    let mut boundaries = vec![SEGMENT_HEADER_LEN];
    for r in &records {
        boundaries.push(boundaries.last().unwrap() + FRAME_OVERHEAD + r.len());
    }
    assert_eq!(*boundaries.last().unwrap(), full.len());

    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        if cut < SEGMENT_HEADER_LEN {
            // Too short for a header: an empty torn segment, not an
            // error — this is what a crash right after rotation leaves.
            let scan = read_segment(&path, 7).unwrap();
            assert!(scan.torn && scan.records.is_empty(), "cut at {cut}");
            continue;
        }
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        let scan = read_segment(&path, 7).unwrap();
        assert_eq!(
            scan.records.len(),
            complete,
            "cut at {cut}: exactly the complete frames survive"
        );
        // A cut exactly on a frame boundary leaves a well-formed (just
        // shorter) segment — only a partial trailing frame reads torn.
        assert_eq!(scan.torn, !boundaries.contains(&cut), "cut at {cut}");
        for (i, (seq, payload)) in scan.records.iter().enumerate() {
            assert_eq!(*seq, 7 + i as u64);
            assert_eq!(
                payload, &records[i],
                "prefix record {i} intact at cut {cut}"
            );
        }
    }
}

#[test]
fn single_byte_corruption_is_never_silently_accepted() {
    let dir = tmp_dir("flip");
    let mut rng = Lcg(0xF11);
    let records = random_records(&mut rng, 4, 24);
    let path = write_segment(&dir, 3, &records);
    let full = std::fs::read(&path).unwrap();

    for pos in 0..full.len() {
        let mut damaged = full.clone();
        damaged[pos] ^= 0x01;
        std::fs::write(&path, &damaged).unwrap();
        match read_segment(&path, 3) {
            // Whatever does decode must be a byte-identical prefix —
            // corruption may shorten the scan (torn tail) but can never
            // alter a payload that is still returned.
            Ok(scan) => {
                for (i, (seq, payload)) in scan.records.iter().enumerate() {
                    assert_eq!(*seq, 3 + i as u64, "flip at {pos}");
                    assert_eq!(
                        payload, &records[i],
                        "flip at byte {pos} surfaced a corrupt payload"
                    );
                }
                assert!(
                    scan.torn || scan.records.len() == records.len(),
                    "flip at {pos}: shortened scan must be flagged torn"
                );
            }
            Err(e) => {
                assert!(!e.is_empty(), "flip at {pos}: error has a message");
            }
        }
    }
}

#[test]
fn sequence_gaps_between_frames_are_refused() {
    let dir = tmp_dir("gap");
    let records = vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()];
    let path = write_segment(&dir, 10, &records);
    let full = std::fs::read(&path).unwrap();

    // Splice out the middle frame wholesale: both neighbours have valid
    // CRCs, so only the sequence check can catch the hole.
    let f0_end = SEGMENT_HEADER_LEN + FRAME_OVERHEAD + records[0].len();
    let f1_end = f0_end + FRAME_OVERHEAD + records[1].len();
    let mut spliced = full[..f0_end].to_vec();
    spliced.extend_from_slice(&full[f1_end..]);
    std::fs::write(&path, &spliced).unwrap();
    let err = read_segment(&path, 10).unwrap_err();
    assert!(err.contains("sequence"), "{err}");
}
