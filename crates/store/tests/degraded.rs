//! Read-only degraded mode, driven by the `store.artifact` fault site.
//!
//! Lives in its own test binary on purpose: arming a fault plan is
//! process-global, and sharing a process with the store's other tests
//! would inject faults into their artifact writes too.

use marioh_store::{DiskStore, JobResult, JobSpec, JobStatus};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// Arming is process-global; the two tests here serialize on this.
static ARM_LOCK: Mutex<()> = Mutex::new(());

fn arm_lock() -> MutexGuard<'static, ()> {
    ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("marioh-degraded-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn result() -> Arc<JobResult> {
    let mut h = marioh_hypergraph::Hypergraph::new(0);
    h.add_edge_with_multiplicity(marioh_hypergraph::hyperedge::edge(&[0, 1, 2]), 3);
    Arc::new(JobResult {
        reconstruction: h,
        jaccard: 0.8125,
    })
}

#[test]
fn persistent_artifact_failure_flips_degraded_and_serves_from_overlay() {
    use marioh_store::{ArtifactStore, JobStore};

    let _guard = arm_lock();
    let dir = tmp_dir("flip");
    let store = DiskStore::open(&dir, 8).unwrap();
    let spec = JobSpec::from_json(
        &marioh_store::Json::parse(r#"{"dataset": "Hosts", "seed": 11}"#).unwrap(),
    )
    .unwrap();
    let hash = spec.content_hash().unwrap();
    assert!(!JobStore::degraded(&store));

    // Every store.artifact attempt fails: the bounded retry gives up
    // and the store flips to read-only degraded mode instead of
    // failing the job.
    marioh_fault::arm(marioh_fault::FaultPlan::parse("store.artifact:err@upto:100").unwrap());
    let outcome = store.put_result(&hash, &result());
    marioh_fault::disarm();
    outcome.expect("degraded put_result still succeeds from memory");
    assert!(
        JobStore::degraded(&store),
        "persistent failure flips the flag"
    );

    // The artifact is served from the in-memory overlay, not the disk…
    let back = store.get_result(&hash).expect("overlay serves the result");
    assert_eq!(back.jaccard.to_bits(), 0.8125f64.to_bits());
    let on_disk = std::fs::read_dir(dir.join("artifacts").join("results"))
        .map(|entries| entries.count())
        .unwrap_or(0);
    assert_eq!(on_disk, 0, "nothing landed on disk");
    assert_eq!(store.artifact_stats().results, 1);

    // …and the job table stays fully correct in memory while log
    // writes stop touching the disk.
    let id = store.submit(&spec, &hash);
    assert_eq!(store.view(id).unwrap().status, JobStatus::Queued);
    assert!(store.start(id).is_some());
}

#[test]
fn transient_artifact_failure_is_retried_through() {
    use marioh_store::{ArtifactStore, JobStore};

    let _guard = arm_lock();
    let dir = tmp_dir("transient");
    let store = DiskStore::open(&dir, 8).unwrap();
    let spec = JobSpec::from_json(
        &marioh_store::Json::parse(r#"{"dataset": "Hosts", "seed": 12}"#).unwrap(),
    )
    .unwrap();
    let hash = spec.content_hash().unwrap();

    // Only the first two attempts fail; the third retry lands the
    // artifact on disk and the store never degrades.
    marioh_fault::arm(marioh_fault::FaultPlan::parse("store.artifact:err@upto:2").unwrap());
    let outcome = store.put_result(&hash, &result());
    marioh_fault::disarm();
    outcome.unwrap();
    assert!(
        !JobStore::degraded(&store),
        "transient failure must not degrade"
    );
    let on_disk = std::fs::read_dir(dir.join("artifacts").join("results"))
        .map(|entries| entries.count())
        .unwrap_or(0);
    assert_eq!(on_disk, 1, "the retried write reached the disk");
}
