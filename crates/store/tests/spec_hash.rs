//! Property tests of the canonical spec hash: submissions that describe
//! the same computation must hash equal no matter how the JSON was
//! spelled, and any semantic change must produce a different hash —
//! otherwise the result cache would either miss (wasted recomputation)
//! or, far worse, hit wrongly (served someone else's reconstruction).

use marioh_store::{JobSpec, Json, SpecHash};
use proptest::prelude::*;

/// Renders `body` with `seed`-driven cosmetic noise: object key order is
/// permuted at every level and random whitespace is injected between
/// tokens. The value is unchanged — only the spelling.
fn next_noise(seed: &mut u64, bound: usize) -> usize {
    // SplitMix64 step — cheap deterministic noise.
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as usize % bound.max(1)
}

fn pad(seed: &mut u64, out: &mut String) {
    for _ in 0..next_noise(seed, 3) {
        out.push(if next_noise(seed, 2) == 0 { ' ' } else { '\n' });
    }
}

fn render_noisy(v: &Json, seed: &mut u64, out: &mut String) {
    match v {
        Json::Obj(pairs) => {
            // A permutation via repeated random removal.
            let mut remaining: Vec<&(String, Json)> = pairs.iter().collect();
            out.push('{');
            let mut first = true;
            while !remaining.is_empty() {
                let idx = next_noise(seed, remaining.len());
                let (key, value) = remaining.remove(idx);
                if !first {
                    out.push(',');
                }
                first = false;
                pad(seed, out);
                out.push_str(&Json::str(key.clone()).to_string());
                pad(seed, out);
                out.push(':');
                pad(seed, out);
                render_noisy(value, seed, out);
            }
            pad(seed, out);
            out.push('}');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(seed, out);
                render_noisy(item, seed, out);
            }
            out.push(']');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn hash_of(body: &str) -> SpecHash {
    JobSpec::from_json(&Json::parse(body).expect("valid JSON"))
        .expect("valid spec")
        .content_hash()
        .expect("valid hyperparameters")
}

/// Strategy: a structured, always-valid job body with a random subset of
/// parameters set, as a `Json` object.
fn arb_body() -> impl Strategy<Value = Json> {
    let arb_bool = || proptest::option::of((0usize..2).prop_map(|v| v == 1));
    let params = (
        (
            proptest::option::of(0.5..1.0f64),   // theta_init
            proptest::option::of(5.0..100.0f64), // neg_ratio
            proptest::option::of(0.01..1.0f64),  // alpha
            proptest::option::of(1usize..4),     // threads
        ),
        (
            proptest::option::of(0.25..1.0f64), // supervision_fraction
            arb_bool(),                         // filtering
            arb_bool(),                         // bidirectional
        ),
    );
    (
        0usize..3,                          // dataset index
        proptest::option::of(0.25..1.5f64), // scale
        0u64..5,                            // seed
        0usize..5,                          // method index
        params,
    )
        .prop_map(|(dataset, scale, seed, method, params)| {
            let dataset = ["Hosts", "crime", "p.school"][dataset];
            let method = [
                None,
                Some("MARIOH"),
                Some("MARIOH-M"),
                Some("MARIOH-F"),
                Some("MARIOH-B"),
            ][method];
            let mut pairs = vec![
                ("dataset".to_owned(), Json::str(dataset)),
                ("seed".to_owned(), Json::num(seed as f64)),
            ];
            if let Some(scale) = scale {
                pairs.push(("scale".to_owned(), Json::num(scale)));
            }
            if let Some(method) = method {
                pairs.push(("method".to_owned(), Json::str(method)));
            }
            let ((theta, ratio, alpha, threads), (sup, filt, bidir)) = params;
            let mut p = Vec::new();
            if let Some(v) = theta {
                p.push(("theta_init".to_owned(), Json::num(v)));
            }
            if let Some(v) = ratio {
                p.push(("neg_ratio".to_owned(), Json::num(v)));
            }
            if let Some(v) = alpha {
                p.push(("alpha".to_owned(), Json::num(v)));
            }
            if let Some(v) = threads {
                p.push(("threads".to_owned(), Json::num(v as f64)));
            }
            if let Some(v) = sup {
                p.push(("supervision_fraction".to_owned(), Json::num(v)));
            }
            if let Some(v) = filt {
                p.push(("filtering".to_owned(), Json::Bool(v)));
            }
            if let Some(v) = bidir {
                p.push(("bidirectional".to_owned(), Json::Bool(v)));
            }
            if !p.is_empty() {
                pairs.push(("params".to_owned(), Json::Obj(p)));
            }
            Json::Obj(pairs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Key order and whitespace are cosmetic: every noisy respelling of
    /// a body parses to the same hash as its compact form.
    #[test]
    fn key_order_and_whitespace_never_change_the_hash(
        body in arb_body(),
        noise_seed in 0u64..1_000_000,
    ) {
        let compact = hash_of(&body.to_string());
        let mut seed = noise_seed;
        let mut noisy = String::new();
        render_noisy(&body, &mut seed, &mut noisy);
        prop_assert_eq!(compact, hash_of(&noisy), "respelling: {}", noisy);
    }

    /// Leaving a parameter out and spelling its default explicitly are
    /// the same computation.
    #[test]
    fn explicit_defaults_hash_like_omitted_ones(seed in 0u64..50) {
        use marioh_core::{MariohConfig, TrainingConfig};
        let c = MariohConfig::default();
        let t = TrainingConfig::default();
        let bare = format!(r#"{{"dataset": "Hosts", "seed": {seed}}}"#);
        let explicit = format!(
            r#"{{"seed": {seed}, "dataset": "Hosts", "method": "MARIOH", "throttle_ms": 0,
                "params": {{"theta_init": {}, "neg_ratio": {}, "alpha": {},
                            "threads": {}, "max_iterations": {},
                            "supervision_fraction": {}, "negative_ratio": {},
                            "filtering": true, "bidirectional": true}}}}"#,
            c.theta_init,
            c.neg_ratio,
            c.alpha,
            c.threads,
            c.max_iterations,
            t.supervision_fraction,
            t.negative_ratio,
        );
        prop_assert_eq!(hash_of(&bare), hash_of(&explicit));
        // A default scale and the dataset's explicit default scale are
        // also the same computation.
        let scale = marioh_datasets::PaperDataset::Hosts.default_scale();
        let scaled = format!(r#"{{"dataset": "Hosts", "seed": {seed}, "scale": {scale}}}"#);
        prop_assert_eq!(hash_of(&bare), hash_of(&scaled));
    }

    /// Flipping any single semantic parameter away from its current
    /// value changes the hash.
    #[test]
    fn every_semantic_change_changes_the_hash(body in arb_body(), bump in 1u64..4) {
        let base = hash_of(&body.to_string());
        let base_spec = JobSpec::from_json(&body).unwrap();

        // Seed.
        let mut changed = base_spec.clone();
        changed.seed = changed.seed.wrapping_add(bump);
        prop_assert_ne!(base, changed.content_hash().unwrap());

        // Each numeric hyperparameter, nudged within its valid domain.
        for field in ["theta_init", "neg_ratio", "alpha", "supervision_fraction"] {
            let mut changed = base_spec.clone();
            let slot = match field {
                "theta_init" => &mut changed.params.theta_init,
                "neg_ratio" => &mut changed.params.neg_ratio,
                "alpha" => &mut changed.params.alpha,
                _ => &mut changed.params.supervision_fraction,
            };
            let current = slot.unwrap_or(match field {
                "theta_init" => 0.9,
                "neg_ratio" => 20.0,
                "alpha" => 0.05,
                _ => 1.0,
            });
            *slot = Some(if current > 0.5 { current / 2.0 } else { current * 1.5 });
            prop_assert_ne!(base, changed.content_hash().unwrap(), "field {}", field);
        }

        // Boolean toggles, relative to their *effective* value. A flag
        // the ablation variant pins (MARIOH-F forces filtering off, the
        // param cannot override it) is skipped: toggling it is not a
        // semantic change, and the canonical encoding rightly ignores it.
        use marioh_core::Variant;
        let effective = base_spec.apply(marioh_core::Pipeline::builder()).build().unwrap();
        if base_spec.variant != Variant::NoFiltering {
            let mut changed = base_spec.clone();
            changed.params.filtering = Some(!effective.config().use_filtering);
            prop_assert_ne!(base, changed.content_hash().unwrap());
        }
        if base_spec.variant != Variant::NoBidirectional {
            let mut changed = base_spec.clone();
            changed.params.bidirectional = Some(!effective.config().use_bidirectional);
            prop_assert_ne!(base, changed.content_hash().unwrap());
        }

        // The input itself.
        let mut changed = base_spec.clone();
        changed.input = marioh_store::JobInput::Dataset {
            dataset: marioh_datasets::PaperDataset::Directors,
            scale: None,
        };
        prop_assert_ne!(base, changed.content_hash().unwrap());

        // Attaching a reused model.
        let mut changed = base_spec;
        changed.model = Some(marioh_store::ModelRef::Job(7));
        prop_assert_ne!(base, changed.content_hash().unwrap());
    }

    /// Two different uploaded edge lists hash differently; the same
    /// multiset uploaded in a different line order hashes the same.
    #[test]
    fn uploaded_edges_hash_by_content_not_spelling(
        lines in proptest::collection::vec((1u32..3, 0u32..8, 8u32..16), 1..6),
        order_seed in 0u64..1000,
    ) {
        let records: Vec<String> = lines
            .iter()
            .map(|(m, a, b)| format!("{m} {a} {b}"))
            .collect();
        let body = |text: &str| format!(r#"{{"edges": {}}}"#, Json::str(text));
        let forward = hash_of(&body(&records.join("\n")));
        // Reversed line order — same multiset.
        let mut reversed = records.clone();
        reversed.reverse();
        prop_assert_eq!(forward, hash_of(&body(&reversed.join("\n"))));
        let _ = order_seed;
        // One extra record — different multiset.
        let mut extra = records;
        extra.push("1 100 101".to_owned());
        prop_assert_ne!(forward, hash_of(&body(&extra.join("\n"))));
    }
}
