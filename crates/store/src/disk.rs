//! The durable store: an append-only record log + snapshot for job
//! records, and content-addressed artifact files for results and models.
//!
//! # Layout (under `--state-dir`)
//!
//! ```text
//! <state-dir>/
//!   VERSION                         "marioh-store v1"
//!   jobs.snapshot                   compacted state, rewritten at open
//!   jobs.log                        record log appended during operation
//!   artifacts/
//!     results/<spec-hash>.result    cached reconstructions
//!     models/<spec-hash>.model      models trained by jobs
//!     models/named/<name>.model     models saved by name
//! ```
//!
//! Every state change appends one JSON line to `jobs.log` and flushes, so
//! a killed process loses at most work in flight, never acknowledged
//! records. On open, the store reads the snapshot, replays the log on top
//! of it, resets interrupted `Running` jobs to `Queued` (their workers
//! died with the process), rewrites a fresh snapshot, and truncates the
//! log — replay cost is proportional to activity since the last open, not
//! to history.
//!
//! Result artifacts are written **before** the `done` record is logged,
//! so a replayed `done` can always lazily load its result; the reverse
//! crash order merely leaves an orphan artifact that the next identical
//! submission reuses.
//!
//! # Degraded mode
//!
//! Disk failures must not take serving down: artifact writes retry
//! with bounded backoff, and persistent failure (or a run of
//! consecutive log-write failures) flips the store into **read-only
//! degraded mode** — nothing further touches the disk, new artifacts
//! land in an in-memory overlay, the job table stays authoritative,
//! and [`JobStore::degraded`] reports the state for `/healthz`. The
//! write paths carry `marioh-fault` sites (`store.append`,
//! `store.fsync`, `store.artifact`) so chaos runs can force these
//! transitions deterministically.
//!
//! Changing [`STORE_FORMAT_VERSION`] is an on-disk format change: add a
//! migration note to `crates/store/FORMATS.md` (CI and a unit test fail
//! otherwise).

use crate::hash::SpecHash;
use crate::json::Json;
use crate::spec::{JobResult, JobSpec, JobStatus, JobView, Transition};
use crate::store::{
    ArtifactStats, ArtifactStore, JobStore, ModelEntry, Record, RecordTable, StoreCounters,
};
use marioh_core::{MariohError, SavedModel};
use marioh_hypergraph::io as hio;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Version of the on-disk store format, written into `VERSION` and the
/// snapshot/log headers. Opening a state dir written by a different
/// version is refused with a clear error instead of misreading it.
///
/// Bumping this constant requires a migration note in
/// `crates/store/FORMATS.md`.
pub const STORE_FORMAT_VERSION: u32 = 1;

fn format_tag() -> String {
    format!("marioh-store v{STORE_FORMAT_VERSION}")
}

fn corrupt(msg: impl Into<String>) -> MariohError {
    MariohError::Config(msg.into())
}

/// Consecutive log-write failures tolerated before the store gives up
/// on the disk and flips to read-only degraded mode.
const LOG_FAILURE_LIMIT: u32 = 3;

/// Attempts per artifact write (first try + retries with doubling
/// backoff) before the failure is treated as persistent.
const ARTIFACT_WRITE_ATTEMPTS: u32 = 3;

/// Backoff before the first artifact-write retry; doubles per attempt.
const ARTIFACT_RETRY_BACKOFF: Duration = Duration::from_millis(5);

#[derive(Debug)]
struct DiskInner {
    table: RecordTable,
    log: BufWriter<File>,
    /// Consecutive `jobs.log` write/flush failures; one success resets
    /// it, [`LOG_FAILURE_LIMIT`] in a row flips degraded mode.
    log_failures: u32,
    degraded: Arc<AtomicBool>,
}

/// Artifacts accepted while the disk was unwritable. Serving stays
/// correct from this overlay + the in-memory job table; the entries die
/// with the process, exactly like [`crate::store::MemoryStore`] data.
#[derive(Debug, Default)]
struct ArtifactOverlay {
    results: HashMap<SpecHash, Arc<JobResult>>,
    models: HashMap<SpecHash, SavedModel>,
    named: HashMap<String, SavedModel>,
}

/// The durable job + artifact store. One instance owns a state dir;
/// share it across the job and artifact roles with an `Arc`.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    inner: Mutex<DiskInner>,
    recovered: Mutex<Vec<u64>>,
    /// Set once persistent I/O failure flips the store to read-only
    /// degraded mode; checked lock-free on every write path.
    degraded: Arc<AtomicBool>,
    overlay: Mutex<ArtifactOverlay>,
    /// Held (OS-level, advisory, exclusive) for the store's whole
    /// lifetime; the kernel releases it when the process dies, so a
    /// `kill -9` never leaves a stale lock behind.
    _lock: File,
}

impl DiskStore {
    /// Opens (creating if absent) the store at `root`, replaying any
    /// existing snapshot + log, re-queueing interrupted jobs, and
    /// compacting. The dir is locked exclusively for the store's
    /// lifetime: open rewrites the snapshot and truncates the log, which
    /// would corrupt a live writer's record stream, so a second opener
    /// is refused instead.
    ///
    /// # Errors
    ///
    /// [`MariohError::Io`] for filesystem failures,
    /// [`MariohError::Config`] for a state dir written by a different
    /// format version, with corrupt records, or already locked by
    /// another process.
    pub fn open(root: impl Into<PathBuf>, retain: usize) -> Result<DiskStore, MariohError> {
        let root = root.into();
        fs::create_dir_all(root.join("artifacts").join("results"))?;
        fs::create_dir_all(root.join("artifacts").join("models").join("named"))?;

        let lock = File::create(root.join("LOCK"))?;
        if let Err(e) = lock.try_lock() {
            return Err(corrupt(format!(
                "state dir {} is in use by another process ({e}); stop it first \
                 (the lock is released automatically when that process exits)",
                root.display()
            )));
        }

        let version_path = root.join("VERSION");
        match fs::read_to_string(&version_path) {
            Ok(existing) => {
                if existing.trim() != format_tag() {
                    return Err(corrupt(format!(
                        "state dir {} was written by {:?}; this build is {:?} — migrate it first \
                         (see crates/store/FORMATS.md)",
                        root.display(),
                        existing.trim(),
                        format_tag()
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::write(&version_path, format!("{}\n", format_tag()))?;
            }
            Err(e) => return Err(MariohError::Io(e)),
        }

        let mut table = RecordTable::new(retain);
        let snapshot_path = root.join("jobs.snapshot");
        if snapshot_path.exists() {
            read_snapshot(&snapshot_path, &mut table)?;
        }
        let log_path = root.join("jobs.log");
        if log_path.exists() {
            replay_log(&log_path, &mut table)?;
        }
        table.requeue_running();
        let recovered = table.queued_ids();

        write_snapshot(&snapshot_path, &table)?;
        // Truncate the replayed log; everything it said is now in the
        // snapshot.
        let mut log = BufWriter::new(File::create(&log_path)?);
        writeln!(log, "{} log", format_tag())?;
        log.flush()?;

        let degraded = Arc::new(AtomicBool::new(false));
        Ok(DiskStore {
            root,
            inner: Mutex::new(DiskInner {
                table,
                log,
                log_failures: 0,
                degraded: Arc::clone(&degraded),
            }),
            recovered: Mutex::new(recovered),
            degraded,
            overlay: Mutex::new(ArtifactOverlay::default()),
            _lock: lock,
        })
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    fn overlay(&self) -> MutexGuard<'_, ArtifactOverlay> {
        self.overlay.lock().expect("artifact overlay lock poisoned")
    }

    /// The state directory this store owns.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn inner(&self) -> MutexGuard<'_, DiskInner> {
        self.inner.lock().expect("disk store lock poisoned")
    }

    fn result_path(&self, hash: &SpecHash) -> PathBuf {
        self.root
            .join("artifacts")
            .join("results")
            .join(format!("{hash}.result"))
    }

    fn model_path(&self, hash: &SpecHash) -> PathBuf {
        self.root
            .join("artifacts")
            .join("models")
            .join(format!("{hash}.model"))
    }

    fn named_model_path(&self, name: &str) -> PathBuf {
        self.root
            .join("artifacts")
            .join("models")
            .join("named")
            .join(format!("{name}.model"))
    }
}

/// A tmp path unique to this (process, call): concurrent writers of the
/// same artifact — two workers finishing identical specs — must not
/// truncate each other's half-written tmp before the atomic rename.
fn unique_tmp(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}-{n}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Flips the store to read-only degraded mode (idempotent): log and
/// artifact writes stop touching the disk, serving continues from the
/// in-memory table + artifact overlay, and `/healthz` reports it.
fn enter_degraded(degraded: &AtomicBool, why: &str) {
    if !degraded.swap(true, Ordering::Relaxed) {
        eprintln!("marioh-store: persistent I/O failure, entering read-only degraded mode: {why}");
        marioh_obs::global().gauge("marioh_store_degraded").set(1);
    }
}

/// Records the outcome of one log write/flush: a success resets the
/// consecutive-failure run, [`LOG_FAILURE_LIMIT`] failures in a row
/// flip degraded mode. A lone failure must not take the serving path
/// down; the in-memory state stays authoritative and the next open
/// replays what did land.
fn note_log_outcome(inner: &mut DiskInner, result: std::io::Result<()>) {
    match result {
        Ok(()) => inner.log_failures = 0,
        Err(e) => {
            inner.log_failures += 1;
            if inner.log_failures >= LOG_FAILURE_LIMIT {
                enter_degraded(&inner.degraded, &format!("jobs.log write failed: {e}"));
            }
        }
    }
}

/// Buffers one log record without flushing — callers pair it with
/// [`commit_log`], so a batch of appends pays one flush (+ fsync) total.
fn buffer_record(inner: &mut DiskInner, record: &Json) {
    if inner.degraded.load(Ordering::Relaxed) {
        return; // read-only: the disk already proved unwritable
    }
    let result = match marioh_fault::hit("store.append") {
        Some(marioh_fault::Action::Err) => Err(marioh_fault::io_error("store.append")),
        Some(marioh_fault::Action::Stall(ms)) => {
            marioh_fault::stall(ms);
            writeln!(inner.log, "{record}")
        }
        _ => writeln!(inner.log, "{record}"),
    };
    note_log_outcome(inner, result);
}

/// Flushes everything buffered since the last commit; `durable` adds an
/// fsync so acknowledged records survive power loss, not just a crash.
fn commit_log(inner: &mut DiskInner, durable: bool) {
    if inner.degraded.load(Ordering::Relaxed) {
        return;
    }
    let flushed = inner.log.flush();
    if durable {
        let t0 = std::time::Instant::now();
        let synced = match marioh_fault::hit("store.fsync") {
            Some(marioh_fault::Action::Err) => Err(marioh_fault::io_error("store.fsync")),
            Some(marioh_fault::Action::Stall(ms)) => {
                marioh_fault::stall(ms);
                inner.log.get_ref().sync_data()
            }
            _ => inner.log.get_ref().sync_data(),
        };
        let obs = marioh_obs::global();
        obs.counter("marioh_store_fsync_total").inc();
        obs.histogram("marioh_store_fsync_seconds")
            .observe(t0.elapsed());
        note_log_outcome(inner, flushed.and(synced));
    } else {
        note_log_outcome(inner, flushed);
    }
}

fn append(inner: &mut DiskInner, record: &Json, durable: bool) {
    buffer_record(inner, record);
    commit_log(inner, durable);
}

/// Runs one artifact write with bounded retry: a transient failure
/// (real, or injected at the `store.artifact` site) backs off with
/// doubling sleeps and retries up to [`ARTIFACT_WRITE_ATTEMPTS`] total
/// attempts; the final error is returned for the caller to treat as
/// persistent. Each attempt counts one `store.artifact` operation.
fn artifact_write_retry(
    mut attempt: impl FnMut() -> Result<(), MariohError>,
) -> Result<(), MariohError> {
    let mut backoff = ARTIFACT_RETRY_BACKOFF;
    let mut tries = 0;
    loop {
        let result = match marioh_fault::hit("store.artifact") {
            Some(marioh_fault::Action::Err) => {
                Err(MariohError::Io(marioh_fault::io_error("store.artifact")))
            }
            Some(marioh_fault::Action::Stall(ms)) => {
                marioh_fault::stall(ms);
                attempt()
            }
            _ => attempt(),
        };
        tries += 1;
        match result {
            Ok(()) => return Ok(()),
            Err(e) if tries >= ARTIFACT_WRITE_ATTEMPTS => return Err(e),
            Err(_) => {
                marioh_obs::global()
                    .counter("marioh_store_artifact_retries_total")
                    .inc();
                std::thread::sleep(backoff);
                backoff *= 2;
            }
        }
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

impl JobStore for DiskStore {
    fn submit(&self, spec: &JobSpec, hash: &SpecHash) -> u64 {
        let mut inner = self.inner();
        let id = inner.table.submit(spec.clone(), *hash);
        let record = obj(vec![
            ("t", Json::str("submit")),
            ("id", Json::num(id as f64)),
            ("hash", Json::str(hash.to_hex())),
            ("spec", spec.to_json()),
        ]);
        append(&mut inner, &record, true);
        id
    }

    fn start(&self, id: u64) -> Option<JobSpec> {
        let mut inner = self.inner();
        let spec = inner.table.start(id)?;
        let record = obj(vec![
            ("t", Json::str("start")),
            ("id", Json::num(id as f64)),
        ]);
        append(&mut inner, &record, false);
        Some(spec)
    }

    fn transition(&self, id: u64, t: Transition) -> Option<JobStatus> {
        let mut inner = self.inner();
        let (status, wrote) = transition_locked(&mut inner, id, t);
        if let Some(durable) = wrote {
            commit_log(&mut inner, durable);
        }
        status
    }

    fn transition_batch(&self, items: Vec<(u64, Transition)>) -> Vec<Option<JobStatus>> {
        let mut inner = self.inner();
        let mut wrote = false;
        let mut durable = false;
        let statuses = items
            .into_iter()
            .map(|(id, t)| {
                let (status, record) = transition_locked(&mut inner, id, t);
                if let Some(d) = record {
                    wrote = true;
                    durable |= d;
                }
                status
            })
            .collect();
        // One flush (and at most one fsync) for the whole drain, instead
        // of one per record.
        if wrote {
            commit_log(&mut inner, durable);
        }
        statuses
    }

    fn view(&self, id: u64) -> Option<JobView> {
        self.inner().table.view(id)
    }

    fn result(&self, id: u64) -> Option<(JobStatus, Option<Arc<JobResult>>)> {
        let mut inner = self.inner();
        let record = inner.table.get(id)?;
        let (status, hash) = (record.status, record.hash);
        if status == JobStatus::Done && record.result.is_none() {
            if let Some(arc) = self.overlay().results.get(&hash).cloned() {
                if let Some(record) = inner.table.get_mut(id) {
                    record.result = Some(Arc::clone(&arc));
                }
                return Some((status, Some(arc)));
            }
            // Replayed done record: load the artifact lazily, memoize.
            if let Ok(result) = read_result_file(&self.result_path(&hash)) {
                let arc = Arc::new(result);
                if let Some(record) = inner.table.get_mut(id) {
                    record.result = Some(Arc::clone(&arc));
                }
                return Some((status, Some(arc)));
            }
            return Some((status, None));
        }
        let result = inner.table.get(id).and_then(|r| r.result.clone());
        Some((status, result))
    }

    fn spec_hash(&self, id: u64) -> Option<SpecHash> {
        self.inner().table.get(id).map(|r| r.hash)
    }

    fn scan(&self) -> Vec<JobView> {
        self.inner().table.scan()
    }

    fn counters(&self) -> StoreCounters {
        self.inner().table.counters()
    }

    fn submit_batch(&self, items: &[(JobSpec, SpecHash)]) -> Vec<u64> {
        if items.is_empty() {
            return Vec::new();
        }
        let mut inner = self.inner();
        let ids = items
            .iter()
            .map(|(spec, hash)| {
                let id = inner.table.submit(spec.clone(), *hash);
                let record = obj(vec![
                    ("t", Json::str("submit")),
                    ("id", Json::num(id as f64)),
                    ("hash", Json::str(hash.to_hex())),
                    ("spec", spec.to_json()),
                ]);
                buffer_record(&mut inner, &record);
                id
            })
            .collect();
        // One flush + fsync for the whole batch.
        commit_log(&mut inner, true);
        ids
    }

    fn recover_queued(&self) -> Vec<u64> {
        std::mem::take(&mut *self.recovered.lock().expect("recovered lock poisoned"))
    }

    fn kind(&self) -> &'static str {
        "disk"
    }

    fn degraded(&self) -> bool {
        self.is_degraded()
    }
}

/// Applies one transition against the locked inner state, buffering (but
/// not committing) its log record. Returns the resulting status and
/// `Some(durable)` when a record was buffered — the caller owns the
/// [`commit_log`] so batches pay one flush + fsync total.
fn transition_locked(
    inner: &mut DiskInner,
    id: u64,
    t: Transition,
) -> (Option<JobStatus>, Option<bool>) {
    let Some(before) = inner.table.get(id).map(|r| r.status) else {
        return (None, None);
    };
    let record = if before.is_terminal() {
        None // immutable; nothing to log
    } else {
        match &t {
            Transition::Start => Some((
                obj(vec![
                    ("t", Json::str("start")),
                    ("id", Json::num(id as f64)),
                ]),
                false,
            )),
            Transition::Progress { rounds, committed } => {
                let mut pairs = vec![("t", Json::str("progress")), ("id", Json::num(id as f64))];
                if let Some(rounds) = rounds {
                    pairs.push(("rounds", Json::num(*rounds as f64)));
                }
                if let Some(committed) = committed {
                    pairs.push(("committed", Json::num(*committed as f64)));
                }
                Some((obj(pairs), false))
            }
            Transition::Note(msg) => Some((
                obj(vec![
                    ("t", Json::str("note")),
                    ("id", Json::num(id as f64)),
                    ("error", Json::str(msg.clone())),
                ]),
                false,
            )),
            Transition::Done { cached, .. } => Some((
                obj(vec![
                    ("t", Json::str("done")),
                    ("id", Json::num(id as f64)),
                    ("cached", Json::Bool(*cached)),
                ]),
                true,
            )),
            Transition::Failed(msg) => Some((
                obj(vec![
                    ("t", Json::str("failed")),
                    ("id", Json::num(id as f64)),
                    ("error", Json::str(msg.clone())),
                ]),
                true,
            )),
            Transition::Cancelled => Some((
                obj(vec![
                    ("t", Json::str("cancelled")),
                    ("id", Json::num(id as f64)),
                ]),
                true,
            )),
        }
    };
    let status = inner.table.transition(id, t);
    match record {
        Some((record, durable)) => {
            buffer_record(inner, &record);
            (status, Some(durable))
        }
        None => (status, None),
    }
}

impl ArtifactStore for DiskStore {
    fn put_result(&self, hash: &SpecHash, result: &Arc<JobResult>) -> Result<(), MariohError> {
        if self.is_degraded() {
            self.overlay().results.insert(*hash, Arc::clone(result));
            return Ok(());
        }
        let path = self.result_path(hash);
        if path.exists() {
            return Ok(()); // identical content by construction
        }
        let encoded = encode_result(result);
        crate::store::record_artifact_bytes("result", encoded.len() as u64);
        let written = artifact_write_retry(|| {
            let tmp = unique_tmp(&path);
            fs::write(&tmp, &encoded)?;
            fs::rename(&tmp, &path)?;
            Ok(())
        });
        if let Err(e) = written {
            enter_degraded(
                &self.degraded,
                &format!("result artifact write failed: {e}"),
            );
            self.overlay().results.insert(*hash, Arc::clone(result));
        }
        Ok(())
    }

    fn get_result(&self, hash: &SpecHash) -> Option<Arc<JobResult>> {
        if let Some(found) = self.overlay().results.get(hash).cloned() {
            crate::store::record_cache_probe("result", true);
            return Some(found);
        }
        let found = read_result_file(&self.result_path(hash)).ok().map(Arc::new);
        crate::store::record_cache_probe("result", found.is_some());
        found
    }

    fn put_model(&self, hash: &SpecHash, model: &SavedModel) -> Result<(), MariohError> {
        if self.is_degraded() {
            self.overlay().models.insert(*hash, model.clone());
            return Ok(());
        }
        let path = self.model_path(hash);
        if path.exists() {
            return Ok(());
        }
        let written = artifact_write_retry(|| {
            let tmp = unique_tmp(&path);
            model.save(&tmp)?;
            if let Ok(meta) = fs::metadata(&tmp) {
                crate::store::record_artifact_bytes("model", meta.len());
            }
            fs::rename(&tmp, &path)?;
            Ok(())
        });
        if let Err(e) = written {
            enter_degraded(&self.degraded, &format!("model artifact write failed: {e}"));
            self.overlay().models.insert(*hash, model.clone());
        }
        Ok(())
    }

    fn get_model(&self, hash: &SpecHash) -> Option<SavedModel> {
        if let Some(found) = self.overlay().models.get(hash).cloned() {
            crate::store::record_cache_probe("model", true);
            return Some(found);
        }
        let found = SavedModel::load(self.model_path(hash)).ok();
        crate::store::record_cache_probe("model", found.is_some());
        found
    }

    fn put_named_model(&self, name: &str, model: &SavedModel) -> Result<(), MariohError> {
        crate::spec::validate_model_name(name).map_err(MariohError::Config)?;
        if self.is_degraded() {
            self.overlay().named.insert(name.to_owned(), model.clone());
            return Ok(());
        }
        let path = self.named_model_path(name);
        let written = artifact_write_retry(|| {
            let tmp = unique_tmp(&path);
            model.save(&tmp)?;
            fs::rename(&tmp, &path)?;
            Ok(())
        });
        if let Err(e) = written {
            enter_degraded(&self.degraded, &format!("named model write failed: {e}"));
            self.overlay().named.insert(name.to_owned(), model.clone());
        }
        Ok(())
    }

    fn get_named_model(&self, name: &str) -> Option<SavedModel> {
        crate::spec::validate_model_name(name).ok()?;
        if let Some(found) = self.overlay().named.get(name).cloned() {
            return Some(found);
        }
        SavedModel::load(self.named_model_path(name)).ok()
    }

    fn list_models(&self) -> Vec<ModelEntry> {
        let models_dir = self.root.join("artifacts").join("models");
        let mut named_files = list_model_files(&models_dir.join("named"));
        {
            // Models accepted while degraded live only in the overlay;
            // listing must still see them.
            let overlay = self.overlay();
            for (name, model) in &overlay.named {
                if !named_files.iter().any(|(stem, _)| stem == name) {
                    named_files.push((name.clone(), model.model.feature_mode().tag().to_owned()));
                }
            }
        }
        let mut named: Vec<ModelEntry> = named_files
            .into_iter()
            .map(|(stem, mode)| ModelEntry {
                name: Some(stem),
                hash: None,
                mode,
            })
            .collect();
        named.sort_by(|a, b| a.name.cmp(&b.name));
        let mut hashed: Vec<ModelEntry> = list_model_files(&models_dir)
            .into_iter()
            .filter_map(|(stem, mode)| {
                SpecHash::from_hex(&stem).map(|h| ModelEntry {
                    name: None,
                    hash: Some(h),
                    mode,
                })
            })
            .collect();
        hashed.sort_by_key(|e| e.hash);
        named.extend(hashed);
        named
    }

    fn artifact_stats(&self) -> ArtifactStats {
        let artifacts = self.root.join("artifacts");
        let count = |dir: &Path, ext: &str| -> usize {
            fs::read_dir(dir)
                .map(|entries| {
                    entries
                        .filter_map(|e| e.ok())
                        .filter(|e| e.path().extension().is_some_and(|x| x == ext))
                        .count()
                })
                .unwrap_or(0)
        };
        let overlay = self.overlay();
        ArtifactStats {
            results: count(&artifacts.join("results"), "result") + overlay.results.len(),
            models: count(&artifacts.join("models"), "model")
                + count(&artifacts.join("models").join("named"), "model")
                + overlay.models.len()
                + overlay.named.len(),
        }
    }
}

/// `(file stem, feature-mode tag)` of every `.model` file directly in
/// `dir` (not recursing into `named/`).
fn list_model_files(dir: &Path) -> Vec<(String, String)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .filter_map(|e| {
            let path = e.path();
            if path.extension()? != "model" {
                return None;
            }
            let stem = path.file_stem()?.to_str()?.to_owned();
            let mode = SavedModel::load(&path)
                .ok()
                .map(|m| m.model.feature_mode().tag().to_owned())?;
            Some((stem, mode))
        })
        .collect()
}

/// Encodes a result artifact exactly as [`DiskStore`] stores it on disk
/// (`marioh-result vN` header, `jaccard_bits`, hypergraph text). The
/// wire protocol ships these same bytes in `Result` frames, so a
/// sharded run's merge path persists byte-for-byte what a
/// single-process run would have written.
pub fn encode_result(result: &JobResult) -> Vec<u8> {
    let mut out = Vec::new();
    // Writes into a Vec cannot fail.
    let _ = writeln!(out, "marioh-result v{STORE_FORMAT_VERSION}");
    let _ = writeln!(out, "jaccard_bits {}", result.jaccard.to_bits());
    let _ = hio::write_hypergraph(&result.reconstruction, &mut out);
    out
}

/// Decodes a result artifact produced by [`encode_result`] (or read
/// back from a store's `artifacts/results/` directory).
///
/// # Errors
///
/// [`MariohError::Config`] for malformed or version-mismatched bytes.
pub fn decode_result(bytes: &[u8]) -> Result<JobResult, MariohError> {
    read_result(bytes)
}

fn read_result_file(path: &Path) -> Result<JobResult, MariohError> {
    read_result(BufReader::new(File::open(path)?))
}

fn read_result(mut input: impl BufRead) -> Result<JobResult, MariohError> {
    let mut line = String::new();
    input.read_line(&mut line)?;
    let header = line.trim();
    if header
        .strip_prefix("marioh-result v")
        .and_then(|v| v.parse::<u32>().ok())
        .is_none_or(|v| v == 0 || v > STORE_FORMAT_VERSION)
    {
        return Err(corrupt(format!("not a marioh result file: {header:?}")));
    }
    line.clear();
    input.read_line(&mut line)?;
    let jaccard = line
        .trim()
        .strip_prefix("jaccard_bits ")
        .and_then(|b| b.parse::<u64>().ok())
        .map(f64::from_bits)
        .ok_or_else(|| corrupt("malformed jaccard line in result file"))?;
    let reconstruction = hio::read_hypergraph(input).map_err(MariohError::from)?;
    Ok(JobResult {
        reconstruction,
        jaccard,
    })
}

// --- snapshot + replay ---------------------------------------------------

fn get_u64(v: &Json, key: &str) -> Result<u64, MariohError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt(format!("store record is missing integer field {key:?}")))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, MariohError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt(format!("store record is missing string field {key:?}")))
}

fn get_hash(v: &Json) -> Result<SpecHash, MariohError> {
    SpecHash::from_hex(get_str(v, "hash")?)
        .ok_or_else(|| corrupt("store record has a malformed spec hash"))
}

fn get_spec(v: &Json) -> Result<JobSpec, MariohError> {
    let spec = v
        .get("spec")
        .ok_or_else(|| corrupt("store record is missing its spec"))?;
    JobSpec::from_json(spec).map_err(|e| corrupt(format!("store record has an invalid spec: {e}")))
}

fn write_snapshot(path: &Path, table: &RecordTable) -> Result<(), MariohError> {
    let tmp = path.with_extension("snapshot.tmp");
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        writeln!(out, "{} snapshot", format_tag())?;
        let counters = table.counters();
        let meta = obj(vec![
            ("t", Json::str("meta")),
            ("submitted", Json::num(counters.submitted as f64)),
            ("finished", Json::num(counters.finished as f64)),
        ]);
        writeln!(out, "{meta}")?;
        // Terminal records first, in completion order, so replaying the
        // snapshot reconstructs the eviction order; then live records by
        // id.
        let mut ordered: Vec<(u64, &Record)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for id in table.terminal_ids() {
            if let Some(record) = table.get(id) {
                ordered.push((id, record));
                seen.insert(id);
            }
        }
        let mut live: Vec<(u64, &Record)> = table
            .iter()
            .filter(|(id, _)| !seen.contains(*id))
            .map(|(id, r)| (*id, r))
            .collect();
        live.sort_by_key(|(id, _)| *id);
        ordered.extend(live);
        for (id, record) in ordered {
            let mut pairs = vec![
                ("t", Json::str("job")),
                ("id", Json::num(id as f64)),
                ("hash", Json::str(record.hash.to_hex())),
                ("status", Json::str(record.status.as_str())),
                ("rounds", Json::num(record.rounds as f64)),
                ("committed", Json::num(record.committed as f64)),
                ("cached", Json::Bool(record.cached)),
            ];
            if let Some(error) = &record.error {
                pairs.push(("error", Json::str(error.clone())));
            }
            if let Some(spec) = &record.spec {
                pairs.push(("spec", spec.to_json()));
            }
            writeln!(out, "{}", obj(pairs))?;
        }
        out.flush()?;
        out.get_ref().sync_data()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

fn read_snapshot(path: &Path, table: &mut RecordTable) -> Result<(), MariohError> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| corrupt("empty store snapshot"))?;
    let expected = format!("{} snapshot", format_tag());
    if header.trim() != expected {
        return Err(corrupt(format!(
            "snapshot header {header:?} does not match {expected:?} — migrate the state dir first"
        )));
    }
    let mut counters = StoreCounters::default();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record =
            Json::parse(&line).map_err(|e| corrupt(format!("corrupt snapshot record: {e}")))?;
        match get_str(&record, "t")? {
            "meta" => {
                counters.submitted = get_u64(&record, "submitted")?;
                counters.finished = get_u64(&record, "finished")?;
            }
            "job" => {
                let id = get_u64(&record, "id")?;
                let status = JobStatus::from_str_tag(get_str(&record, "status")?)
                    .ok_or_else(|| corrupt("snapshot record has an unknown status"))?;
                let spec = match record.get("spec") {
                    Some(_) => Some(get_spec(&record)?),
                    None => None,
                };
                table.insert_with_id(
                    id,
                    Record {
                        spec,
                        hash: get_hash(&record)?,
                        status,
                        rounds: get_u64(&record, "rounds")? as usize,
                        committed: get_u64(&record, "committed")? as usize,
                        error: record
                            .get("error")
                            .and_then(Json::as_str)
                            .map(str::to_owned),
                        result: None, // loaded lazily from the artifact store
                        cached: record
                            .get("cached")
                            .and_then(Json::as_bool)
                            .unwrap_or(false),
                    },
                );
            }
            other => return Err(corrupt(format!("unknown snapshot record type {other:?}"))),
        }
    }
    // The snapshot's lifetime counters override the per-insert counting
    // (evicted records are gone from the snapshot but still happened).
    table.set_counters(counters);
    Ok(())
}

fn replay_log(path: &Path, table: &mut RecordTable) -> Result<(), MariohError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines().enumerate();
    match lines.next() {
        None => return Ok(()), // brand-new empty log
        Some((_, header)) => {
            let expected = format!("{} log", format_tag());
            if header.trim() != expected {
                return Err(corrupt(format!(
                    "log header {header:?} does not match {expected:?} — migrate the state dir first"
                )));
            }
        }
    }
    let non_empty: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let last_index = non_empty.len().saturating_sub(1);
    for (pos, (lineno, line)) in non_empty.iter().enumerate() {
        let record = match Json::parse(line) {
            Ok(r) => r,
            // A torn final line is the expected debris of a kill;
            // anything earlier is real corruption.
            Err(_) if pos == last_index => break,
            Err(e) => {
                return Err(corrupt(format!(
                    "corrupt store log at line {}: {e}",
                    lineno + 1
                )))
            }
        };
        apply_log_record(table, &record)?;
    }
    Ok(())
}

fn apply_log_record(table: &mut RecordTable, record: &Json) -> Result<(), MariohError> {
    let id = get_u64(record, "id")?;
    match get_str(record, "t")? {
        "submit" => {
            table.insert_with_id(id, Record::queued(get_spec(record)?, get_hash(record)?));
        }
        "start" => {
            table.transition(id, Transition::Start);
        }
        "progress" => {
            table.transition(
                id,
                Transition::Progress {
                    rounds: record
                        .get("rounds")
                        .and_then(Json::as_u64)
                        .map(|v| v as usize),
                    committed: record
                        .get("committed")
                        .and_then(Json::as_u64)
                        .map(|v| v as usize),
                },
            );
        }
        "note" => {
            table.transition(id, Transition::Note(get_str(record, "error")?.to_owned()));
        }
        "done" => {
            // The result stays on disk; `DiskStore::result` loads it
            // lazily by spec hash.
            let cached = record
                .get("cached")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            table.mark_done_replayed(id, cached);
        }
        "failed" => {
            table.transition(id, Transition::Failed(get_str(record, "error")?.to_owned()));
        }
        "cancelled" => {
            table.transition(id, Transition::Cancelled);
        }
        other => return Err(corrupt(format!("unknown store log record type {other:?}"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use marioh_hypergraph::hyperedge::edge;
    use std::fs::OpenOptions;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("marioh-disk-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(body: &str) -> (JobSpec, SpecHash) {
        let s = JobSpec::from_json(&Json::parse(body).unwrap()).unwrap();
        let h = s.content_hash().unwrap();
        (s, h)
    }

    fn result() -> Arc<JobResult> {
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge_with_multiplicity(edge(&[0, 1, 2]), 3);
        h.add_edge(edge(&[1, 4]));
        Arc::new(JobResult {
            reconstruction: h,
            jaccard: 0.8125,
        })
    }

    #[test]
    fn restart_replays_terminal_records_and_requeues_interrupted_jobs() {
        let dir = tmp_dir("restart");
        let (done_spec, done_hash) = spec(r#"{"dataset": "Hosts", "seed": 1}"#);
        let (queued_spec, queued_hash) = spec(r#"{"dataset": "Hosts", "seed": 2}"#);
        let (running_spec, running_hash) = spec(r#"{"dataset": "Hosts", "seed": 3}"#);

        let (done_id, queued_id, running_id) = {
            let store = DiskStore::open(&dir, 64).unwrap();
            assert!(store.recover_queued().is_empty());
            let done_id = store.submit(&done_spec, &done_hash);
            let queued_id = store.submit(&queued_spec, &queued_hash);
            let running_id = store.submit(&running_spec, &running_hash);
            store.start(done_id).unwrap();
            store.put_result(&done_hash, &result()).unwrap();
            store.transition(
                done_id,
                Transition::Done {
                    result: result(),
                    cached: false,
                },
            );
            store.start(running_id).unwrap();
            store.transition(
                running_id,
                Transition::Progress {
                    rounds: Some(2),
                    committed: Some(9),
                },
            );
            (done_id, queued_id, running_id)
            // dropped without any shutdown ceremony — like a kill
        };

        let store = DiskStore::open(&dir, 64).unwrap();
        // Terminal history is served from disk...
        let view = store.view(done_id).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        let (_, loaded) = store.result(done_id).unwrap();
        let loaded = loaded.expect("replayed result loads lazily");
        assert_eq!(loaded.jaccard.to_bits(), 0.8125f64.to_bits());
        assert_eq!(
            loaded.reconstruction.total_edge_count(),
            result().reconstruction.total_edge_count()
        );
        // ...and interrupted work is back in the queue, in order.
        assert_eq!(store.recover_queued(), vec![queued_id, running_id]);
        let requeued = store.view(running_id).unwrap();
        assert_eq!(requeued.status, JobStatus::Queued);
        assert_eq!(requeued.rounds, 2, "progress survives the restart");
        let taken = store.start(running_id).expect("recovered spec is intact");
        assert_eq!(taken.content_hash().unwrap(), running_hash);
        assert_eq!(
            store.counters(),
            StoreCounters {
                submitted: 3,
                finished: 1
            }
        );
    }

    #[test]
    fn counters_and_eviction_survive_compaction_cycles() {
        let dir = tmp_dir("compaction");
        let retain = 2;
        let mut ids = Vec::new();
        for round in 0..3u64 {
            let store = DiskStore::open(&dir, retain).unwrap();
            for id in store.recover_queued() {
                store.start(id);
                store.transition(id, Transition::Failed("interrupted".into()));
            }
            let (s, h) = spec(&format!(
                r#"{{"dataset": "Hosts", "seed": {}}}"#,
                10 + round
            ));
            let id = store.submit(&s, &h);
            store.start(id);
            store.transition(id, Transition::Failed("boom".into()));
            ids.push(id);
        }
        let store = DiskStore::open(&dir, retain).unwrap();
        let counters = store.counters();
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.finished, 3);
        // Only the `retain` most recent terminal records survive.
        assert!(store.view(ids[0]).is_none());
        assert_eq!(store.view(ids[2]).unwrap().status, JobStatus::Failed);
        assert_eq!(store.scan().len(), retain);
        // Ids keep ascending across restarts.
        let (s, h) = spec(r#"{"dataset": "Hosts", "seed": 99}"#);
        assert!(store.submit(&s, &h) > *ids.last().unwrap());
    }

    #[test]
    fn batched_appends_recover_a_consistent_prefix_after_a_mid_batch_crash() {
        let dir = tmp_dir("batch");
        let specs: Vec<(JobSpec, SpecHash)> = (0..4)
            .map(|i| spec(&format!(r#"{{"dataset": "Hosts", "seed": {i}}}"#)))
            .collect();
        let ids = {
            let store = DiskStore::open(&dir, 16).unwrap();
            let ids = store.submit_batch(&specs);
            assert_eq!(ids, vec![1, 2, 3, 4]);
            store.start(ids[0]).unwrap();
            store.start(ids[1]).unwrap();
            let statuses = store.transition_batch(vec![
                (
                    ids[0],
                    Transition::Progress {
                        rounds: Some(1),
                        committed: Some(3),
                    },
                ),
                (ids[1], Transition::Failed("boom".into())),
                (9999, Transition::Failed("unknown".into())),
            ]);
            assert_eq!(
                statuses,
                vec![Some(JobStatus::Running), Some(JobStatus::Failed), None]
            );
            ids
        };

        // The whole first batch was acknowledged, so a restart replays
        // all of it: the interrupted runner re-queues, the failure and
        // the untouched queued jobs survive.
        {
            let store = DiskStore::open(&dir, 16).unwrap();
            assert_eq!(store.recover_queued(), vec![ids[0], ids[2], ids[3]]);
            assert_eq!(store.view(ids[1]).unwrap().status, JobStatus::Failed);
            // Write one more batch, whose tail the "crash" below tears.
            let more: Vec<(JobSpec, SpecHash)> = (10..12)
                .map(|i| spec(&format!(r#"{{"dataset": "Hosts", "seed": {i}}}"#)))
                .collect();
            assert_eq!(store.submit_batch(&more), vec![5, 6]);
        }

        // Simulate a crash mid-batch-append: chop the last bytes of the
        // log, leaving the batch's final record torn.
        let log = dir.join("jobs.log");
        let bytes = fs::read(&log).unwrap();
        fs::write(&log, &bytes[..bytes.len() - 7]).unwrap();

        // Recovery keeps the consistent prefix — every record before the
        // torn one — and drops only the torn tail, exactly like a torn
        // single append.
        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!(store.view(5).unwrap().status, JobStatus::Queued);
        assert!(store.view(6).is_none(), "torn tail record must not replay");
        assert_eq!(store.recover_queued(), vec![ids[0], ids[2], ids[3], 5]);
    }

    #[test]
    fn result_codec_round_trips_and_matches_the_disk_artifact() {
        let dir = tmp_dir("codec");
        let store = DiskStore::open(&dir, 8).unwrap();
        let (_, h) = spec(r#"{"dataset": "Hosts", "seed": 3}"#);
        let original = result();
        store.put_result(&h, &original).unwrap();
        // The standalone encoder produces byte-for-byte the on-disk
        // artifact — this is what `Result` wire frames carry.
        let on_disk = fs::read(
            dir.join("artifacts")
                .join("results")
                .join(format!("{h}.result")),
        )
        .unwrap();
        assert_eq!(encode_result(&original), on_disk);
        let decoded = decode_result(&on_disk).unwrap();
        assert_eq!(decoded.jaccard.to_bits(), original.jaccard.to_bits());
        assert_eq!(
            decoded.reconstruction.sorted_edges(),
            original.reconstruction.sorted_edges()
        );
        assert!(decode_result(b"not a result").is_err());
        // Cut mid-way through the jaccard line: malformed, not a panic.
        assert!(decode_result(&on_disk[..20]).is_err());
    }

    #[test]
    fn torn_final_log_line_is_tolerated_earlier_corruption_is_not() {
        let dir = tmp_dir("torn");
        let (s, h) = spec(r#"{"dataset": "Hosts"}"#);
        {
            let store = DiskStore::open(&dir, 8).unwrap();
            store.submit(&s, &h);
        }
        let log = dir.join("jobs.log");
        // Simulate a crash mid-append: a partial JSON line at the tail.
        let mut file = OpenOptions::new().append(true).open(&log).unwrap();
        write!(file, "{{\"t\":\"submit\",\"id\":2,\"ha").unwrap();
        drop(file);
        let store = DiskStore::open(&dir, 8).unwrap();
        assert_eq!(store.recover_queued(), vec![1]);
        drop(store); // release the dir lock before reopening

        // Corruption in the middle is refused loudly.
        let mut text = fs::read_to_string(&log).unwrap();
        text.push_str("not json at all\n");
        text.push_str(r#"{"t":"cancelled","id":1}"#);
        text.push('\n');
        fs::write(&log, text).unwrap();
        let err = DiskStore::open(&dir, 8).unwrap_err();
        assert!(err.to_string().contains("corrupt store log"), "{err}");
    }

    #[test]
    fn a_second_opener_is_refused_while_the_store_lives() {
        let dir = tmp_dir("lock");
        let store = DiskStore::open(&dir, 8).unwrap();
        // A concurrent open would rewrite the snapshot and truncate the
        // log out from under the live writer — refused instead.
        let err = DiskStore::open(&dir, 8).unwrap_err();
        assert!(err.to_string().contains("in use"), "{err}");
        // Dropping the store releases the lock.
        drop(store);
        DiskStore::open(&dir, 8).unwrap();
    }

    #[test]
    fn version_mismatch_is_refused_with_a_migration_pointer() {
        let dir = tmp_dir("version");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("VERSION"), "marioh-store v999\n").unwrap();
        let err = DiskStore::open(&dir, 8).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("v999") && msg.contains("FORMATS.md"), "{msg}");
    }

    #[test]
    fn artifacts_round_trip_on_disk() {
        let dir = tmp_dir("artifacts");
        let store = DiskStore::open(&dir, 8).unwrap();
        let (s, h) = spec(r#"{"dataset": "Hosts", "seed": 7}"#);
        let _ = s;
        assert!(store.get_result(&h).is_none());
        store.put_result(&h, &result()).unwrap();
        let back = store.get_result(&h).unwrap();
        assert_eq!(back.jaccard.to_bits(), 0.8125f64.to_bits());
        assert_eq!(store.artifact_stats().results, 1);

        let model = {
            use marioh_core::training::{train_classifier, TrainingConfig};
            use rand::{rngs::StdRng, SeedableRng};
            let mut hg = marioh_hypergraph::Hypergraph::new(0);
            for b in 0..12u32 {
                hg.add_edge(edge(&[b * 3, b * 3 + 1, b * 3 + 2]));
                hg.add_edge(edge(&[b * 3, b * 3 + 1]));
            }
            let mut rng = StdRng::seed_from_u64(0);
            SavedModel {
                model: train_classifier(&hg, &TrainingConfig::default(), &mut rng),
                rng_state: Some([9, 8, 7, 6]),
            }
        };
        store.put_model(&h, &model).unwrap();
        assert_eq!(store.get_model(&h).unwrap().rng_state, Some([9, 8, 7, 6]));
        store.put_named_model("exported", &model).unwrap();
        assert!(store.put_named_model("../escape", &model).is_err());
        assert!(store.get_named_model("exported").is_some());
        let listed = store.list_models();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].name.as_deref(), Some("exported"));
        assert_eq!(listed[1].hash, Some(h));
        assert_eq!(store.artifact_stats().models, 2);
    }
}
