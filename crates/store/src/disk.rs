//! The durable store: a segmented, CRC-framed WAL + snapshot for job
//! records, and content-addressed compressed artifact files for results
//! and models, fronted by an approximate-membership filter.
//!
//! # Layout (under `--state-dir`)
//!
//! ```text
//! <state-dir>/
//!   VERSION                         "marioh-store v2"
//!   jobs.snapshot                   compacted state + WAL watermark
//!   wal/
//!     seg-<first-seq>.wal           CRC-framed record segments
//!     seg-<first-seq>.filter        xor filter over a sealed segment
//!     base.filter                   xor filter rebuilt at compaction
//!   artifacts/
//!     results/<spec-hash>.result    cached reconstructions (compressed)
//!     models/<spec-hash>.model      models trained by jobs (compressed)
//!     models/named/<name>.model     models saved by name
//! ```
//!
//! Every state change appends one framed record to the tail WAL segment
//! and flushes, so a killed process loses at most work in flight, never
//! acknowledged records. Segments rotate at a byte cap
//! (`MARIOH_STORE_SEGMENT_BYTES`); a background compactor folds sealed
//! segments into a fresh snapshot and retires them, so replay cost is
//! bounded by the segment cap times the seal threshold, not by history.
//! The snapshot carries a **sequence watermark**: replay skips records
//! the snapshot already folded in, which makes compaction's
//! snapshot-then-retire protocol crash-safe at every interleaving (the
//! `store.compact` fault site scripts those crashes deterministically).
//!
//! Result artifacts are written **before** the `done` record is logged,
//! so a replayed `done` can always lazily load its result; the reverse
//! crash order merely leaves an orphan artifact that the next identical
//! submission reuses.
//!
//! # Filtered probes, compression, eviction
//!
//! Artifact cache probes consult an in-memory xor [`crate::filter`]
//! layer first (tail set + sealed-segment filters + base filter): a
//! negative answer — the common case on a fresh corpus — returns
//! without touching disk. Artifacts are stored as compressed containers
//! ([`crate::compress`]); v1 plain files are still read transparently.
//! A byte budget ([`StoreTuning::budget`]) drives least-recently-used
//! eviction across result and model artifacts, with terminal job
//! records folded into the same policy via the record table's byte cap.
//!
//! # Degraded mode
//!
//! Disk failures must not take serving down: artifact writes retry
//! with bounded backoff, and persistent failure (or a run of
//! consecutive WAL-write failures) flips the store into **read-only
//! degraded mode** — nothing further touches the disk, new artifacts
//! land in an in-memory overlay, the job table stays authoritative,
//! and [`JobStore::degraded`] reports the state for `/healthz`. The
//! write paths carry `marioh-fault` sites (`store.append`,
//! `store.fsync`, `store.artifact`, `store.compact`) so chaos runs can
//! force these transitions deterministically.
//!
//! Changing [`STORE_FORMAT_VERSION`] is an on-disk format change: add a
//! migration note to `crates/store/FORMATS.md` (CI and a unit test fail
//! otherwise). v1 state dirs migrate in place at open: the legacy
//! `jobs.log` is replayed once, the artifact index is seeded from a
//! directory scan, and a v2 snapshot replaces both.

use crate::compress;
use crate::filter::{filter_key, XorFilter};
use crate::hash::SpecHash;
use crate::json::Json;
use crate::segment::{
    filter_file_name, parse_segment_file_name, read_segment, segment_file_name, SegmentWriter,
    FRAME_OVERHEAD, SEGMENT_HEADER_LEN,
};
use crate::spec::{JobResult, JobSpec, JobStatus, JobView, Transition};
use crate::store::{
    ArtifactStats, ArtifactStore, JobStore, ModelEntry, Record, RecordTable, StoreCounters,
    DEFAULT_RETAINED_JOBS,
};
use marioh_core::{MariohError, SavedModel};
use marioh_hypergraph::io as hio;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{self, File};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Version of the on-disk store format, written into `VERSION` and the
/// snapshot header. Opening a state dir written by a *newer* version is
/// refused with a clear error; a v1 dir is migrated in place at open.
///
/// Bumping this constant requires a migration note in
/// `crates/store/FORMATS.md`.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// The tag v1 stores wrote into `VERSION`; still accepted (and
/// migrated) at open.
const V1_TAG: &str = "marioh-store v1";

/// Header line of a compressed result container; the body is one
/// [`compress`] block holding exactly the [`encode_result`] bytes.
const RESULT_CONTAINER: &str = "marioh-result-z v2";

/// Header line of a compressed model container; the body is one
/// [`compress`] block holding exactly the [`SavedModel::write_to`]
/// bytes.
const MODEL_CONTAINER: &str = "marioh-model-z v1";

/// Default byte cap per WAL segment before rotation.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// Default sealed-segment count that wakes the background compactor.
pub const DEFAULT_COMPACT_SEALED: usize = 4;

fn format_tag() -> String {
    format!("marioh-store v{STORE_FORMAT_VERSION}")
}

fn corrupt(msg: impl Into<String>) -> MariohError {
    MariohError::Config(msg.into())
}

/// Consecutive WAL write failures tolerated before the store gives up
/// on the disk and flips to read-only degraded mode.
const LOG_FAILURE_LIMIT: u32 = 3;

/// Attempts per artifact write (first try + retries with doubling
/// backoff) before the failure is treated as persistent.
const ARTIFACT_WRITE_ATTEMPTS: u32 = 3;

/// Backoff before the first artifact-write retry; doubles per attempt.
const ARTIFACT_RETRY_BACKOFF: Duration = Duration::from_millis(5);

/// Tuning knobs for [`DiskStore::open_tuned`]. `new` reads the
/// environment overrides (`MARIOH_STORE_SEGMENT_BYTES`,
/// `MARIOH_STORE_COMPACT_SEGMENTS`) so child processes in end-to-end
/// tests can shrink segments without plumbing flags everywhere.
#[derive(Debug, Clone)]
pub struct StoreTuning {
    /// Terminal job records kept in memory and the snapshot (count cap).
    pub retain: usize,
    /// Optional artifact byte budget; exceeding it evicts
    /// least-recently-used artifacts. One eighth of it also caps the
    /// bytes held by retained terminal records.
    pub budget: Option<u64>,
    /// Byte cap per WAL segment before rotation.
    pub segment_bytes: u64,
    /// Sealed-segment count that wakes the background compactor.
    pub compact_sealed: usize,
    /// Spawn the background compaction thread (tests and benches turn
    /// this off and drive [`DiskStore::compact_now`] directly).
    pub auto_compact: bool,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl StoreTuning {
    /// Defaults plus environment overrides.
    pub fn new(retain: usize) -> StoreTuning {
        StoreTuning {
            retain,
            budget: None,
            segment_bytes: env_u64("MARIOH_STORE_SEGMENT_BYTES")
                .unwrap_or(DEFAULT_SEGMENT_BYTES)
                .max(SEGMENT_HEADER_LEN as u64 + 1),
            compact_sealed: env_u64("MARIOH_STORE_COMPACT_SEGMENTS")
                .unwrap_or(DEFAULT_COMPACT_SEALED as u64)
                .max(1) as usize,
            auto_compact: true,
        }
    }
}

/// Artifact kinds tracked by the size-aware index. Named models are
/// outside the budget (explicit exports should not silently vanish).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ArtifactKind {
    Result,
    Model,
}

impl ArtifactKind {
    fn tag(self) -> &'static str {
        match self {
            ArtifactKind::Result => "result",
            ArtifactKind::Model => "model",
        }
    }

    fn from_tag(tag: &str) -> Option<ArtifactKind> {
        match tag {
            "result" => Some(ArtifactKind::Result),
            "model" => Some(ArtifactKind::Model),
            _ => None,
        }
    }

    /// Per-kind filter salt: a cached *model* for a spec must not make
    /// the *result* probe for the same spec a guaranteed false positive.
    fn salt(self) -> u64 {
        match self {
            ArtifactKind::Result => 0x5245_534C_u64,
            ArtifactKind::Model => 0x4D4F_444C_u64,
        }
    }
}

#[derive(Debug, Clone)]
struct ArtEntry {
    bytes: u64,
    tick: u64,
}

/// The in-memory artifact index: what is on disk, how big it is
/// encoded, and in what recency order — the eviction policy's whole
/// world. Rebuilt at open from the snapshot's `art` records plus WAL
/// replay.
#[derive(Debug, Default, Clone)]
struct ArtState {
    index: HashMap<(SpecHash, ArtifactKind), ArtEntry>,
    /// `tick -> key`, oldest first; ticks are unique.
    lru: BTreeMap<u64, (SpecHash, ArtifactKind)>,
    next_tick: u64,
    result_bytes: u64,
    model_bytes: u64,
}

impl ArtState {
    fn bytes_mut(&mut self, kind: ArtifactKind) -> &mut u64 {
        match kind {
            ArtifactKind::Result => &mut self.result_bytes,
            ArtifactKind::Model => &mut self.model_bytes,
        }
    }

    fn insert(&mut self, hash: SpecHash, kind: ArtifactKind, bytes: u64) {
        self.remove(hash, kind);
        let tick = self.next_tick;
        self.next_tick += 1;
        self.index.insert((hash, kind), ArtEntry { bytes, tick });
        self.lru.insert(tick, (hash, kind));
        *self.bytes_mut(kind) += bytes;
    }

    fn remove(&mut self, hash: SpecHash, kind: ArtifactKind) -> Option<u64> {
        let entry = self.index.remove(&(hash, kind))?;
        self.lru.remove(&entry.tick);
        *self.bytes_mut(kind) -= entry.bytes;
        Some(entry.bytes)
    }

    fn touch(&mut self, hash: SpecHash, kind: ArtifactKind) {
        if let Some(entry) = self.index.get_mut(&(hash, kind)) {
            self.lru.remove(&entry.tick);
            entry.tick = self.next_tick;
            self.next_tick += 1;
            self.lru.insert(entry.tick, (hash, kind));
        }
    }

    fn pop_oldest(&mut self) -> Option<(SpecHash, ArtifactKind, u64)> {
        let (&tick, &(hash, kind)) = self.lru.iter().next()?;
        self.lru.remove(&tick);
        let entry = self.index.remove(&(hash, kind)).expect("lru/index in sync");
        *self.bytes_mut(kind) -= entry.bytes;
        Some((hash, kind, entry.bytes))
    }

    fn total_bytes(&self) -> u64 {
        self.result_bytes + self.model_bytes
    }

    fn count(&self, kind: ArtifactKind) -> usize {
        self.index.keys().filter(|(_, k)| *k == kind).count()
    }
}

/// The layered membership filter the probe paths consult before disk:
/// exact tail set (current segment), one xor filter per sealed segment,
/// and a base filter over everything older (rebuilt at compaction).
/// `may_contain` false means *definitely absent*.
#[derive(Debug)]
struct FilterSet {
    base: Option<XorFilter>,
    sealed: Vec<(u64, XorFilter)>,
    tail: HashSet<u64>,
    enabled: bool,
}

impl FilterSet {
    fn new() -> FilterSet {
        FilterSet {
            base: None,
            sealed: Vec::new(),
            tail: HashSet::new(),
            enabled: true,
        }
    }

    fn may_contain(&self, key: u64) -> bool {
        if !self.enabled {
            return true;
        }
        self.tail.contains(&key)
            || self.sealed.iter().any(|(_, f)| f.may_contain(key))
            || self.base.as_ref().is_some_and(|f| f.may_contain(key))
    }
}

fn build_base_filter(art: &ArtState) -> XorFilter {
    let keys: Vec<u64> = art
        .index
        .keys()
        .map(|(hash, kind)| filter_key(hash.as_bytes(), kind.salt()))
        .collect();
    XorFilter::build(&keys)
}

/// A sealed (no longer appended-to) WAL segment.
#[derive(Debug, Clone)]
struct SealedSegment {
    first_seq: u64,
    last_seq: u64,
}

struct DiskInner {
    table: RecordTable,
    /// The tail segment writer; `None` in read-only mode (appends
    /// become no-ops, like degraded mode).
    wal: Option<SegmentWriter>,
    sealed: Vec<SealedSegment>,
    /// Consecutive WAL write/flush failures; one success resets it,
    /// [`LOG_FAILURE_LIMIT`] in a row flips degraded mode.
    log_failures: u32,
    degraded: Arc<AtomicBool>,
}

/// Artifacts accepted while the disk was unwritable (or the store is
/// read-only). Serving stays correct from this overlay + the in-memory
/// job table; the entries die with the process, exactly like
/// [`crate::store::MemoryStore`] data.
#[derive(Debug, Default)]
struct ArtifactOverlay {
    results: HashMap<SpecHash, Arc<JobResult>>,
    models: HashMap<SpecHash, SavedModel>,
    named: HashMap<String, SavedModel>,
}

#[derive(Default)]
struct CompactSignal {
    wake: bool,
    shutdown: bool,
}

/// Everything the store and its background compactor share. The
/// compactor thread holds an `Arc<StoreCore>` (not the `DiskStore`), so
/// dropping the store can signal shutdown and join without a cycle.
///
/// Lock order: `inner` before `filters` (rotation seals the tail filter
/// while holding `inner`); `art` is taken alone; never take `inner` or
/// `art` while holding `filters`.
struct StoreCore {
    root: PathBuf,
    wal_dir: PathBuf,
    tuning: StoreTuning,
    read_only: bool,
    inner: Mutex<DiskInner>,
    art: Mutex<ArtState>,
    filters: Mutex<FilterSet>,
    overlay: Mutex<ArtifactOverlay>,
    /// Set once persistent I/O failure flips the store to read-only
    /// degraded mode; checked lock-free on every write path.
    degraded: Arc<AtomicBool>,
    compact_mx: Mutex<CompactSignal>,
    compact_cv: Condvar,
    /// Held (OS-level, advisory, exclusive) for the store's whole
    /// lifetime; the kernel releases it when the process dies, so a
    /// `kill -9` never leaves a stale lock behind. `None` for
    /// read-only opens, which must coexist with a live writer.
    _lock: Option<File>,
}

impl StoreCore {
    fn inner(&self) -> MutexGuard<'_, DiskInner> {
        self.inner.lock().expect("disk store lock poisoned")
    }

    fn art(&self) -> MutexGuard<'_, ArtState> {
        self.art.lock().expect("artifact index lock poisoned")
    }

    fn filters(&self) -> MutexGuard<'_, FilterSet> {
        self.filters.lock().expect("filter set lock poisoned")
    }

    fn overlay(&self) -> MutexGuard<'_, ArtifactOverlay> {
        self.overlay.lock().expect("artifact overlay lock poisoned")
    }

    fn result_path(&self, hash: &SpecHash) -> PathBuf {
        self.root
            .join("artifacts")
            .join("results")
            .join(format!("{hash}.result"))
    }

    fn model_path(&self, hash: &SpecHash) -> PathBuf {
        self.root
            .join("artifacts")
            .join("models")
            .join(format!("{hash}.model"))
    }

    fn artifact_path(&self, hash: &SpecHash, kind: ArtifactKind) -> PathBuf {
        match kind {
            ArtifactKind::Result => self.result_path(hash),
            ArtifactKind::Model => self.model_path(hash),
        }
    }

    fn named_model_path(&self, name: &str) -> PathBuf {
        self.root
            .join("artifacts")
            .join("models")
            .join("named")
            .join(format!("{name}.model"))
    }
}

/// The durable job + artifact store. One instance owns a state dir;
/// share it across the job and artifact roles with an `Arc`.
pub struct DiskStore {
    core: Arc<StoreCore>,
    recovered: Mutex<Vec<u64>>,
    compactor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("root", &self.core.root)
            .field("read_only", &self.core.read_only)
            .finish_non_exhaustive()
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        let handle = self.compactor.lock().ok().and_then(|mut g| g.take());
        if let Some(handle) = handle {
            if let Ok(mut sig) = self.core.compact_mx.lock() {
                sig.shutdown = true;
            }
            self.core.compact_cv.notify_all();
            let _ = handle.join();
        }
        if let Ok(mut inner) = self.core.inner.lock() {
            if let Some(wal) = inner.wal.as_mut() {
                let _ = wal.flush();
            }
        }
    }
}

impl DiskStore {
    /// Opens (creating if absent) the store at `root` with default
    /// tuning, replaying the snapshot + WAL segments, re-queueing
    /// interrupted jobs, and migrating v1 state dirs in place.
    ///
    /// # Errors
    ///
    /// [`MariohError::Io`] for filesystem failures,
    /// [`MariohError::Config`] for a state dir written by a newer
    /// format version, with corrupt records, or already locked by
    /// another process.
    pub fn open(root: impl Into<PathBuf>, retain: usize) -> Result<DiskStore, MariohError> {
        Self::open_tuned(root, StoreTuning::new(retain))
    }

    /// [`DiskStore::open`] with explicit [`StoreTuning`].
    ///
    /// # Errors
    ///
    /// As [`DiskStore::open`].
    pub fn open_tuned(
        root: impl Into<PathBuf>,
        tuning: StoreTuning,
    ) -> Result<DiskStore, MariohError> {
        Self::open_with_mode(root.into(), tuning, false)
    }

    /// Opens an existing store **read-only**, without taking the
    /// exclusive dir lock: no truncation, no migration, no snapshot or
    /// WAL writes, no compactor. Safe against a concurrent live writer
    /// because both WAL appends and artifact renames are
    /// prefix-ordered/atomic — a scan sees a consistent prefix, never a
    /// torn interior. Used by `marioh model export` against a running
    /// server's state dir.
    ///
    /// # Errors
    ///
    /// [`MariohError::Config`] when no store exists at `root` or the
    /// format version is unreadable by this build.
    pub fn open_read_only(root: impl Into<PathBuf>) -> Result<DiskStore, MariohError> {
        Self::open_with_mode(root.into(), StoreTuning::new(DEFAULT_RETAINED_JOBS), true)
    }

    fn open_with_mode(
        root: PathBuf,
        tuning: StoreTuning,
        read_only: bool,
    ) -> Result<DiskStore, MariohError> {
        let wal_dir = root.join("wal");
        if !read_only {
            fs::create_dir_all(root.join("artifacts").join("results"))?;
            fs::create_dir_all(root.join("artifacts").join("models").join("named"))?;
            fs::create_dir_all(&wal_dir)?;
        }

        let lock = if read_only {
            None
        } else {
            let lock = File::create(root.join("LOCK"))?;
            if let Err(e) = lock.try_lock() {
                return Err(corrupt(format!(
                    "state dir {} is in use by another process ({e}); stop it first \
                     (the lock is released automatically when that process exits)",
                    root.display()
                )));
            }
            Some(lock)
        };

        let version_path = root.join("VERSION");
        let mut migrate_from_v1 = false;
        match fs::read_to_string(&version_path) {
            Ok(existing) => {
                let existing = existing.trim();
                if existing == V1_TAG {
                    migrate_from_v1 = true;
                } else if existing != format_tag() {
                    return Err(corrupt(format!(
                        "state dir {} was written by {:?}; this build is {:?} — migrate it first \
                         (see crates/store/FORMATS.md)",
                        root.display(),
                        existing,
                        format_tag()
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if read_only {
                    return Err(corrupt(format!(
                        "no store at {} (read-only open does not create one)",
                        root.display()
                    )));
                }
                fs::write(&version_path, format!("{}\n", format_tag()))?;
            }
            Err(e) => return Err(MariohError::Io(e)),
        }

        let mut table = RecordTable::new(tuning.retain);
        table.set_record_budget(tuning.budget.map(|b| b / 8));
        let mut art = ArtState::default();

        let snapshot_path = root.join("jobs.snapshot");
        let snapshot_existed = snapshot_path.exists();
        let mut wal_seq = 0u64;
        if snapshot_existed {
            wal_seq = read_snapshot(&snapshot_path, &mut table, &mut art)?;
        }

        // A v1 `jobs.log` (including one left by a crash mid-migration)
        // replays once and is folded into the first v2 snapshot below.
        let legacy_log = root.join("jobs.log");
        let had_legacy_log = legacy_log.exists();
        if had_legacy_log {
            replay_legacy_log(&legacy_log, &mut table)?;
        }

        // Replay WAL segments in sequence order, skipping records the
        // snapshot watermark already covers and refusing any gap.
        let mut seg_seqs: Vec<u64> = match fs::read_dir(&wal_dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| parse_segment_file_name(e.file_name().to_str()?))
                .collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(MariohError::Io(e)),
        };
        seg_seqs.sort_unstable();
        let mut sealed: Vec<SealedSegment> = Vec::new();
        let mut expected_next = wal_seq + 1;
        for first_seq in seg_seqs {
            let path = wal_dir.join(segment_file_name(first_seq));
            let scan = match read_segment(&path, first_seq) {
                Ok(scan) => scan,
                // A concurrent compactor may retire a segment between
                // our dir listing and the read; for a read-only opener
                // that is expected churn (the snapshot covers it).
                Err(_) if read_only && !path.exists() => continue,
                Err(e) => return Err(corrupt(e)),
            };
            for (seq, payload) in &scan.records {
                if *seq <= wal_seq {
                    continue; // already folded into the snapshot
                }
                if *seq != expected_next {
                    return Err(corrupt(format!(
                        "wal is missing sequence {expected_next}: segment {} jumps to {seq}",
                        path.display()
                    )));
                }
                let text = std::str::from_utf8(payload)
                    .map_err(|_| corrupt("wal record payload is not UTF-8"))?;
                let record = Json::parse(text)
                    .map_err(|e| corrupt(format!("corrupt wal record at seq {seq}: {e}")))?;
                apply_wal_record(&mut table, &mut art, &record)?;
                expected_next += 1;
            }
            if scan.records.is_empty() {
                // An empty shell (clean or torn before the first flush)
                // carries nothing; a writer clears it out of the way.
                if !read_only {
                    let _ = fs::remove_file(&path);
                    let _ = fs::remove_file(wal_dir.join(filter_file_name(first_seq)));
                }
                continue;
            }
            if scan.torn && !read_only {
                // Truncate the torn debris so this segment reads clean
                // once it is no longer the newest file.
                let valid_len: u64 = SEGMENT_HEADER_LEN as u64
                    + scan
                        .records
                        .iter()
                        .map(|(_, p)| (FRAME_OVERHEAD + p.len()) as u64)
                        .sum::<u64>();
                let file = fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid_len)?;
                file.sync_all()?;
            }
            sealed.push(SealedSegment {
                first_seq,
                last_seq: first_seq + scan.records.len() as u64 - 1,
            });
        }

        table.requeue_running();
        let recovered = table.queued_ids();

        if !read_only && (migrate_from_v1 || had_legacy_log || !snapshot_existed) {
            if migrate_from_v1 || had_legacy_log {
                seed_art_index_from_disk(&root, &mut art);
            }
            write_snapshot(&snapshot_path, &table, &art, expected_next - 1)?;
            fs::write(&version_path, format!("{}\n", format_tag()))?;
            if had_legacy_log {
                fs::remove_file(&legacy_log)?;
            }
        }

        let degraded = Arc::new(AtomicBool::new(false));
        let wal = if read_only {
            None
        } else {
            Some(SegmentWriter::create(&wal_dir, expected_next)?)
        };

        let mut filters = FilterSet::new();
        filters.base = Some(build_base_filter(&art));

        marioh_obs::global()
            .gauge("marioh_store_segments")
            .set(sealed.len() as u64 + 1);

        let core = Arc::new(StoreCore {
            root,
            wal_dir,
            read_only,
            inner: Mutex::new(DiskInner {
                table,
                wal,
                sealed,
                log_failures: 0,
                degraded: Arc::clone(&degraded),
            }),
            art: Mutex::new(art),
            filters: Mutex::new(filters),
            overlay: Mutex::new(ArtifactOverlay::default()),
            degraded,
            compact_mx: Mutex::new(CompactSignal::default()),
            compact_cv: Condvar::new(),
            _lock: lock,
            tuning,
        });

        let store = DiskStore {
            core: Arc::clone(&core),
            recovered: Mutex::new(recovered),
            compactor: Mutex::new(None),
        };
        if !read_only && core.tuning.auto_compact {
            let thread_core = Arc::clone(&core);
            let handle = std::thread::Builder::new()
                .name("marioh-store-compact".into())
                .spawn(move || compactor_loop(thread_core))
                .map_err(MariohError::Io)?;
            *store.compactor.lock().expect("compactor handle lock") = Some(handle);
        }
        Ok(store)
    }

    fn is_degraded(&self) -> bool {
        self.core.degraded.load(Ordering::Relaxed)
    }

    /// The state directory this store owns.
    pub fn root(&self) -> &Path {
        &self.core.root
    }

    /// Runs one compaction synchronously: snapshot everything applied
    /// so far (with the WAL watermark), retire fully-covered sealed
    /// segments, and rebuild the base filter. The background compactor
    /// calls this; tests and benches call it directly for determinism.
    ///
    /// # Errors
    ///
    /// [`MariohError::Io`] / [`MariohError::Config`] when the snapshot
    /// cannot be written; the WAL is left untouched in that case, so
    /// nothing is lost.
    pub fn compact_now(&self) -> Result<(), MariohError> {
        compact(&self.core)
    }

    /// Turns the membership filter on or off at runtime (benches
    /// measure the unfiltered floor this way). Disabled means every
    /// probe goes to disk, exactly the v1 behavior.
    pub fn set_filter_enabled(&self, enabled: bool) {
        self.core.filters().enabled = enabled;
    }

    /// Sealed (rotation-completed, not yet compacted) segment count.
    pub fn sealed_segments(&self) -> usize {
        self.core.inner().sealed.len()
    }
}

fn compactor_loop(core: Arc<StoreCore>) {
    loop {
        {
            let mut sig = core.compact_mx.lock().expect("compact signal lock");
            while !sig.wake && !sig.shutdown {
                sig = core.compact_cv.wait(sig).expect("compact signal wait");
            }
            if sig.shutdown {
                return;
            }
            sig.wake = false;
        }
        if let Err(e) = compact(&core) {
            eprintln!("marioh-store: compaction failed (will retry at next seal): {e}");
        }
    }
}

fn signal_compactor(core: &StoreCore) {
    if let Ok(mut sig) = core.compact_mx.lock() {
        sig.wake = true;
    }
    core.compact_cv.notify_all();
}

/// One `store.compact` fault-site operation. The site is hit twice per
/// compaction — once at entry, once between the snapshot rename and
/// segment retirement — so `store.compact:exit@nth:2` scripts a crash
/// at the protocol's most delicate interleaving.
fn compact_fault_op() -> Result<(), MariohError> {
    match marioh_fault::hit("store.compact") {
        Some(marioh_fault::Action::Exit) => std::process::exit(marioh_fault::EXIT_CODE),
        Some(marioh_fault::Action::Err) => {
            Err(MariohError::Io(marioh_fault::io_error("store.compact")))
        }
        Some(marioh_fault::Action::Stall(ms)) => {
            marioh_fault::stall(ms);
            Ok(())
        }
        _ => Ok(()),
    }
}

fn compact(core: &StoreCore) -> Result<(), MariohError> {
    if core.read_only || core.degraded.load(Ordering::Relaxed) {
        return Ok(());
    }
    compact_fault_op()?;
    let t0 = std::time::Instant::now();

    // Clone `inner` first, then `art`: an artifact put updates the
    // index *before* appending its WAL record, so every artifact whose
    // record seq is <= the watermark read here is already in the index
    // when we clone it below. (Extras in the art clone with seq > the
    // watermark are re-applied idempotently at replay.)
    let (upto, table, sealed_snapshot) = {
        let mut inner = core.inner();
        if let Some(wal) = inner.wal.as_mut() {
            if let Err(e) = wal.sync() {
                return Err(MariohError::Io(e));
            }
        }
        let upto = inner.wal.as_ref().map_or(0, |w| w.next_seq() - 1);
        (upto, inner.table.clone(), inner.sealed.clone())
    };
    let art = core.art().clone();

    write_snapshot(&core.root.join("jobs.snapshot"), &table, &art, upto)?;
    compact_fault_op()?;

    // The snapshot now covers every record <= upto, so segments wholly
    // below the watermark are dead weight; retire them and their
    // filters.
    let retired: Vec<u64> = sealed_snapshot
        .iter()
        .filter(|s| s.last_seq <= upto)
        .map(|s| s.first_seq)
        .collect();
    for first_seq in &retired {
        let _ = fs::remove_file(core.wal_dir.join(segment_file_name(*first_seq)));
        let _ = fs::remove_file(core.wal_dir.join(filter_file_name(*first_seq)));
    }
    let live_segments = {
        let mut inner = core.inner();
        inner.sealed.retain(|s| s.last_seq > upto);
        inner.sealed.len() + 1
    };

    let new_base = build_base_filter(&art);
    let base_tmp = core.wal_dir.join("base.filter.tmp");
    if fs::write(&base_tmp, new_base.to_bytes()).is_ok() {
        let _ = fs::rename(&base_tmp, core.wal_dir.join("base.filter"));
    }
    {
        let mut filters = core.filters();
        filters.base = Some(new_base);
        filters.sealed.retain(|(first, _)| !retired.contains(first));
    }

    let obs = marioh_obs::global();
    obs.counter("marioh_store_compactions_total").inc();
    obs.histogram("marioh_store_compaction_seconds")
        .observe(t0.elapsed());
    obs.gauge("marioh_store_segments").set(live_segments as u64);
    Ok(())
}

/// A tmp path unique to this (process, call): concurrent writers of the
/// same artifact — two workers finishing identical specs — must not
/// truncate each other's half-written tmp before the atomic rename.
fn unique_tmp(path: &Path) -> PathBuf {
    use std::sync::atomic::AtomicU64;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}-{n}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Flips the store to read-only degraded mode (idempotent): WAL and
/// artifact writes stop touching the disk, serving continues from the
/// in-memory table + artifact overlay, and `/healthz` reports it.
fn enter_degraded(degraded: &AtomicBool, why: &str) {
    if !degraded.swap(true, Ordering::Relaxed) {
        eprintln!("marioh-store: persistent I/O failure, entering read-only degraded mode: {why}");
        marioh_obs::global().gauge("marioh_store_degraded").set(1);
    }
}

/// Records the outcome of one WAL write/flush: a success resets the
/// consecutive-failure run, [`LOG_FAILURE_LIMIT`] failures in a row
/// flip degraded mode. A lone failure must not take the serving path
/// down; the in-memory state stays authoritative and the next open
/// replays what did land.
fn note_log_outcome(inner: &mut DiskInner, result: std::io::Result<()>) {
    match result {
        Ok(()) => inner.log_failures = 0,
        Err(e) => {
            inner.log_failures += 1;
            if inner.log_failures >= LOG_FAILURE_LIMIT {
                enter_degraded(&inner.degraded, &format!("wal write failed: {e}"));
            }
        }
    }
}

/// Buffers one WAL record without flushing — callers pair it with
/// [`commit_log`], so a batch of appends pays one flush (+ fsync)
/// total. No-op in degraded and read-only modes.
fn buffer_record(inner: &mut DiskInner, record: &Json) {
    if inner.degraded.load(Ordering::Relaxed) {
        return; // read-only: the disk already proved unwritable
    }
    let Some(wal) = inner.wal.as_mut() else {
        return; // read-only open: in-memory only
    };
    let payload = record.to_string();
    let result = match marioh_fault::hit("store.append") {
        Some(marioh_fault::Action::Err) => Err(marioh_fault::io_error("store.append")),
        Some(marioh_fault::Action::Stall(ms)) => {
            marioh_fault::stall(ms);
            wal.append(payload.as_bytes()).map(|_| ())
        }
        _ => wal.append(payload.as_bytes()).map(|_| ()),
    };
    note_log_outcome(inner, result);
}

/// Flushes everything buffered since the last commit; `durable` adds an
/// fsync so acknowledged records survive power loss, not just a crash.
fn commit_log(inner: &mut DiskInner, durable: bool) {
    if inner.degraded.load(Ordering::Relaxed) {
        return;
    }
    let Some(wal) = inner.wal.as_mut() else {
        return;
    };
    let flushed = wal.flush();
    if durable {
        let t0 = std::time::Instant::now();
        let synced = match marioh_fault::hit("store.fsync") {
            Some(marioh_fault::Action::Err) => Err(marioh_fault::io_error("store.fsync")),
            Some(marioh_fault::Action::Stall(ms)) => {
                marioh_fault::stall(ms);
                wal.sync()
            }
            _ => wal.sync(),
        };
        let obs = marioh_obs::global();
        obs.counter("marioh_store_fsync_total").inc();
        obs.histogram("marioh_store_fsync_seconds")
            .observe(t0.elapsed());
        note_log_outcome(inner, flushed.and(synced));
    } else {
        note_log_outcome(inner, flushed);
    }
}

/// Rotates the tail segment once it crosses the byte cap: fsync it,
/// seal its filter (persisted best-effort next to it), and start a
/// fresh segment at the next sequence number. Called with `inner` held;
/// takes `filters` inside (the one permitted nesting).
fn maybe_rotate(core: &StoreCore, inner: &mut DiskInner) {
    if inner.degraded.load(Ordering::Relaxed) {
        return;
    }
    let Some(wal) = inner.wal.as_mut() else {
        return;
    };
    if wal.bytes() < core.tuning.segment_bytes || !wal.dirty() {
        return;
    }
    if let Err(e) = wal.sync() {
        note_log_outcome(inner, Err(e));
        return;
    }
    let first_seq = wal.first_seq();
    let last_seq = wal.next_seq() - 1;
    let next_seq = wal.next_seq();

    let sealed_filter = {
        let mut filters = core.filters();
        let keys: Vec<u64> = filters.tail.iter().copied().collect();
        let built = XorFilter::build(&keys);
        filters.tail.clear();
        filters.sealed.push((first_seq, built.clone()));
        built
    };
    // Best-effort persistence: a missing or torn filter file only costs
    // a rebuild from the index at the next open.
    let filter_path = core.wal_dir.join(filter_file_name(first_seq));
    let _ = fs::write(&filter_path, sealed_filter.to_bytes());

    inner.sealed.push(SealedSegment {
        first_seq,
        last_seq,
    });
    match SegmentWriter::create(&core.wal_dir, next_seq) {
        Ok(writer) => inner.wal = Some(writer),
        Err(e) => {
            enter_degraded(&inner.degraded, &format!("wal rotation failed: {e}"));
            return;
        }
    }
    marioh_obs::global()
        .gauge("marioh_store_segments")
        .set(inner.sealed.len() as u64 + 1);
    if inner.sealed.len() >= core.tuning.compact_sealed {
        signal_compactor(core);
    }
}

fn append(core: &StoreCore, inner: &mut DiskInner, record: &Json, durable: bool) {
    buffer_record(inner, record);
    commit_log(inner, durable);
    maybe_rotate(core, inner);
}

/// Runs one artifact write with bounded retry: a transient failure
/// (real, or injected at the `store.artifact` site) backs off with
/// doubling sleeps and retries up to [`ARTIFACT_WRITE_ATTEMPTS`] total
/// attempts; the final error is returned for the caller to treat as
/// persistent. Each attempt counts one `store.artifact` operation.
fn artifact_write_retry(
    mut attempt: impl FnMut() -> Result<(), MariohError>,
) -> Result<(), MariohError> {
    let mut backoff = ARTIFACT_RETRY_BACKOFF;
    let mut tries = 0;
    loop {
        let result = match marioh_fault::hit("store.artifact") {
            Some(marioh_fault::Action::Err) => {
                Err(MariohError::Io(marioh_fault::io_error("store.artifact")))
            }
            Some(marioh_fault::Action::Stall(ms)) => {
                marioh_fault::stall(ms);
                attempt()
            }
            _ => attempt(),
        };
        tries += 1;
        match result {
            Ok(()) => return Ok(()),
            Err(e) if tries >= ARTIFACT_WRITE_ATTEMPTS => return Err(e),
            Err(_) => {
                marioh_obs::global()
                    .counter("marioh_store_artifact_retries_total")
                    .inc();
                std::thread::sleep(backoff);
                backoff *= 2;
            }
        }
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Registers a freshly landed artifact: index + tail filter first, then
/// the WAL record (that order is what makes the compactor's
/// inner-then-art clone sequence lossless), then budget enforcement.
fn note_artifact(core: &StoreCore, hash: &SpecHash, kind: ArtifactKind, bytes: u64) {
    core.art().insert(*hash, kind, bytes);
    core.filters()
        .tail
        .insert(filter_key(hash.as_bytes(), kind.salt()));
    let record = obj(vec![
        ("t", Json::str("artifact")),
        ("kind", Json::str(kind.tag())),
        ("hash", Json::str(hash.to_hex())),
        ("bytes", Json::num(bytes as f64)),
    ]);
    {
        let mut inner = core.inner();
        append(core, &mut inner, &record, false);
    }
    enforce_budget(core);
}

/// Evicts least-recently-used artifacts while the byte budget is
/// exceeded. The file is deleted *before* the evict record is logged:
/// the worst crash leaves a stale index entry (one wasted probe, healed
/// lazily), never a resurrected artifact.
fn enforce_budget(core: &StoreCore) {
    let Some(budget) = core.tuning.budget else {
        return;
    };
    loop {
        let victim = {
            let mut art = core.art();
            if art.total_bytes() <= budget {
                return;
            }
            art.pop_oldest()
        };
        let Some((hash, kind, bytes)) = victim else {
            return;
        };
        let _ = fs::remove_file(core.artifact_path(&hash, kind));
        let obs = marioh_obs::global();
        obs.counter_with("marioh_store_evictions_total", &[("kind", kind.tag())])
            .inc();
        obs.counter_with("marioh_store_evicted_bytes_total", &[("kind", kind.tag())])
            .add(bytes);
        let record = obj(vec![
            ("t", Json::str("evict")),
            ("kind", Json::str(kind.tag())),
            ("hash", Json::str(hash.to_hex())),
        ]);
        let mut inner = core.inner();
        append(core, &mut inner, &record, false);
    }
}

/// Consults the filter layer for one probe, emitting the filter metric
/// for the outcome. Returns `false` when the artifact is definitively
/// absent.
fn filter_admits(core: &StoreCore, hash: &SpecHash, kind: ArtifactKind) -> bool {
    let key = filter_key(hash.as_bytes(), kind.salt());
    let admitted = core.filters().may_contain(key);
    let name = if admitted {
        "marioh_store_filter_passed_total"
    } else {
        "marioh_store_filter_negative_total"
    };
    marioh_obs::global()
        .counter_with(name, &[("kind", kind.tag())])
        .inc();
    admitted
}

/// Records a filter false positive: the filter said maybe, the disk
/// said no. Drops any stale index entry (e.g. an eviction whose WAL
/// record was lost to a crash) so the next rebuild forgets it.
fn note_filter_fp(core: &StoreCore, hash: &SpecHash, kind: ArtifactKind) {
    marioh_obs::global()
        .counter_with("marioh_store_filter_fp_total", &[("kind", kind.tag())])
        .inc();
    core.art().remove(*hash, kind);
}

impl JobStore for DiskStore {
    fn submit(&self, spec: &JobSpec, hash: &SpecHash) -> u64 {
        let mut inner = self.core.inner();
        let id = inner.table.submit(spec.clone(), *hash);
        let record = obj(vec![
            ("t", Json::str("submit")),
            ("id", Json::num(id as f64)),
            ("hash", Json::str(hash.to_hex())),
            ("spec", spec.to_json()),
        ]);
        append(&self.core, &mut inner, &record, true);
        id
    }

    fn start(&self, id: u64) -> Option<JobSpec> {
        let mut inner = self.core.inner();
        let spec = inner.table.start(id)?;
        let record = obj(vec![
            ("t", Json::str("start")),
            ("id", Json::num(id as f64)),
        ]);
        append(&self.core, &mut inner, &record, false);
        Some(spec)
    }

    fn transition(&self, id: u64, t: Transition) -> Option<JobStatus> {
        let mut inner = self.core.inner();
        let (status, wrote) = transition_locked(&mut inner, id, t);
        if let Some(durable) = wrote {
            commit_log(&mut inner, durable);
            maybe_rotate(&self.core, &mut inner);
        }
        status
    }

    fn transition_batch(&self, items: Vec<(u64, Transition)>) -> Vec<Option<JobStatus>> {
        let mut inner = self.core.inner();
        let mut wrote = false;
        let mut durable = false;
        let statuses = items
            .into_iter()
            .map(|(id, t)| {
                let (status, record) = transition_locked(&mut inner, id, t);
                if let Some(d) = record {
                    wrote = true;
                    durable |= d;
                }
                status
            })
            .collect();
        // One flush (and at most one fsync) for the whole drain, instead
        // of one per record.
        if wrote {
            commit_log(&mut inner, durable);
            maybe_rotate(&self.core, &mut inner);
        }
        statuses
    }

    fn view(&self, id: u64) -> Option<JobView> {
        self.core.inner().table.view(id)
    }

    fn result(&self, id: u64) -> Option<(JobStatus, Option<Arc<JobResult>>)> {
        let mut inner = self.core.inner();
        let record = inner.table.get(id)?;
        let (status, hash) = (record.status, record.hash);
        if status == JobStatus::Done && record.result.is_none() {
            if let Some(arc) = self.core.overlay().results.get(&hash).cloned() {
                if let Some(record) = inner.table.get_mut(id) {
                    record.result = Some(Arc::clone(&arc));
                }
                return Some((status, Some(arc)));
            }
            // Replayed done record: load the artifact lazily, memoize.
            // This read is keyed by a known done record — not a
            // speculative cache probe — so it bypasses the filter.
            if let Ok(result) = read_result_file(&self.core.result_path(&hash)) {
                let arc = Arc::new(result);
                if let Some(record) = inner.table.get_mut(id) {
                    record.result = Some(Arc::clone(&arc));
                }
                return Some((status, Some(arc)));
            }
            return Some((status, None));
        }
        let result = inner.table.get(id).and_then(|r| r.result.clone());
        Some((status, result))
    }

    fn spec_hash(&self, id: u64) -> Option<SpecHash> {
        self.core.inner().table.get(id).map(|r| r.hash)
    }

    fn scan(&self) -> Vec<JobView> {
        self.core.inner().table.scan()
    }

    fn counters(&self) -> StoreCounters {
        self.core.inner().table.counters()
    }

    fn submit_batch(&self, items: &[(JobSpec, SpecHash)]) -> Vec<u64> {
        if items.is_empty() {
            return Vec::new();
        }
        let mut inner = self.core.inner();
        let ids = items
            .iter()
            .map(|(spec, hash)| {
                let id = inner.table.submit(spec.clone(), *hash);
                let record = obj(vec![
                    ("t", Json::str("submit")),
                    ("id", Json::num(id as f64)),
                    ("hash", Json::str(hash.to_hex())),
                    ("spec", spec.to_json()),
                ]);
                buffer_record(&mut inner, &record);
                id
            })
            .collect();
        // One flush + fsync for the whole batch.
        commit_log(&mut inner, true);
        maybe_rotate(&self.core, &mut inner);
        ids
    }

    fn recover_queued(&self) -> Vec<u64> {
        std::mem::take(&mut *self.recovered.lock().expect("recovered lock poisoned"))
    }

    fn kind(&self) -> &'static str {
        "disk"
    }

    fn degraded(&self) -> bool {
        self.is_degraded()
    }
}

/// Applies one transition against the locked inner state, buffering (but
/// not committing) its WAL record. Returns the resulting status and
/// `Some(durable)` when a record was buffered — the caller owns the
/// [`commit_log`] so batches pay one flush + fsync total.
fn transition_locked(
    inner: &mut DiskInner,
    id: u64,
    t: Transition,
) -> (Option<JobStatus>, Option<bool>) {
    let Some(before) = inner.table.get(id).map(|r| r.status) else {
        return (None, None);
    };
    let record = if before.is_terminal() {
        None // immutable; nothing to log
    } else {
        match &t {
            Transition::Start => Some((
                obj(vec![
                    ("t", Json::str("start")),
                    ("id", Json::num(id as f64)),
                ]),
                false,
            )),
            Transition::Progress { rounds, committed } => {
                let mut pairs = vec![("t", Json::str("progress")), ("id", Json::num(id as f64))];
                if let Some(rounds) = rounds {
                    pairs.push(("rounds", Json::num(*rounds as f64)));
                }
                if let Some(committed) = committed {
                    pairs.push(("committed", Json::num(*committed as f64)));
                }
                Some((obj(pairs), false))
            }
            Transition::Note(msg) => Some((
                obj(vec![
                    ("t", Json::str("note")),
                    ("id", Json::num(id as f64)),
                    ("error", Json::str(msg.clone())),
                ]),
                false,
            )),
            Transition::Done { cached, .. } => Some((
                obj(vec![
                    ("t", Json::str("done")),
                    ("id", Json::num(id as f64)),
                    ("cached", Json::Bool(*cached)),
                ]),
                true,
            )),
            Transition::Failed(msg) => Some((
                obj(vec![
                    ("t", Json::str("failed")),
                    ("id", Json::num(id as f64)),
                    ("error", Json::str(msg.clone())),
                ]),
                true,
            )),
            Transition::Cancelled => Some((
                obj(vec![
                    ("t", Json::str("cancelled")),
                    ("id", Json::num(id as f64)),
                ]),
                true,
            )),
        }
    };
    let status = inner.table.transition(id, t);
    match record {
        Some((record, durable)) => {
            buffer_record(inner, &record);
            (status, Some(durable))
        }
        None => (status, None),
    }
}

impl ArtifactStore for DiskStore {
    fn put_result(&self, hash: &SpecHash, result: &Arc<JobResult>) -> Result<(), MariohError> {
        if self.is_degraded() || self.core.read_only {
            self.core
                .overlay()
                .results
                .insert(*hash, Arc::clone(result));
            return Ok(());
        }
        let path = self.core.result_path(hash);
        if path.exists() {
            // Identical content by construction; make sure the index
            // knows it (heals an orphan left by a crash between the
            // rename and the WAL record).
            if !self
                .core
                .art()
                .index
                .contains_key(&(*hash, ArtifactKind::Result))
            {
                if let Ok(meta) = fs::metadata(&path) {
                    note_artifact(&self.core, hash, ArtifactKind::Result, meta.len());
                }
            }
            return Ok(());
        }
        let encoded = encode_result_container(result);
        crate::store::record_artifact_bytes("result", encoded.len() as u64);
        let written = artifact_write_retry(|| {
            let tmp = unique_tmp(&path);
            fs::write(&tmp, &encoded)?;
            fs::rename(&tmp, &path)?;
            Ok(())
        });
        match written {
            Ok(()) => note_artifact(&self.core, hash, ArtifactKind::Result, encoded.len() as u64),
            Err(e) => {
                enter_degraded(
                    &self.core.degraded,
                    &format!("result artifact write failed: {e}"),
                );
                self.core
                    .overlay()
                    .results
                    .insert(*hash, Arc::clone(result));
            }
        }
        Ok(())
    }

    fn get_result(&self, hash: &SpecHash) -> Option<Arc<JobResult>> {
        if let Some(found) = self.core.overlay().results.get(hash).cloned() {
            crate::store::record_cache_probe("result", true);
            return Some(found);
        }
        if !filter_admits(&self.core, hash, ArtifactKind::Result) {
            // Definitive negative: the probe never touches disk.
            crate::store::record_cache_probe("result", false);
            return None;
        }
        match read_result_file(&self.core.result_path(hash)) {
            Ok(result) => {
                crate::store::record_cache_probe("result", true);
                self.core.art().touch(*hash, ArtifactKind::Result);
                Some(Arc::new(result))
            }
            Err(_) => {
                note_filter_fp(&self.core, hash, ArtifactKind::Result);
                crate::store::record_cache_probe("result", false);
                None
            }
        }
    }

    fn contains_result(&self, hash: &SpecHash) -> bool {
        if self.core.overlay().results.contains_key(hash) {
            crate::store::record_cache_probe("result", true);
            return true;
        }
        if !filter_admits(&self.core, hash, ArtifactKind::Result) {
            crate::store::record_cache_probe("result", false);
            return false;
        }
        let hit = self.core.result_path(hash).exists();
        if !hit {
            note_filter_fp(&self.core, hash, ArtifactKind::Result);
        }
        crate::store::record_cache_probe("result", hit);
        hit
    }

    fn put_model(&self, hash: &SpecHash, model: &SavedModel) -> Result<(), MariohError> {
        if self.is_degraded() || self.core.read_only {
            self.core.overlay().models.insert(*hash, model.clone());
            return Ok(());
        }
        let path = self.core.model_path(hash);
        if path.exists() {
            if !self
                .core
                .art()
                .index
                .contains_key(&(*hash, ArtifactKind::Model))
            {
                if let Ok(meta) = fs::metadata(&path) {
                    note_artifact(&self.core, hash, ArtifactKind::Model, meta.len());
                }
            }
            return Ok(());
        }
        let encoded = encode_model_container(model)?;
        crate::store::record_artifact_bytes("model", encoded.len() as u64);
        let written = artifact_write_retry(|| {
            let tmp = unique_tmp(&path);
            fs::write(&tmp, &encoded)?;
            fs::rename(&tmp, &path)?;
            Ok(())
        });
        match written {
            Ok(()) => note_artifact(&self.core, hash, ArtifactKind::Model, encoded.len() as u64),
            Err(e) => {
                enter_degraded(
                    &self.core.degraded,
                    &format!("model artifact write failed: {e}"),
                );
                self.core.overlay().models.insert(*hash, model.clone());
            }
        }
        Ok(())
    }

    fn get_model(&self, hash: &SpecHash) -> Option<SavedModel> {
        if let Some(found) = self.core.overlay().models.get(hash).cloned() {
            crate::store::record_cache_probe("model", true);
            return Some(found);
        }
        if !filter_admits(&self.core, hash, ArtifactKind::Model) {
            crate::store::record_cache_probe("model", false);
            return None;
        }
        match read_model_file(&self.core.model_path(hash)) {
            Ok(model) => {
                crate::store::record_cache_probe("model", true);
                self.core.art().touch(*hash, ArtifactKind::Model);
                Some(model)
            }
            Err(_) => {
                note_filter_fp(&self.core, hash, ArtifactKind::Model);
                crate::store::record_cache_probe("model", false);
                None
            }
        }
    }

    fn put_named_model(&self, name: &str, model: &SavedModel) -> Result<(), MariohError> {
        crate::spec::validate_model_name(name).map_err(MariohError::Config)?;
        if self.is_degraded() || self.core.read_only {
            self.core
                .overlay()
                .named
                .insert(name.to_owned(), model.clone());
            return Ok(());
        }
        let path = self.core.named_model_path(name);
        let encoded = encode_model_container(model)?;
        let written = artifact_write_retry(|| {
            let tmp = unique_tmp(&path);
            fs::write(&tmp, &encoded)?;
            fs::rename(&tmp, &path)?;
            Ok(())
        });
        if let Err(e) = written {
            enter_degraded(
                &self.core.degraded,
                &format!("named model write failed: {e}"),
            );
            self.core
                .overlay()
                .named
                .insert(name.to_owned(), model.clone());
        }
        Ok(())
    }

    fn get_named_model(&self, name: &str) -> Option<SavedModel> {
        crate::spec::validate_model_name(name).ok()?;
        if let Some(found) = self.core.overlay().named.get(name).cloned() {
            return Some(found);
        }
        read_model_file(&self.core.named_model_path(name)).ok()
    }

    fn list_models(&self) -> Vec<ModelEntry> {
        let models_dir = self.core.root.join("artifacts").join("models");
        let mut named_files = list_model_files(&models_dir.join("named"));
        {
            // Models accepted while degraded live only in the overlay;
            // listing must still see them.
            let overlay = self.core.overlay();
            for (name, model) in &overlay.named {
                if !named_files.iter().any(|(stem, _)| stem == name) {
                    named_files.push((name.clone(), model.model.feature_mode().tag().to_owned()));
                }
            }
        }
        let mut named: Vec<ModelEntry> = named_files
            .into_iter()
            .map(|(stem, mode)| ModelEntry {
                name: Some(stem),
                hash: None,
                mode,
            })
            .collect();
        named.sort_by(|a, b| a.name.cmp(&b.name));
        let mut hashed: Vec<ModelEntry> = list_model_files(&models_dir)
            .into_iter()
            .filter_map(|(stem, mode)| {
                SpecHash::from_hex(&stem).map(|h| ModelEntry {
                    name: None,
                    hash: Some(h),
                    mode,
                })
            })
            .collect();
        hashed.sort_by_key(|e| e.hash);
        named.extend(hashed);
        named
    }

    fn artifact_stats(&self) -> ArtifactStats {
        // Named models sit outside the budgeted index; count them (and
        // their encoded bytes) from the directory.
        let named_dir = self
            .core
            .root
            .join("artifacts")
            .join("models")
            .join("named");
        let (named_count, named_bytes) = fs::read_dir(&named_dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "model"))
                    .fold((0usize, 0u64), |(n, b), e| {
                        (n + 1, b + e.metadata().map(|m| m.len()).unwrap_or(0))
                    })
            })
            .unwrap_or((0, 0));
        let art = self.core.art();
        let overlay = self.core.overlay();
        ArtifactStats {
            results: art.count(ArtifactKind::Result) + overlay.results.len(),
            models: art.count(ArtifactKind::Model)
                + named_count
                + overlay.models.len()
                + overlay.named.len(),
            result_bytes: art.result_bytes,
            model_bytes: art.model_bytes + named_bytes,
        }
    }
}

/// `(file stem, feature-mode tag)` of every `.model` file directly in
/// `dir` (not recursing into `named/`).
fn list_model_files(dir: &Path) -> Vec<(String, String)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
        .filter_map(|e| {
            let path = e.path();
            if path.extension()? != "model" {
                return None;
            }
            let stem = path.file_stem()?.to_str()?.to_owned();
            let mode = read_model_file(&path)
                .ok()
                .map(|m| m.model.feature_mode().tag().to_owned())?;
            Some((stem, mode))
        })
        .collect()
}

// --- artifact containers -------------------------------------------------

/// Encodes a result artifact's **logical** bytes (`marioh-result vN`
/// header, `jaccard_bits`, hypergraph text). The wire protocol ships
/// these same bytes in `Result` frames, so a sharded run's merge path
/// persists byte-for-byte what a single-process run would have written;
/// on disk they are wrapped in a compressed container
/// (`marioh-result-z`) that decompresses back to exactly this output.
pub fn encode_result(result: &JobResult) -> Vec<u8> {
    let mut out = Vec::new();
    // Writes into a Vec cannot fail.
    let _ = writeln!(out, "marioh-result v{STORE_FORMAT_VERSION}");
    let _ = writeln!(out, "jaccard_bits {}", result.jaccard.to_bits());
    let _ = hio::write_hypergraph(&result.reconstruction, &mut out);
    out
}

/// Decodes a result artifact produced by [`encode_result`], or read
/// back from a store's `artifacts/results/` directory (either the
/// compressed v2 container or a plain v1 file).
///
/// # Errors
///
/// [`MariohError::Config`] for malformed or version-mismatched bytes.
pub fn decode_result(bytes: &[u8]) -> Result<JobResult, MariohError> {
    if let Some(body) = strip_container(bytes, RESULT_CONTAINER) {
        let plain = compress::decompress(body).map_err(corrupt)?;
        return read_result(&plain[..]);
    }
    read_result(bytes)
}

fn strip_container<'a>(data: &'a [u8], header: &str) -> Option<&'a [u8]> {
    let prefix = data.strip_prefix(header.as_bytes())?;
    prefix.strip_prefix(b"\n")
}

fn encode_result_container(result: &JobResult) -> Vec<u8> {
    let plain = encode_result(result);
    let mut out = Vec::with_capacity(plain.len() / 2 + RESULT_CONTAINER.len() + 8);
    out.extend_from_slice(RESULT_CONTAINER.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&compress::compress(&plain));
    out
}

fn encode_model_container(model: &SavedModel) -> Result<Vec<u8>, MariohError> {
    let mut plain = Vec::new();
    model.write_to(&mut plain)?;
    let mut out = Vec::with_capacity(plain.len() / 2 + MODEL_CONTAINER.len() + 8);
    out.extend_from_slice(MODEL_CONTAINER.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&compress::compress(&plain));
    Ok(out)
}

fn read_result_file(path: &Path) -> Result<JobResult, MariohError> {
    decode_result(&fs::read(path)?)
}

fn read_model_file(path: &Path) -> Result<SavedModel, MariohError> {
    let data = fs::read(path)?;
    if let Some(body) = strip_container(&data, MODEL_CONTAINER) {
        let plain = compress::decompress(body).map_err(corrupt)?;
        return SavedModel::read_from(&plain[..]);
    }
    SavedModel::read_from(&data[..])
}

fn read_result(mut input: impl BufRead) -> Result<JobResult, MariohError> {
    let mut line = String::new();
    input.read_line(&mut line)?;
    let header = line.trim();
    if header
        .strip_prefix("marioh-result v")
        .and_then(|v| v.parse::<u32>().ok())
        .is_none_or(|v| v == 0 || v > STORE_FORMAT_VERSION)
    {
        return Err(corrupt(format!("not a marioh result file: {header:?}")));
    }
    line.clear();
    input.read_line(&mut line)?;
    let jaccard = line
        .trim()
        .strip_prefix("jaccard_bits ")
        .and_then(|b| b.parse::<u64>().ok())
        .map(f64::from_bits)
        .ok_or_else(|| corrupt("malformed jaccard line in result file"))?;
    let reconstruction = hio::read_hypergraph(input).map_err(MariohError::from)?;
    Ok(JobResult {
        reconstruction,
        jaccard,
    })
}

// --- snapshot + replay ---------------------------------------------------

fn get_u64(v: &Json, key: &str) -> Result<u64, MariohError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt(format!("store record is missing integer field {key:?}")))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, MariohError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt(format!("store record is missing string field {key:?}")))
}

fn get_hash(v: &Json) -> Result<SpecHash, MariohError> {
    SpecHash::from_hex(get_str(v, "hash")?)
        .ok_or_else(|| corrupt("store record has a malformed spec hash"))
}

fn get_spec(v: &Json) -> Result<JobSpec, MariohError> {
    let spec = v
        .get("spec")
        .ok_or_else(|| corrupt("store record is missing its spec"))?;
    JobSpec::from_json(spec).map_err(|e| corrupt(format!("store record has an invalid spec: {e}")))
}

/// Writes a v2 snapshot: header, a meta line carrying the lifetime
/// counters **and the WAL sequence watermark**, the artifact index in
/// LRU order (oldest first, so replay reconstructs the eviction order),
/// then job records — terminal ones in completion order, live ones by
/// id. tmp + fsync + rename, so a crash leaves either the old or the
/// new snapshot, never a torn one.
fn write_snapshot(
    path: &Path,
    table: &RecordTable,
    art: &ArtState,
    wal_seq: u64,
) -> Result<(), MariohError> {
    let tmp = path.with_extension("snapshot.tmp");
    {
        let mut out = std::io::BufWriter::new(File::create(&tmp)?);
        writeln!(out, "{} snapshot", format_tag())?;
        let counters = table.counters();
        let meta = obj(vec![
            ("t", Json::str("meta")),
            ("submitted", Json::num(counters.submitted as f64)),
            ("finished", Json::num(counters.finished as f64)),
            ("wal_seq", Json::num(wal_seq as f64)),
        ]);
        writeln!(out, "{meta}")?;
        for (hash, kind) in art.lru.values() {
            let entry = &art.index[&(*hash, *kind)];
            let record = obj(vec![
                ("t", Json::str("art")),
                ("kind", Json::str(kind.tag())),
                ("hash", Json::str(hash.to_hex())),
                ("bytes", Json::num(entry.bytes as f64)),
            ]);
            writeln!(out, "{record}")?;
        }
        let mut ordered: Vec<(u64, &Record)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for id in table.terminal_ids() {
            if let Some(record) = table.get(id) {
                ordered.push((id, record));
                seen.insert(id);
            }
        }
        let mut live: Vec<(u64, &Record)> = table
            .iter()
            .filter(|(id, _)| !seen.contains(*id))
            .map(|(id, r)| (*id, r))
            .collect();
        live.sort_by_key(|(id, _)| *id);
        ordered.extend(live);
        for (id, record) in ordered {
            let mut pairs = vec![
                ("t", Json::str("job")),
                ("id", Json::num(id as f64)),
                ("hash", Json::str(record.hash.to_hex())),
                ("status", Json::str(record.status.as_str())),
                ("rounds", Json::num(record.rounds as f64)),
                ("committed", Json::num(record.committed as f64)),
                ("cached", Json::Bool(record.cached)),
            ];
            if let Some(error) = &record.error {
                pairs.push(("error", Json::str(error.clone())));
            }
            if let Some(spec) = &record.spec {
                pairs.push(("spec", spec.to_json()));
            }
            writeln!(out, "{}", obj(pairs))?;
        }
        out.flush()?;
        out.get_ref().sync_data()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a v2 (or legacy v1) snapshot into `table` and `art`, returning
/// the WAL sequence watermark (0 for v1 snapshots, which predate the
/// WAL).
fn read_snapshot(
    path: &Path,
    table: &mut RecordTable,
    art: &mut ArtState,
) -> Result<u64, MariohError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| corrupt("empty store snapshot"))?;
    let expected = format!("{} snapshot", format_tag());
    let v1_expected = format!("{V1_TAG} snapshot");
    if header.trim() != expected && header.trim() != v1_expected {
        return Err(corrupt(format!(
            "snapshot header {header:?} does not match {expected:?} — migrate the state dir first"
        )));
    }
    let mut counters = StoreCounters::default();
    let mut wal_seq = 0u64;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let record =
            Json::parse(line).map_err(|e| corrupt(format!("corrupt snapshot record: {e}")))?;
        match get_str(&record, "t")? {
            "meta" => {
                counters.submitted = get_u64(&record, "submitted")?;
                counters.finished = get_u64(&record, "finished")?;
                wal_seq = record.get("wal_seq").and_then(Json::as_u64).unwrap_or(0);
            }
            "art" => {
                let kind = ArtifactKind::from_tag(get_str(&record, "kind")?)
                    .ok_or_else(|| corrupt("snapshot art record has an unknown kind"))?;
                art.insert(get_hash(&record)?, kind, get_u64(&record, "bytes")?);
            }
            "job" => {
                let id = get_u64(&record, "id")?;
                let status = JobStatus::from_str_tag(get_str(&record, "status")?)
                    .ok_or_else(|| corrupt("snapshot record has an unknown status"))?;
                let spec = match record.get("spec") {
                    Some(_) => Some(get_spec(&record)?),
                    None => None,
                };
                table.insert_with_id(
                    id,
                    Record {
                        spec,
                        hash: get_hash(&record)?,
                        status,
                        rounds: get_u64(&record, "rounds")? as usize,
                        committed: get_u64(&record, "committed")? as usize,
                        error: record
                            .get("error")
                            .and_then(Json::as_str)
                            .map(str::to_owned),
                        result: None, // loaded lazily from the artifact store
                        cached: record
                            .get("cached")
                            .and_then(Json::as_bool)
                            .unwrap_or(false),
                    },
                );
            }
            other => return Err(corrupt(format!("unknown snapshot record type {other:?}"))),
        }
    }
    // The snapshot's lifetime counters override the per-insert counting
    // (evicted records are gone from the snapshot but still happened).
    table.set_counters(counters);
    Ok(wal_seq)
}

/// Replays a v1 `jobs.log` (the pre-segment textual format) during
/// migration: one JSON line per record, torn final line tolerated.
fn replay_legacy_log(path: &Path, table: &mut RecordTable) -> Result<(), MariohError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines().enumerate();
    match lines.next() {
        None => return Ok(()), // empty log
        Some((_, header)) => {
            let expected = format!("{V1_TAG} log");
            if header.trim() != expected {
                return Err(corrupt(format!(
                    "log header {header:?} does not match {expected:?} — migrate the state dir first"
                )));
            }
        }
    }
    let non_empty: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let last_index = non_empty.len().saturating_sub(1);
    for (pos, (lineno, line)) in non_empty.iter().enumerate() {
        let record = match Json::parse(line) {
            Ok(r) => r,
            // A torn final line is the expected debris of a kill;
            // anything earlier is real corruption.
            Err(_) if pos == last_index => break,
            Err(e) => {
                return Err(corrupt(format!(
                    "corrupt store log at line {}: {e}",
                    lineno + 1
                )))
            }
        };
        apply_job_record(table, &record)?;
    }
    Ok(())
}

/// Applies one replayed WAL record (v2 segments carry the v1 job
/// records plus `artifact`/`evict` index records).
fn apply_wal_record(
    table: &mut RecordTable,
    art: &mut ArtState,
    record: &Json,
) -> Result<(), MariohError> {
    match get_str(record, "t")? {
        "artifact" => {
            let kind = ArtifactKind::from_tag(get_str(record, "kind")?)
                .ok_or_else(|| corrupt("wal artifact record has an unknown kind"))?;
            art.insert(get_hash(record)?, kind, get_u64(record, "bytes")?);
            Ok(())
        }
        "evict" => {
            let kind = ArtifactKind::from_tag(get_str(record, "kind")?)
                .ok_or_else(|| corrupt("wal evict record has an unknown kind"))?;
            art.remove(get_hash(record)?, kind);
            Ok(())
        }
        _ => apply_job_record(table, record),
    }
}

fn apply_job_record(table: &mut RecordTable, record: &Json) -> Result<(), MariohError> {
    let id = get_u64(record, "id")?;
    match get_str(record, "t")? {
        "submit" => {
            table.insert_with_id(id, Record::queued(get_spec(record)?, get_hash(record)?));
        }
        "start" => {
            table.transition(id, Transition::Start);
        }
        "progress" => {
            table.transition(
                id,
                Transition::Progress {
                    rounds: record
                        .get("rounds")
                        .and_then(Json::as_u64)
                        .map(|v| v as usize),
                    committed: record
                        .get("committed")
                        .and_then(Json::as_u64)
                        .map(|v| v as usize),
                },
            );
        }
        "note" => {
            table.transition(id, Transition::Note(get_str(record, "error")?.to_owned()));
        }
        "done" => {
            // The result stays on disk; `DiskStore::result` loads it
            // lazily by spec hash.
            let cached = record
                .get("cached")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            table.mark_done_replayed(id, cached);
        }
        "failed" => {
            table.transition(id, Transition::Failed(get_str(record, "error")?.to_owned()));
        }
        "cancelled" => {
            table.transition(id, Transition::Cancelled);
        }
        other => return Err(corrupt(format!("unknown store log record type {other:?}"))),
    }
    Ok(())
}

/// Seeds the artifact index from a directory scan — migration path for
/// v1 stores, which had artifacts but no index. File sizes are the
/// encoded sizes (v1 files are plain, so this is exact).
fn seed_art_index_from_disk(root: &Path, art: &mut ArtState) {
    let scan = |dir: PathBuf, ext: &str, kind: ArtifactKind, art: &mut ArtState| {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != ext) {
                continue;
            }
            let Some(hash) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(SpecHash::from_hex)
            else {
                continue;
            };
            if art.index.contains_key(&(hash, kind)) {
                continue;
            }
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            art.insert(hash, kind, bytes);
        }
    };
    let artifacts = root.join("artifacts");
    scan(
        artifacts.join("results"),
        "result",
        ArtifactKind::Result,
        art,
    );
    scan(artifacts.join("models"), "model", ArtifactKind::Model, art);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use marioh_hypergraph::hyperedge::edge;
    use std::fs::OpenOptions;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("marioh-disk-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(body: &str) -> (JobSpec, SpecHash) {
        let s = JobSpec::from_json(&Json::parse(body).unwrap()).unwrap();
        let h = s.content_hash().unwrap();
        (s, h)
    }

    fn result() -> Arc<JobResult> {
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge_with_multiplicity(edge(&[0, 1, 2]), 3);
        h.add_edge(edge(&[1, 4]));
        Arc::new(JobResult {
            reconstruction: h,
            jaccard: 0.8125,
        })
    }

    /// Synchronous-compaction tuning with a tiny segment cap, so tests
    /// drive rotation deterministically and call `compact_now` directly.
    fn tiny_tuning(retain: usize, segment_bytes: u64) -> StoreTuning {
        StoreTuning {
            retain,
            budget: None,
            segment_bytes,
            compact_sealed: 1_000_000,
            auto_compact: false,
        }
    }

    /// The newest (highest-first-seq) WAL segment file — the tail a
    /// crash would tear.
    fn tail_segment(dir: &Path) -> PathBuf {
        let mut segs: Vec<PathBuf> = fs::read_dir(dir.join("wal"))
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "wal"))
            .collect();
        segs.sort();
        segs.pop().expect("a tail segment exists")
    }

    #[test]
    fn restart_replays_terminal_records_and_requeues_interrupted_jobs() {
        let dir = tmp_dir("restart");
        let (done_spec, done_hash) = spec(r#"{"dataset": "Hosts", "seed": 1}"#);
        let (queued_spec, queued_hash) = spec(r#"{"dataset": "Hosts", "seed": 2}"#);
        let (running_spec, running_hash) = spec(r#"{"dataset": "Hosts", "seed": 3}"#);

        let (done_id, queued_id, running_id) = {
            let store = DiskStore::open(&dir, 64).unwrap();
            assert!(store.recover_queued().is_empty());
            let done_id = store.submit(&done_spec, &done_hash);
            let queued_id = store.submit(&queued_spec, &queued_hash);
            let running_id = store.submit(&running_spec, &running_hash);
            store.start(done_id).unwrap();
            store.put_result(&done_hash, &result()).unwrap();
            store.transition(
                done_id,
                Transition::Done {
                    result: result(),
                    cached: false,
                },
            );
            store.start(running_id).unwrap();
            store.transition(
                running_id,
                Transition::Progress {
                    rounds: Some(2),
                    committed: Some(9),
                },
            );
            (done_id, queued_id, running_id)
            // dropped without any shutdown ceremony — like a kill
        };

        let store = DiskStore::open(&dir, 64).unwrap();
        // Terminal history is served from disk...
        let view = store.view(done_id).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        let (_, loaded) = store.result(done_id).unwrap();
        let loaded = loaded.expect("replayed result loads lazily");
        assert_eq!(loaded.jaccard.to_bits(), 0.8125f64.to_bits());
        assert_eq!(
            loaded.reconstruction.total_edge_count(),
            result().reconstruction.total_edge_count()
        );
        // ...and interrupted work is back in the queue, in order.
        assert_eq!(store.recover_queued(), vec![queued_id, running_id]);
        let requeued = store.view(running_id).unwrap();
        assert_eq!(requeued.status, JobStatus::Queued);
        assert_eq!(requeued.rounds, 2, "progress survives the restart");
        let taken = store.start(running_id).expect("recovered spec is intact");
        assert_eq!(taken.content_hash().unwrap(), running_hash);
        assert_eq!(
            store.counters(),
            StoreCounters {
                submitted: 3,
                finished: 1
            }
        );
    }

    #[test]
    fn a_running_jobs_spec_survives_compaction_and_a_crash() {
        let dir = tmp_dir("running-spec");
        let (s, h) = spec(r#"{"dataset": "Hosts", "seed": 77}"#);
        {
            let store = DiskStore::open_tuned(&dir, tiny_tuning(64, 128)).unwrap();
            let id = store.submit(&s, &h);
            let taken = store.start(id).unwrap();
            assert_eq!(taken.content_hash().unwrap(), h);
            // Compact while the job is mid-flight: the snapshot becomes
            // the only durable copy of the spec once the WAL segment
            // holding the submit record is retired — it must carry the
            // spec even though the worker holds a clone.
            store.compact_now().unwrap();
        }
        let store = DiskStore::open_tuned(&dir, tiny_tuning(64, 128)).unwrap();
        let ids = store.recover_queued();
        assert_eq!(ids.len(), 1);
        let replayed = store
            .start(ids[0])
            .expect("requeued job recovers its spec from the snapshot");
        assert_eq!(replayed.content_hash().unwrap(), h);
    }

    #[test]
    fn counters_and_eviction_survive_compaction_cycles() {
        let dir = tmp_dir("compaction");
        let retain = 2;
        let mut ids = Vec::new();
        for round in 0..3u64 {
            let store = DiskStore::open(&dir, retain).unwrap();
            for id in store.recover_queued() {
                store.start(id);
                store.transition(id, Transition::Failed("interrupted".into()));
            }
            let (s, h) = spec(&format!(
                r#"{{"dataset": "Hosts", "seed": {}}}"#,
                10 + round
            ));
            let id = store.submit(&s, &h);
            store.start(id);
            store.transition(id, Transition::Failed("boom".into()));
            store.compact_now().unwrap();
            ids.push(id);
        }
        let store = DiskStore::open(&dir, retain).unwrap();
        let counters = store.counters();
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.finished, 3);
        // Only the `retain` most recent terminal records survive.
        assert!(store.view(ids[0]).is_none());
        assert_eq!(store.view(ids[2]).unwrap().status, JobStatus::Failed);
        assert_eq!(store.scan().len(), retain);
        // Ids keep ascending across restarts.
        let (s, h) = spec(r#"{"dataset": "Hosts", "seed": 99}"#);
        assert!(store.submit(&s, &h) > *ids.last().unwrap());
    }

    #[test]
    fn batched_appends_recover_a_consistent_prefix_after_a_mid_batch_crash() {
        let dir = tmp_dir("batch");
        let specs: Vec<(JobSpec, SpecHash)> = (0..4)
            .map(|i| spec(&format!(r#"{{"dataset": "Hosts", "seed": {i}}}"#)))
            .collect();
        let ids = {
            let store = DiskStore::open(&dir, 16).unwrap();
            let ids = store.submit_batch(&specs);
            assert_eq!(ids, vec![1, 2, 3, 4]);
            store.start(ids[0]).unwrap();
            store.start(ids[1]).unwrap();
            let statuses = store.transition_batch(vec![
                (
                    ids[0],
                    Transition::Progress {
                        rounds: Some(1),
                        committed: Some(3),
                    },
                ),
                (ids[1], Transition::Failed("boom".into())),
                (9999, Transition::Failed("unknown".into())),
            ]);
            assert_eq!(
                statuses,
                vec![Some(JobStatus::Running), Some(JobStatus::Failed), None]
            );
            ids
        };

        // The whole first batch was acknowledged, so a restart replays
        // all of it: the interrupted runner re-queues, the failure and
        // the untouched queued jobs survive.
        {
            let store = DiskStore::open(&dir, 16).unwrap();
            assert_eq!(store.recover_queued(), vec![ids[0], ids[2], ids[3]]);
            assert_eq!(store.view(ids[1]).unwrap().status, JobStatus::Failed);
            // Write one more batch, whose tail the "crash" below tears.
            let more: Vec<(JobSpec, SpecHash)> = (10..12)
                .map(|i| spec(&format!(r#"{{"dataset": "Hosts", "seed": {i}}}"#)))
                .collect();
            assert_eq!(store.submit_batch(&more), vec![5, 6]);
        }

        // Simulate a crash mid-batch-append: chop the last bytes of the
        // tail WAL segment, leaving the batch's final frame torn.
        let tail = tail_segment(&dir);
        let bytes = fs::read(&tail).unwrap();
        fs::write(&tail, &bytes[..bytes.len() - 7]).unwrap();

        // Recovery keeps the consistent prefix — every record before the
        // torn one — and drops only the torn tail, exactly like a torn
        // single append.
        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!(store.view(5).unwrap().status, JobStatus::Queued);
        assert!(store.view(6).is_none(), "torn tail record must not replay");
        assert_eq!(store.recover_queued(), vec![ids[0], ids[2], ids[3], 5]);
    }

    #[test]
    fn result_codec_round_trips_and_the_disk_artifact_is_a_container() {
        let dir = tmp_dir("codec");
        let store = DiskStore::open(&dir, 8).unwrap();
        let (_, h) = spec(r#"{"dataset": "Hosts", "seed": 3}"#);
        let original = result();
        store.put_result(&h, &original).unwrap();
        // On disk: a compressed container whose body decompresses to
        // byte-for-byte the logical encoding — which is what `Result`
        // wire frames carry, so every serving mode persists identically.
        let on_disk = fs::read(
            dir.join("artifacts")
                .join("results")
                .join(format!("{h}.result")),
        )
        .unwrap();
        let header = format!("{RESULT_CONTAINER}\n");
        assert!(on_disk.starts_with(header.as_bytes()));
        assert_eq!(
            compress::decompress(&on_disk[header.len()..]).unwrap(),
            encode_result(&original)
        );
        // decode_result accepts both the container and the plain bytes.
        for bytes in [&on_disk[..], &encode_result(&original)[..]] {
            let decoded = decode_result(bytes).unwrap();
            assert_eq!(decoded.jaccard.to_bits(), original.jaccard.to_bits());
            assert_eq!(
                decoded.reconstruction.sorted_edges(),
                original.reconstruction.sorted_edges()
            );
        }
        assert!(decode_result(b"not a result").is_err());
        // Torn container body: malformed, not a panic.
        assert!(decode_result(&on_disk[..on_disk.len() - 1]).is_err());
        assert!(decode_result(&encode_result(&original)[..20]).is_err());
    }

    #[test]
    fn v1_state_dir_migrates_in_place() {
        let dir = tmp_dir("migrate");
        fs::create_dir_all(dir.join("artifacts").join("results")).unwrap();
        let (s, h) = spec(r#"{"dataset": "Hosts", "seed": 5}"#);
        fs::write(dir.join("VERSION"), "marioh-store v1\n").unwrap();
        let submit = obj(vec![
            ("t", Json::str("submit")),
            ("id", Json::num(1.0)),
            ("hash", Json::str(h.to_hex())),
            ("spec", s.to_json()),
        ]);
        fs::write(
            dir.join("jobs.log"),
            format!(
                "marioh-store v1 log\n{submit}\n{}\n{}\n",
                obj(vec![("t", Json::str("start")), ("id", Json::num(1.0))]),
                obj(vec![
                    ("t", Json::str("done")),
                    ("id", Json::num(1.0)),
                    ("cached", Json::Bool(false)),
                ]),
            ),
        )
        .unwrap();
        // A v1 artifact is a *plain* (uncompressed, v1-header) file.
        let plain = String::from_utf8(encode_result(&result()))
            .unwrap()
            .replacen("marioh-result v2", "marioh-result v1", 1);
        fs::write(
            dir.join("artifacts")
                .join("results")
                .join(format!("{h}.result")),
            plain,
        )
        .unwrap();

        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!(store.view(1).unwrap().status, JobStatus::Done);
        let (_, loaded) = store.result(1).unwrap();
        assert_eq!(loaded.unwrap().jaccard.to_bits(), 0.8125f64.to_bits());
        assert!(store.get_result(&h).is_some(), "plain v1 artifact reads");
        let stats = store.artifact_stats();
        assert_eq!(stats.results, 1);
        assert!(stats.result_bytes > 0, "index seeded from the dir scan");
        drop(store);

        // The migration is complete and permanent: v2 VERSION, no
        // legacy log, a snapshot + WAL layout that reopens cleanly.
        assert_eq!(
            fs::read_to_string(dir.join("VERSION")).unwrap().trim(),
            format_tag()
        );
        assert!(!dir.join("jobs.log").exists());
        assert!(dir.join("jobs.snapshot").exists());
        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!(store.view(1).unwrap().status, JobStatus::Done);
        assert_eq!(store.counters().submitted, 1);
    }

    #[test]
    fn torn_final_v1_log_line_is_tolerated_earlier_corruption_is_not() {
        let dir = tmp_dir("torn-v1");
        fs::create_dir_all(&dir).unwrap();
        let (s, h) = spec(r#"{"dataset": "Hosts"}"#);
        let submit = obj(vec![
            ("t", Json::str("submit")),
            ("id", Json::num(1.0)),
            ("hash", Json::str(h.to_hex())),
            ("spec", s.to_json()),
        ]);
        fs::write(dir.join("VERSION"), "marioh-store v1\n").unwrap();
        fs::write(
            dir.join("jobs.log"),
            format!("marioh-store v1 log\n{submit}\n"),
        )
        .unwrap();
        // Simulate a crash mid-append: a partial JSON line at the tail.
        let mut file = OpenOptions::new()
            .append(true)
            .open(dir.join("jobs.log"))
            .unwrap();
        write!(file, "{{\"t\":\"submit\",\"id\":2,\"ha").unwrap();
        drop(file);
        let store = DiskStore::open(&dir, 8).unwrap();
        assert_eq!(store.recover_queued(), vec![1]);
        drop(store);

        // Corruption in the *middle* of a v1 log is refused loudly.
        let dir = tmp_dir("corrupt-v1");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("VERSION"), "marioh-store v1\n").unwrap();
        fs::write(
            dir.join("jobs.log"),
            format!(
                "marioh-store v1 log\n{submit}\nnot json at all\n{}\n",
                submit
            ),
        )
        .unwrap();
        let err = DiskStore::open(&dir, 8).unwrap_err();
        assert!(err.to_string().contains("corrupt store log"), "{err}");
    }

    #[test]
    fn a_second_opener_is_refused_while_the_store_lives() {
        let dir = tmp_dir("lock");
        let store = DiskStore::open(&dir, 8).unwrap();
        // A concurrent writer would race the WAL and compactor out from
        // under the live process — refused instead.
        let err = DiskStore::open(&dir, 8).unwrap_err();
        assert!(err.to_string().contains("in use"), "{err}");
        // Dropping the store releases the lock.
        drop(store);
        DiskStore::open(&dir, 8).unwrap();
    }

    #[test]
    fn version_mismatch_is_refused_with_a_migration_pointer() {
        let dir = tmp_dir("version");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("VERSION"), "marioh-store v999\n").unwrap();
        let err = DiskStore::open(&dir, 8).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("v999") && msg.contains("FORMATS.md"), "{msg}");
    }

    #[test]
    fn artifacts_round_trip_on_disk() {
        let dir = tmp_dir("artifacts");
        let store = DiskStore::open(&dir, 8).unwrap();
        let (s, h) = spec(r#"{"dataset": "Hosts", "seed": 7}"#);
        let _ = s;
        assert!(store.get_result(&h).is_none());
        store.put_result(&h, &result()).unwrap();
        let back = store.get_result(&h).unwrap();
        assert_eq!(back.jaccard.to_bits(), 0.8125f64.to_bits());
        assert_eq!(store.artifact_stats().results, 1);

        let model = {
            use marioh_core::training::{train_classifier, TrainingConfig};
            use rand::{rngs::StdRng, SeedableRng};
            let mut hg = marioh_hypergraph::Hypergraph::new(0);
            for b in 0..12u32 {
                hg.add_edge(edge(&[b * 3, b * 3 + 1, b * 3 + 2]));
                hg.add_edge(edge(&[b * 3, b * 3 + 1]));
            }
            let mut rng = StdRng::seed_from_u64(0);
            SavedModel {
                model: train_classifier(&hg, &TrainingConfig::default(), &mut rng),
                rng_state: Some([9, 8, 7, 6]),
            }
        };
        store.put_model(&h, &model).unwrap();
        assert_eq!(store.get_model(&h).unwrap().rng_state, Some([9, 8, 7, 6]));
        store.put_named_model("exported", &model).unwrap();
        assert!(store.put_named_model("../escape", &model).is_err());
        assert!(store.get_named_model("exported").is_some());
        let listed = store.list_models();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].name.as_deref(), Some("exported"));
        assert_eq!(listed[1].hash, Some(h));
        let stats = store.artifact_stats();
        assert_eq!(stats.models, 2);
        assert!(stats.model_bytes > 0);
    }

    #[test]
    fn rotation_seals_segments_and_compaction_retires_them() {
        let dir = tmp_dir("rotate");
        let store = DiskStore::open_tuned(&dir, tiny_tuning(64, 256)).unwrap();
        let mut hashes = Vec::new();
        for i in 0..12u64 {
            let (s, h) = spec(&format!(r#"{{"dataset": "Hosts", "seed": {i}}}"#));
            store.submit(&s, &h);
            hashes.push(h);
        }
        assert!(
            store.sealed_segments() >= 2,
            "tiny segment cap must force rotations"
        );
        for h in hashes.iter().take(3) {
            store.put_result(h, &result()).unwrap();
        }
        store.compact_now().unwrap();
        assert_eq!(
            store.sealed_segments(),
            0,
            "compaction retires every fully-snapshotted segment"
        );
        // On disk: exactly one (tail) segment plus the base filter.
        let wal_files: Vec<String> = fs::read_dir(dir.join("wal"))
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            wal_files.iter().filter(|f| f.ends_with(".wal")).count(),
            1,
            "{wal_files:?}"
        );
        assert!(wal_files.iter().any(|f| f == "base.filter"));
        drop(store);

        let store = DiskStore::open_tuned(&dir, tiny_tuning(64, 256)).unwrap();
        assert_eq!(store.counters().submitted, 12);
        assert_eq!(store.recover_queued().len(), 12);
        for h in hashes.iter().take(3) {
            assert!(
                store.get_result(h).is_some(),
                "artifact survives compaction"
            );
        }
        assert_eq!(store.artifact_stats().results, 3);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_artifacts() {
        // Measure one encoded artifact first (they are identical).
        let probe_dir = tmp_dir("budget-probe");
        let (_, h_probe) = spec(r#"{"dataset": "Hosts", "seed": 100}"#);
        let size = {
            let store = DiskStore::open_tuned(&probe_dir, tiny_tuning(16, 1 << 20)).unwrap();
            store.put_result(&h_probe, &result()).unwrap();
            store.artifact_stats().result_bytes
        };
        assert!(size > 0);

        let dir = tmp_dir("budget");
        let mut tuning = tiny_tuning(16, 1 << 20);
        tuning.budget = Some(size * 2 + size / 2); // room for two, not three
        let hashes: Vec<SpecHash> = (0..3)
            .map(|i| spec(&format!(r#"{{"dataset": "Hosts", "seed": {i}}}"#)).1)
            .collect();
        {
            let store = DiskStore::open_tuned(&dir, tuning.clone()).unwrap();
            store.put_result(&hashes[0], &result()).unwrap();
            store.put_result(&hashes[1], &result()).unwrap();
            // Touch [0] so [1] is the least recently used...
            assert!(store.get_result(&hashes[0]).is_some());
            // ...and the third put must evict exactly [1].
            store.put_result(&hashes[2], &result()).unwrap();
            assert!(store.contains_result(&hashes[0]));
            assert!(!store.contains_result(&hashes[1]), "LRU victim evicted");
            assert!(store.contains_result(&hashes[2]));
            assert!(store.artifact_stats().result_bytes <= tuning.budget.unwrap());
        }
        assert!(!dir
            .join("artifacts")
            .join("results")
            .join(format!("{}.result", hashes[1]))
            .exists());

        // No resurrection: the eviction outlives a restart.
        let store = DiskStore::open_tuned(&dir, tuning).unwrap();
        assert_eq!(store.artifact_stats().results, 2);
        assert!(store.get_result(&hashes[1]).is_none());
        assert!(store.get_result(&hashes[0]).is_some());
    }

    #[test]
    fn read_only_open_coexists_with_a_live_writer() {
        let dir = tmp_dir("readonly");
        assert!(
            DiskStore::open_read_only(&dir).is_err(),
            "read-only open must not create a store"
        );
        let writer = DiskStore::open(&dir, 16).unwrap();
        let (s, h) = spec(r#"{"dataset": "Hosts", "seed": 1}"#);
        let id = writer.submit(&s, &h);
        writer.start(id).unwrap();
        writer.put_result(&h, &result()).unwrap();
        writer.transition(
            id,
            Transition::Done {
                result: result(),
                cached: false,
            },
        );

        // The writer still holds the exclusive lock...
        assert!(DiskStore::open(&dir, 16).is_err());
        // ...but a read-only open sees the flushed state.
        let ro = DiskStore::open_read_only(&dir).unwrap();
        assert_eq!(ro.view(id).unwrap().status, JobStatus::Done);
        let (_, loaded) = ro.result(id).unwrap();
        assert_eq!(loaded.unwrap().jaccard.to_bits(), 0.8125f64.to_bits());
        assert!(ro.get_result(&h).is_some());

        // Read-only writes land in the overlay, never on disk.
        let (_, h2) = spec(r#"{"dataset": "Hosts", "seed": 2}"#);
        ro.put_result(&h2, &result()).unwrap();
        assert!(ro.get_result(&h2).is_some());
        assert!(!dir
            .join("artifacts")
            .join("results")
            .join(format!("{h2}.result"))
            .exists());
        drop(ro);
        // The writer was never disturbed.
        assert!(writer.get_result(&h).is_some());
        assert!(writer.get_result(&h2).is_none());
    }

    #[test]
    fn filter_never_gives_false_negatives_across_the_segment_lifecycle() {
        let dir = tmp_dir("filter-life");
        let store = DiskStore::open_tuned(&dir, tiny_tuning(64, 256)).unwrap();
        let mut hashes = Vec::new();
        for i in 0..10u64 {
            let (_, h) = spec(&format!(r#"{{"dataset": "Hosts", "seed": {i}}}"#));
            store.put_result(&h, &result()).unwrap();
            hashes.push(h);
            if i == 4 {
                // Mid-stream compaction moves half into the base filter.
                store.compact_now().unwrap();
            }
        }
        let (_, ghost) = spec(r#"{"dataset": "Hosts", "seed": 999}"#);
        for h in &hashes {
            assert!(store.contains_result(h));
            assert!(store.get_result(h).is_some());
        }
        assert!(!store.contains_result(&ghost));
        // Disabling the filter degrades to plain disk probes, same
        // answers.
        store.set_filter_enabled(false);
        assert!(store.contains_result(&hashes[0]));
        assert!(!store.contains_result(&ghost));
        drop(store);

        let store = DiskStore::open_tuned(&dir, tiny_tuning(64, 256)).unwrap();
        for h in &hashes {
            assert!(store.get_result(h).is_some(), "rebuilt filter admits all");
        }
        assert!(!store.contains_result(&ghost));
    }
}
