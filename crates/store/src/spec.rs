//! Job specifications: parsing, validation, persistence encoding, and
//! the canonical content hash.
//!
//! A [`JobSpec`] describes one reconstruction: its input (a registry
//! dataset or an uploaded edge list), the MARIOH variant, a seed, an
//! optional reused model, and hyperparameter overrides that are validated
//! through the same `Pipeline::builder` every other frontend uses.
//!
//! Two encodings, deliberately distinct:
//!
//! * [`JobSpec::to_json`] is the **faithful** form — it round-trips
//!   through [`JobSpec::from_json`] and is what the durable job store
//!   writes to its record log so interrupted jobs can be re-queued after
//!   a restart.
//! * [`JobSpec::canonical`] is the **semantic** form — the variant is
//!   collapsed into its effective configuration, omitted parameters are
//!   materialised to their defaults, and non-semantic knobs (`threads`,
//!   `throttle_ms`) are dropped, so two specs hash equal **iff** they
//!   describe the same computation. [`JobSpec::content_hash`] is SHA-256
//!   over those bytes and keys the result/model cache.

use crate::hash::SpecHash;
use crate::json::Json;
use marioh_core::{MariohError, Pipeline, PipelineBuilder, Variant};
use marioh_datasets::PaperDataset;
use marioh_hypergraph::{io as hio, Hypergraph};
use std::sync::Arc;

/// Cap on the per-job [`JobSpec::throttle_ms`] pacing knob.
pub const MAX_THROTTLE_MS: u64 = 60_000;

/// Cap on the per-job [`JobSpec::timeout_secs`] deadline (one day).
pub const MAX_TIMEOUT_SECS: u64 = 86_400;

/// Version tag embedded in the canonical encoding; bump it if the
/// canonical field set ever changes meaning (old cached artifacts then
/// stop matching instead of matching wrongly).
pub const CANONICAL_FORMAT_VERSION: u32 = 1;

/// What a job reconstructs.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// A registry dataset, generated at its fixed per-dataset seed.
    Dataset {
        /// Which calibrated dataset to generate.
        dataset: PaperDataset,
        /// Generation scale (`None` = the dataset's default scale).
        scale: Option<f64>,
    },
    /// An uploaded hypergraph, parsed from the text edge-list format of
    /// [`marioh_hypergraph::io`] at submission time.
    Edges(Hypergraph),
}

/// A reference to an already-trained model a job reuses instead of
/// training its own classifier (the paper's Table V transfer setting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelRef {
    /// The model trained by an earlier job, looked up through that job's
    /// spec hash in the artifact store.
    Job(u64),
    /// A named model saved through `marioh model import` (or a future
    /// `PUT /models/:name`).
    Named(String),
}

/// Characters allowed in a saved-model name (it becomes a file name in
/// the disk store, so the set is deliberately narrow).
pub fn validate_model_name(name: &str) -> Result<(), String> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(format!(
            "invalid model name {name:?}: use 1-64 characters from [A-Za-z0-9._-], not starting with '.'"
        ))
    }
}

impl ModelRef {
    /// Parses the `"model"` parameter: `"job:<id>"` or a saved-model
    /// name.
    pub fn parse(value: &str) -> Result<ModelRef, String> {
        if let Some(id) = value.strip_prefix("job:") {
            let id: u64 = id
                .parse()
                .map_err(|_| format!("invalid job reference {value:?}: expected \"job:<id>\""))?;
            return Ok(ModelRef::Job(id));
        }
        validate_model_name(value)?;
        Ok(ModelRef::Named(value.to_owned()))
    }

    /// The wire form accepted by [`ModelRef::parse`].
    pub fn to_param(&self) -> String {
        match self {
            ModelRef::Job(id) => format!("job:{id}"),
            ModelRef::Named(name) => name.clone(),
        }
    }

    /// The unambiguous form used inside the canonical encoding.
    fn canonical(&self) -> String {
        match self {
            ModelRef::Job(id) => format!("job:{id}"),
            ModelRef::Named(name) => format!("name:{name}"),
        }
    }
}

/// Hyperparameter overrides; `None` keeps the builder's default.
#[derive(Debug, Clone, Default)]
pub struct JobParams {
    /// Initial classification threshold `θ_init`.
    pub theta_init: Option<f64>,
    /// Negative-prediction processing ratio `r` in percent.
    pub neg_ratio: Option<f64>,
    /// Threshold adjust ratio `α`.
    pub alpha: Option<f64>,
    /// Worker threads inside one reconstruction.
    pub threads: Option<usize>,
    /// Outer-loop round cap.
    pub max_iterations: Option<usize>,
    /// Fraction of source hyperedges used as supervision.
    pub supervision_fraction: Option<f64>,
    /// Negatives sampled per positive during training.
    pub negative_ratio: Option<f64>,
    /// Toggles the provable filtering step.
    pub filtering: Option<bool>,
    /// Toggles Phase 2 of the bidirectional search.
    pub bidirectional: Option<bool>,
}

/// One reconstruction job as accepted by `POST /jobs`.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The input hypergraph source.
    pub input: JobInput,
    /// The MARIOH variant to run.
    pub variant: Variant,
    /// Seed driving the split/train/reconstruct RNG.
    pub seed: u64,
    /// Pacing knob for load tests and demos: the worker sleeps this many
    /// milliseconds (cancellable) before starting, and again after each
    /// search round, so tiny jobs occupy workers for an observable time.
    /// Non-semantic: excluded from [`JobSpec::content_hash`].
    pub throttle_ms: u64,
    /// Per-job deadline in seconds: a job still running this long after
    /// dispatch is cancelled and recorded failed with a timeout reason.
    /// `0` — the default — defers to the server-wide
    /// `marioh serve --job-timeout` default (itself unlimited when
    /// unset). Non-semantic: excluded from [`JobSpec::content_hash`].
    pub timeout_secs: u64,
    /// An already-trained model to reuse instead of training.
    pub model: Option<ModelRef>,
    /// Hyperparameter overrides.
    pub params: JobParams,
}

fn expect_num(key: &str, v: &Json) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("hyperparameter {key:?} must be a number"))
}

fn expect_uint(key: &str, v: &Json) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("hyperparameter {key:?} must be a non-negative integer"))
}

fn expect_bool(key: &str, v: &Json) -> Result<bool, String> {
    v.as_bool()
        .ok_or_else(|| format!("hyperparameter {key:?} must be a boolean"))
}

fn check_unique(kind: &str, pairs: &[(String, Json)]) -> Result<(), String> {
    for (i, (key, _)) in pairs.iter().enumerate() {
        if pairs[..i].iter().any(|(k, _)| k == key) {
            return Err(format!("duplicate {kind} {key:?}"));
        }
    }
    Ok(())
}

/// Resolves a method name (`"MARIOH"`, `"marioh-f"`, …) to its variant.
pub fn variant_by_name(name: &str) -> Option<Variant> {
    Variant::all()
        .into_iter()
        .find(|v| v.name().eq_ignore_ascii_case(name))
        .or((name.eq_ignore_ascii_case("full")).then_some(Variant::Full))
}

impl JobParams {
    /// Parses the `"params"` object, rejecting duplicate and unknown
    /// hyperparameters. Values are range-checked later by
    /// [`JobSpec::validate`], so invalid domains carry the pipeline
    /// builder's own message.
    pub fn from_json(v: &Json) -> Result<JobParams, String> {
        let pairs = v
            .as_object()
            .ok_or_else(|| "\"params\" must be an object".to_owned())?;
        check_unique("hyperparameter", pairs)?;
        let mut params = JobParams::default();
        for (key, value) in pairs {
            match key.as_str() {
                "theta_init" => params.theta_init = Some(expect_num(key, value)?),
                "neg_ratio" => params.neg_ratio = Some(expect_num(key, value)?),
                "alpha" => params.alpha = Some(expect_num(key, value)?),
                "threads" => params.threads = Some(expect_uint(key, value)? as usize),
                "max_iterations" => params.max_iterations = Some(expect_uint(key, value)? as usize),
                "supervision_fraction" => {
                    params.supervision_fraction = Some(expect_num(key, value)?)
                }
                "negative_ratio" => params.negative_ratio = Some(expect_num(key, value)?),
                "filtering" => params.filtering = Some(expect_bool(key, value)?),
                "bidirectional" => params.bidirectional = Some(expect_bool(key, value)?),
                other => {
                    return Err(format!(
                        "unknown hyperparameter {other:?}; known: theta_init, neg_ratio, alpha, \
                         threads, max_iterations, supervision_fraction, negative_ratio, \
                         filtering, bidirectional"
                    ))
                }
            }
        }
        Ok(params)
    }

    /// The set overrides as a JSON object (inverse of
    /// [`JobParams::from_json`]).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        let num = |key: &str, v: Option<f64>, pairs: &mut Vec<(String, Json)>| {
            if let Some(v) = v {
                pairs.push((key.to_owned(), Json::num(v)));
            }
        };
        num("theta_init", self.theta_init, &mut pairs);
        num("neg_ratio", self.neg_ratio, &mut pairs);
        num("alpha", self.alpha, &mut pairs);
        if let Some(v) = self.threads {
            pairs.push(("threads".to_owned(), Json::num(v as f64)));
        }
        if let Some(v) = self.max_iterations {
            pairs.push(("max_iterations".to_owned(), Json::num(v as f64)));
        }
        num(
            "supervision_fraction",
            self.supervision_fraction,
            &mut pairs,
        );
        num("negative_ratio", self.negative_ratio, &mut pairs);
        if let Some(v) = self.filtering {
            pairs.push(("filtering".to_owned(), Json::Bool(v)));
        }
        if let Some(v) = self.bidirectional {
            pairs.push(("bidirectional".to_owned(), Json::Bool(v)));
        }
        Json::Obj(pairs)
    }
}

impl JobSpec {
    /// Parses a `POST /jobs` body. Every message this returns is the 400
    /// response body; hyperparameter *domain* errors are deferred to
    /// [`JobSpec::validate`] so they carry the builder's wording.
    pub fn from_json(body: &Json) -> Result<JobSpec, String> {
        let pairs = body
            .as_object()
            .ok_or_else(|| "request body must be a JSON object".to_owned())?;
        check_unique("field", pairs)?;

        let mut dataset: Option<PaperDataset> = None;
        let mut scale: Option<f64> = None;
        let mut edges: Option<Hypergraph> = None;
        let mut variant = Variant::Full;
        let mut seed = 0u64;
        let mut throttle_ms = 0u64;
        let mut timeout_secs = 0u64;
        let mut model: Option<ModelRef> = None;
        let mut params = JobParams::default();
        for (key, value) in pairs {
            match key.as_str() {
                "dataset" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| "\"dataset\" must be a string".to_owned())?;
                    dataset = Some(PaperDataset::resolve(name)?);
                }
                "scale" => {
                    let v = value
                        .as_f64()
                        .filter(|v| *v > 0.0)
                        .ok_or_else(|| "\"scale\" must be a positive number".to_owned())?;
                    scale = Some(v);
                }
                "edges" => {
                    let text = value
                        .as_str()
                        .ok_or_else(|| "\"edges\" must be a string in the hypergraph text format (one `<multiplicity> <node> <node> [...]` record per line)".to_owned())?;
                    let h = hio::read_hypergraph(text.as_bytes())
                        .map_err(|e| format!("invalid edge list: {e}"))?;
                    edges = Some(h);
                }
                "method" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| "\"method\" must be a string".to_owned())?;
                    variant = variant_by_name(name).ok_or_else(|| {
                        format!(
                            "unknown method {name:?}; known: {}",
                            Variant::all().map(|v| v.name()).join(", ")
                        )
                    })?;
                }
                "seed" => {
                    seed = value
                        .as_u64()
                        .ok_or_else(|| "\"seed\" must be a non-negative integer".to_owned())?;
                }
                "throttle_ms" => {
                    throttle_ms = value
                        .as_u64()
                        .filter(|v| *v <= MAX_THROTTLE_MS)
                        .ok_or_else(|| {
                            format!("\"throttle_ms\" must be an integer in [0, {MAX_THROTTLE_MS}]")
                        })?;
                }
                "timeout_secs" => {
                    timeout_secs = value
                        .as_u64()
                        .filter(|v| *v <= MAX_TIMEOUT_SECS)
                        .ok_or_else(|| {
                            format!(
                                "\"timeout_secs\" must be an integer in [0, {MAX_TIMEOUT_SECS}]"
                            )
                        })?;
                }
                "model" => {
                    let text = value.as_str().ok_or_else(|| {
                        "\"model\" must be a string: \"job:<id>\" or a saved model name".to_owned()
                    })?;
                    model = Some(ModelRef::parse(text)?);
                }
                "params" => params = JobParams::from_json(value)?,
                other => {
                    return Err(format!(
                        "unknown field {other:?}; known: dataset, scale, edges, method, seed, \
                         throttle_ms, timeout_secs, model, params"
                    ))
                }
            }
        }

        let input = match (dataset, edges) {
            (Some(dataset), None) => JobInput::Dataset { dataset, scale },
            (None, Some(h)) => JobInput::Edges(h),
            (Some(_), Some(_)) => {
                return Err("provide either \"dataset\" or \"edges\", not both".to_owned())
            }
            (None, None) => return Err("provide \"dataset\" or \"edges\"".to_owned()),
        };
        if scale.is_some() && matches!(input, JobInput::Edges(_)) {
            return Err("\"scale\" only applies to registry datasets".to_owned());
        }
        Ok(JobSpec {
            input,
            variant,
            seed,
            throttle_ms,
            timeout_secs,
            model,
            params,
        })
    }

    /// The faithful JSON form: re-parseable through
    /// [`JobSpec::from_json`], used by the durable store's record log.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        match &self.input {
            JobInput::Dataset { dataset, scale } => {
                pairs.push(("dataset".to_owned(), Json::str(dataset.name())));
                if let Some(s) = scale {
                    pairs.push(("scale".to_owned(), Json::num(*s)));
                }
            }
            JobInput::Edges(h) => {
                pairs.push(("edges".to_owned(), Json::str(edges_text(h))));
            }
        }
        pairs.push(("method".to_owned(), Json::str(self.variant.name())));
        pairs.push(("seed".to_owned(), Json::num(self.seed as f64)));
        if self.throttle_ms > 0 {
            pairs.push(("throttle_ms".to_owned(), Json::num(self.throttle_ms as f64)));
        }
        if self.timeout_secs > 0 {
            pairs.push((
                "timeout_secs".to_owned(),
                Json::num(self.timeout_secs as f64),
            ));
        }
        if let Some(model) = &self.model {
            pairs.push(("model".to_owned(), Json::str(model.to_param())));
        }
        let params = self.params.to_json();
        if !params.as_object().expect("object").is_empty() {
            pairs.push(("params".to_owned(), params));
        }
        Json::Obj(pairs)
    }

    /// Applies variant and overrides to a pipeline builder.
    pub fn apply(&self, builder: PipelineBuilder) -> PipelineBuilder {
        let p = &self.params;
        let mut b = builder.variant(self.variant);
        if let Some(v) = p.theta_init {
            b = b.theta_init(v);
        }
        if let Some(v) = p.neg_ratio {
            b = b.neg_ratio(v);
        }
        if let Some(v) = p.alpha {
            b = b.alpha(v);
        }
        if let Some(v) = p.threads {
            b = b.threads(v);
        }
        if let Some(v) = p.max_iterations {
            b = b.max_iterations(v);
        }
        if let Some(v) = p.supervision_fraction {
            b = b.supervision_fraction(v);
        }
        if let Some(v) = p.negative_ratio {
            b = b.negative_ratio(v);
        }
        if let Some(v) = p.filtering {
            b = b.filtering(v);
        }
        if let Some(v) = p.bidirectional {
            b = b.bidirectional(v);
        }
        b
    }

    /// Runs the pipeline builder's validation over the overrides.
    ///
    /// # Errors
    ///
    /// Exactly the [`MariohError::Config`] the builder produces — the
    /// HTTP layer forwards its message verbatim as the 400 body.
    pub fn validate(&self) -> Result<(), MariohError> {
        self.apply(Pipeline::builder()).build().map(|_| ())
    }

    /// The canonical byte encoding: a fixed-field-order JSON rendering of
    /// the job's **effective** configuration.
    ///
    /// Properties, enforced by the property tests in
    /// `crates/store/tests/spec_hash.rs`:
    ///
    /// * independent of JSON key order, whitespace, and number spelling
    ///   in the submitted body (the body is parsed before encoding);
    /// * an omitted parameter and its explicitly-spelled default encode
    ///   identically (defaults are materialised, e.g. a missing `scale`
    ///   becomes the dataset's default scale);
    /// * ablation variants collapse into their effective configuration
    ///   (`MARIOH-F` ≡ `MARIOH` + `filtering: false`);
    /// * non-semantic knobs never appear: `threads` (bit-identical
    ///   results at any thread count, by the round-frozen invariant),
    ///   `throttle_ms` (pacing only), and `timeout_secs` (a deadline
    ///   changes when a job is abandoned, never what it computes).
    ///
    /// # Errors
    ///
    /// [`MariohError::Config`] when the spec fails builder validation
    /// (an invalid spec has no canonical form).
    pub fn canonical(&self) -> Result<String, MariohError> {
        let pipeline = self.apply(Pipeline::builder()).build()?;
        let t = pipeline.training_config();
        let c = pipeline.config();
        let input = match &self.input {
            JobInput::Dataset { dataset, scale } => Json::Obj(vec![
                ("dataset".to_owned(), Json::str(dataset.name())),
                (
                    "scale".to_owned(),
                    Json::num(scale.unwrap_or_else(|| dataset.default_scale())),
                ),
            ]),
            JobInput::Edges(h) => Json::Obj(vec![("edges".to_owned(), Json::str(edges_text(h)))]),
        };
        let model = match &self.model {
            Some(m) => Json::str(m.canonical()),
            None => Json::Null,
        };
        let opt = &t.optimizer;
        Ok(Json::Obj(vec![
            (
                "format".to_owned(),
                Json::num(CANONICAL_FORMAT_VERSION as f64),
            ),
            ("input".to_owned(), input),
            ("seed".to_owned(), Json::num(self.seed as f64)),
            ("model".to_owned(), model),
            ("features".to_owned(), Json::str(t.feature_mode.tag())),
            ("theta_init".to_owned(), Json::num(c.theta_init)),
            ("neg_ratio".to_owned(), Json::num(c.neg_ratio)),
            ("alpha".to_owned(), Json::num(c.alpha)),
            ("filtering".to_owned(), Json::Bool(c.use_filtering)),
            ("bidirectional".to_owned(), Json::Bool(c.use_bidirectional)),
            (
                "max_iterations".to_owned(),
                Json::num(c.max_iterations as f64),
            ),
            (
                "supervision_fraction".to_owned(),
                Json::num(t.supervision_fraction),
            ),
            ("negative_ratio".to_owned(), Json::num(t.negative_ratio)),
            (
                "hidden".to_owned(),
                Json::Arr(t.hidden.iter().map(|w| Json::num(*w as f64)).collect()),
            ),
            (
                "optimizer".to_owned(),
                Json::Obj(vec![
                    ("epochs".to_owned(), Json::num(opt.epochs as f64)),
                    ("learning_rate".to_owned(), Json::num(opt.learning_rate)),
                    ("batch_size".to_owned(), Json::num(opt.batch_size as f64)),
                    ("weight_decay".to_owned(), Json::num(opt.weight_decay)),
                ]),
            ),
        ])
        .to_string())
    }

    /// SHA-256 over [`JobSpec::canonical`] — the key of every cached
    /// artifact this spec can produce.
    ///
    /// # Errors
    ///
    /// [`MariohError::Config`] when the spec fails builder validation.
    pub fn content_hash(&self) -> Result<SpecHash, MariohError> {
        Ok(SpecHash::of(self.canonical()?.as_bytes()))
    }
}

/// The deterministic text rendering of an uploaded hypergraph (sorted
/// edge order), shared by the canonical encoding and the record log.
fn edges_text(h: &Hypergraph) -> String {
    let mut buf = Vec::new();
    hio::write_hypergraph(h, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("edge list text is UTF-8")
}

/// The lifecycle states of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// Picked up by a worker.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// Finished with an error (see the job's `error`).
    Failed,
    /// Cancelled, by `DELETE /jobs/:id` or server shutdown.
    Cancelled,
}

impl JobStatus {
    /// The lower-case wire name used in JSON responses and the record
    /// log.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Parses the wire name produced by [`JobStatus::as_str`].
    pub fn from_str_tag(tag: &str) -> Option<JobStatus> {
        match tag {
            "queued" => Some(JobStatus::Queued),
            "running" => Some(JobStatus::Running),
            "done" => Some(JobStatus::Done),
            "failed" => Some(JobStatus::Failed),
            "cancelled" => Some(JobStatus::Cancelled),
            _ => None,
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A successful reconstruction.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The reconstructed hypergraph.
    pub reconstruction: Hypergraph,
    /// Jaccard similarity against the held-out target half.
    pub jaccard: f64,
}

/// A point-in-time snapshot of one job, as served by `GET /jobs/:id`.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id.
    pub id: u64,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Search rounds completed so far.
    pub rounds: usize,
    /// Hyperedges committed by the search so far.
    pub committed: usize,
    /// Failure message, present for failed jobs.
    pub error: Option<String>,
    /// Whether the result was answered from the artifact cache instead
    /// of a pipeline run.
    pub cached: bool,
}

/// State changes a [`crate::store::JobStore`] records. Terminal records
/// never change again: a transition on a terminal job is a no-op that
/// reports the existing status (so a worker's late `Failed` cannot
/// resurrect a job that `DELETE` already cancelled).
#[derive(Debug, Clone)]
pub enum Transition {
    /// `Queued → Running` (only [`crate::store::JobStore::start`] issues
    /// this internally).
    Start,
    /// Progress counters from the worker's observer; `None` fields are
    /// left unchanged (round and commit events arrive independently).
    Progress {
        /// Search rounds completed (monotone; the store keeps the max).
        rounds: Option<usize>,
        /// Cumulative hyperedges committed.
        committed: Option<usize>,
    },
    /// A worker-side failure message (kept even if a later transition
    /// carries its own).
    Note(String),
    /// The job finished with a result.
    Done {
        /// The reconstruction and its score.
        result: Arc<JobResult>,
        /// `true` when the result came from the artifact cache.
        cached: bool,
    },
    /// The job failed; the message is kept unless a [`Transition::Note`]
    /// already recorded one.
    Failed(String),
    /// The job was cancelled; a queued job's spec is dropped.
    Cancelled,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&Json::parse(body).unwrap())
    }

    #[test]
    fn spec_parses_dataset_method_seed_and_params() {
        let spec = parse(
            r#"{"dataset": "hosts", "method": "MARIOH-F", "seed": 9,
                "throttle_ms": 5, "scale": 0.5,
                "params": {"theta_init": 0.8, "threads": 2, "filtering": false}}"#,
        )
        .unwrap();
        assert!(matches!(
            spec.input,
            JobInput::Dataset {
                dataset: PaperDataset::Hosts,
                scale: Some(s)
            } if s == 0.5
        ));
        assert_eq!(spec.variant, Variant::NoFiltering);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.throttle_ms, 5);
        assert_eq!(spec.params.theta_init, Some(0.8));
        assert_eq!(spec.params.threads, Some(2));
        assert_eq!(spec.params.filtering, Some(false));
        spec.validate().unwrap();
    }

    #[test]
    fn spec_accepts_uploaded_edges() {
        use marioh_hypergraph::hyperedge::edge;
        let mut h = Hypergraph::new(0);
        h.add_edge_with_multiplicity(edge(&[0, 1, 2]), 2);
        h.add_edge(edge(&[1, 3]));
        let mut text = Vec::new();
        hio::write_hypergraph(&h, &mut text).unwrap();
        let body = Json::Obj(vec![(
            "edges".to_owned(),
            Json::str(String::from_utf8(text).unwrap()),
        )]);
        let spec = JobSpec::from_json(&body).unwrap();
        match spec.input {
            JobInput::Edges(parsed) => {
                assert_eq!(parsed.unique_edge_count(), 2);
                assert_eq!(parsed.total_edge_count(), 3);
            }
            other => panic!("expected edges input, got {other:?}"),
        }
    }

    #[test]
    fn spec_rejections_name_the_offence() {
        for (body, needle) in [
            (r#"[]"#, "must be a JSON object"),
            (r#"{}"#, "provide \"dataset\" or \"edges\""),
            (r#"{"dataset": "nope"}"#, "unknown dataset"),
            (r#"{"dataset": "Hosts", "edges": "1 0 1"}"#, "not both"),
            (
                r#"{"dataset": "Hosts", "dataset": "Crime"}"#,
                "duplicate field \"dataset\"",
            ),
            (
                r#"{"dataset": "Hosts", "bogus": 1}"#,
                "unknown field \"bogus\"",
            ),
            (
                r#"{"dataset": "Hosts", "method": "pagerank"}"#,
                "unknown method",
            ),
            (r#"{"dataset": "Hosts", "seed": -1}"#, "\"seed\""),
            (r#"{"dataset": "Hosts", "scale": 0}"#, "\"scale\""),
            (
                r#"{"dataset": "Hosts", "throttle_ms": 999999}"#,
                "throttle_ms",
            ),
            (
                r#"{"dataset": "Hosts", "timeout_secs": 99999999}"#,
                "timeout_secs",
            ),
            (
                r#"{"dataset": "Hosts", "timeout_secs": -3}"#,
                "timeout_secs",
            ),
            (r#"{"edges": "not numbers"}"#, "invalid edge list"),
            (
                r#"{"edges": "1 0 1", "scale": 2}"#,
                "only applies to registry datasets",
            ),
            (
                r#"{"dataset": "Hosts", "params": {"theta_init": 0.9, "theta_init": 0.8}}"#,
                "duplicate hyperparameter \"theta_init\"",
            ),
            (
                r#"{"dataset": "Hosts", "params": {"volume": 11}}"#,
                "unknown hyperparameter",
            ),
            (
                r#"{"dataset": "Hosts", "params": {"threads": 1.5}}"#,
                "non-negative integer",
            ),
            (
                r#"{"dataset": "Hosts", "params": {"filtering": 1}}"#,
                "must be a boolean",
            ),
            (r#"{"dataset": "Hosts", "model": 7}"#, "\"model\""),
            (
                r#"{"dataset": "Hosts", "model": "job:x"}"#,
                "invalid job reference",
            ),
            (
                r#"{"dataset": "Hosts", "model": "no/slashes"}"#,
                "invalid model name",
            ),
        ] {
            let err = parse(body).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn validate_produces_the_builder_message_verbatim() {
        let spec = parse(r#"{"dataset": "Hosts", "params": {"theta_init": 1.5}}"#).unwrap();
        let got = spec.validate().unwrap_err().to_string();
        let expected = Pipeline::builder()
            .theta_init(1.5)
            .build()
            .unwrap_err()
            .to_string();
        assert_eq!(got, expected);
    }

    #[test]
    fn model_refs_parse_and_round_trip() {
        assert_eq!(ModelRef::parse("job:17"), Ok(ModelRef::Job(17)));
        assert_eq!(
            ModelRef::parse("enron-v2"),
            Ok(ModelRef::Named("enron-v2".to_owned()))
        );
        assert!(ModelRef::parse("job:").is_err());
        assert!(ModelRef::parse("").is_err());
        assert!(ModelRef::parse(".hidden").is_err());
        assert!(ModelRef::parse(&"x".repeat(65)).is_err());
        let spec = parse(r#"{"dataset": "Hosts", "model": "job:3"}"#).unwrap();
        assert_eq!(spec.model, Some(ModelRef::Job(3)));
        let spec = parse(r#"{"dataset": "Hosts", "model": "mymodel"}"#).unwrap();
        assert_eq!(spec.model, Some(ModelRef::Named("mymodel".to_owned())));
    }

    #[test]
    fn to_json_round_trips_through_from_json_with_the_same_hash() {
        for body in [
            r#"{"dataset": "Hosts"}"#,
            r#"{"dataset": "crime", "scale": 0.5, "method": "MARIOH-B", "seed": 12}"#,
            r#"{"dataset": "Hosts", "throttle_ms": 9, "model": "job:4",
                "params": {"theta_init": 0.7, "filtering": false, "threads": 3}}"#,
            r#"{"dataset": "Hosts", "timeout_secs": 30, "seed": 2}"#,
            r#"{"edges": "2 0 1 2\n1 1 3\n", "seed": 5}"#,
        ] {
            let spec = parse(body).unwrap();
            let back = JobSpec::from_json(&spec.to_json()).expect("round trip parses");
            assert_eq!(
                spec.content_hash().unwrap(),
                back.content_hash().unwrap(),
                "{body}"
            );
            assert_eq!(spec.throttle_ms, back.throttle_ms, "{body}");
            assert_eq!(spec.timeout_secs, back.timeout_secs, "{body}");
            assert_eq!(spec.model, back.model, "{body}");
        }
    }

    #[test]
    fn canonical_collapses_variants_and_ignores_non_semantic_knobs() {
        // MARIOH-F ≡ MARIOH + filtering:false — same effective
        // computation, same hash.
        let a = parse(r#"{"dataset": "Hosts", "method": "MARIOH-F"}"#).unwrap();
        let b = parse(r#"{"dataset": "Hosts", "params": {"filtering": false}}"#).unwrap();
        assert_eq!(a.content_hash().unwrap(), b.content_hash().unwrap());

        // threads, throttle_ms, and timeout_secs never change the
        // result, so they never change the hash.
        let base = parse(r#"{"dataset": "Hosts"}"#).unwrap();
        let knobs = parse(
            r#"{"dataset": "Hosts", "throttle_ms": 50, "timeout_secs": 120,
                "params": {"threads": 4}}"#,
        )
        .unwrap();
        assert_eq!(base.content_hash().unwrap(), knobs.content_hash().unwrap());

        // A semantic change does.
        let seeded = parse(r#"{"dataset": "Hosts", "seed": 1}"#).unwrap();
        assert_ne!(base.content_hash().unwrap(), seeded.content_hash().unwrap());
    }

    #[test]
    fn invalid_specs_have_no_canonical_form() {
        let spec = parse(r#"{"dataset": "Hosts", "params": {"theta_init": 1.5}}"#).unwrap();
        assert!(matches!(spec.content_hash(), Err(MariohError::Config(_))));
    }
}
