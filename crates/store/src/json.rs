//! A minimal JSON value, parser, and encoder.
//!
//! The build environment is offline, so the server hand-rolls the small
//! JSON subset it needs instead of depending on `serde`: parsing request
//! bodies and encoding responses. Two deliberate deviations from generic
//! JSON libraries:
//!
//! * Objects are kept as ordered `(key, value)` pair lists **without**
//!   deduplication, so the job layer can reject duplicate hyperparameters
//!   instead of silently taking the last one.
//! * Numbers are `f64` throughout (the grammar's own model); integer
//!   fields re-validate integrality via [`Json::as_u64`].

use std::fmt;

/// Nesting depth cap — far beyond any request the API accepts, but keeps
/// a hostile body from overflowing the parser's stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value (trailing whitespace only).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for a numeric value.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fractional part, within `u64` range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pair list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The first value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn eat(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null", Json::Null),
            Some(b't') => self.eat("true", Json::Bool(true)),
            Some(b'f') => self.eat("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low one.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + second
                                            .checked_sub(0xDC00)
                                            .filter(|v| *v < 0x400)
                                            .ok_or_else(|| {
                                                self.err("invalid low surrogate in string escape")
                                            })?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos past the digits; undo the
                            // shared += 1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged;
                    // the input is already a valid &str.
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..]).expect("input was a str");
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let v: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("number {text:?} overflows at byte {start}"));
        }
        Ok(Json::Num(v))
    }
}

fn escape_into(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Json {
    /// Compact JSON encoding. Integral numbers print without a decimal
    /// point; non-finite numbers (which [`Json::parse`] never produces)
    /// degrade to `null`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if !v.is_finite() => f.write_str("null"),
            Json::Num(v) if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) => {
                write!(f, "{}", *v as i64)
            }
            Json::Num(v) => write!(f, "{v}"),
            Json::Str(s) => escape_into(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(Json::parse("\"a b\"").unwrap(), Json::str("a b"));
        assert_eq!(
            Json::parse("[1, [2], {}]").unwrap(),
            Json::Arr(vec![
                Json::num(1.0),
                Json::Arr(vec![Json::num(2.0)]),
                Json::Obj(vec![])
            ])
        );
        let obj = Json::parse(r#"{"a": 1, "b": {"c": [true]}}"#).unwrap();
        assert_eq!(obj.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(
            obj.get("b").unwrap().get("c").unwrap().as_array().unwrap()[0],
            Json::Bool(true)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote \" slash \\ newline \n tab \t unicode ☃ control \u{1}";
        let encoded = Json::str(original).to_string();
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(original));
        // Surrogate pairs decode to one character.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn duplicate_keys_are_preserved_for_the_caller_to_reject() {
        let obj = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        let pairs = obj.as_object().unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, "k");
        assert_eq!(pairs[1].0, "k");
        // `get` takes the first, by documented contract.
        assert_eq!(obj.get("k").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn rejects_malformed_input_with_positions() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "nul",
            "1 2",
            "\"open",
            "{'a': 1}",
            "[1e999]",
            "\"\u{1}\"",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("byte"), "{bad:?} -> {err}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).unwrap_err().contains("deep"));
    }

    #[test]
    fn display_is_compact_and_integral_aware() {
        let v = Json::Obj(vec![
            ("n".into(), Json::num(3.0)),
            ("x".into(), Json::num(0.25)),
            ("s".into(), Json::str("hi")),
            ("l".into(), Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"n":3,"x":0.25,"s":"hi","l":[null,false]}"#
        );
    }

    #[test]
    fn as_u64_requires_exact_non_negative_integers() {
        assert_eq!(Json::num(7.0).as_u64(), Some(7));
        assert_eq!(Json::num(7.5).as_u64(), None);
        assert_eq!(Json::num(-1.0).as_u64(), None);
        assert_eq!(Json::str("7").as_u64(), None);
    }
}
