//! The storage traits and the in-memory implementation.
//!
//! [`JobStore`] owns job *records* — their lifecycle state, progress, and
//! results — while queueing, worker wakeup, and cancellation tokens stay
//! in the server's orchestration layer. [`ArtifactStore`] is the
//! content-addressed cache: results and trained models keyed by the
//! submitting spec's [`SpecHash`], plus named models.
//!
//! [`MemoryStore`] implements both — the original `JobManager` store,
//! extracted. `crate::disk::DiskStore` is the durable sibling with an
//! identical contract (the shared conformance tests in
//! `crates/store/tests` run against both).

use crate::hash::SpecHash;
use crate::spec::{JobResult, JobSpec, JobStatus, JobView, Transition};
use marioh_core::{MariohError, SavedModel};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Terminal job records retained for polling before the oldest are
/// evicted — the queue capacity bounds queued work, this bounds the
/// store itself, so a long-lived server's memory does not grow without
/// limit. Evicted ids answer 404, like unknown ones. Overridable with
/// `marioh serve --retain`.
pub const DEFAULT_RETAINED_JOBS: usize = 1024;

/// Aggregate counters a store keeps across its lifetime (the durable
/// store reconstructs them on replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs that reached a terminal state.
    pub finished: u64,
}

/// Counts and byte totals of cached artifacts. Byte totals are the
/// *encoded* sizes the store actually holds — post-compression for the
/// disk store's v2 artifacts, plain encoding for the in-memory store —
/// so `/stats` reports the real footprint, not the logical one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArtifactStats {
    /// Cached job results.
    pub results: usize,
    /// Stored trained models (hash-keyed and named).
    pub models: usize,
    /// Encoded bytes of cached results.
    pub result_bytes: u64,
    /// Encoded bytes of stored models (hash-keyed and named).
    pub model_bytes: u64,
}

/// One stored model, as listed by `GET /models`.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// The saved-model name, for named models.
    pub name: Option<String>,
    /// The donor spec hash, for job-derived models.
    pub hash: Option<SpecHash>,
    /// The model's feature mode tag.
    pub mode: String,
}

/// Durable (or not) storage of job records.
///
/// Implementations must make terminal records immutable: once a job is
/// `Done`/`Failed`/`Cancelled`, further [`JobStore::transition`] calls
/// return the existing status without changing anything, and the
/// `finished` counter counts each job exactly once. This is what makes
/// the manager's cancel/finish race benign.
pub trait JobStore: Send + Sync {
    /// Persists a new `Queued` record and returns its id (ids ascend).
    fn submit(&self, spec: &JobSpec, hash: &SpecHash) -> u64;

    /// Marks a queued job `Running` and yields a clone of its spec. The
    /// store keeps its own copy while the job runs — a compaction
    /// snapshot must be able to persist in-flight jobs so a crash
    /// requeues them with their specs intact; terminal transitions drop
    /// the copy (specs can hold multi-MB uploaded hypergraphs). `None`
    /// for unknown ids or jobs not currently queued.
    fn start(&self, id: u64) -> Option<JobSpec>;

    /// Applies a state change; see [`Transition`] for the semantics.
    /// Returns the job's status after the call, or `None` for unknown
    /// (or evicted) ids.
    fn transition(&self, id: u64, t: Transition) -> Option<JobStatus>;

    /// A snapshot of one job, or `None` for unknown ids.
    fn view(&self, id: u64) -> Option<JobView>;

    /// The job's status and (for done jobs) a shared handle to its
    /// result.
    fn result(&self, id: u64) -> Option<(JobStatus, Option<Arc<JobResult>>)>;

    /// The content hash the job was submitted under.
    fn spec_hash(&self, id: u64) -> Option<SpecHash>;

    /// Snapshots of every retained job, ascending by id.
    fn scan(&self) -> Vec<JobView>;

    /// Lifetime counters.
    fn counters(&self) -> StoreCounters;

    /// Persists a batch of new `Queued` records in one call, returning
    /// their ids in order. Semantically identical to calling
    /// [`JobStore::submit`] per item; durable implementations override
    /// this to pay one flush + fsync for the whole batch instead of one
    /// per record.
    fn submit_batch(&self, items: &[(JobSpec, SpecHash)]) -> Vec<u64> {
        items
            .iter()
            .map(|(spec, hash)| self.submit(spec, hash))
            .collect()
    }

    /// Applies a batch of state changes in one call, returning each
    /// job's status after its transition (in input order). Semantically
    /// identical to calling [`JobStore::transition`] per item; durable
    /// implementations override this to batch the log appends from a
    /// dispatcher's merge path into one flush + fsync per drain.
    fn transition_batch(&self, items: Vec<(u64, Transition)>) -> Vec<Option<JobStatus>> {
        items
            .into_iter()
            .map(|(id, t)| self.transition(id, t))
            .collect()
    }

    /// Ids of jobs that were queued or running when the store was
    /// opened and must be re-dispatched (ascending; the durable store
    /// resets interrupted `Running` jobs to `Queued` on replay). Drained
    /// once, at manager construction.
    fn recover_queued(&self) -> Vec<u64> {
        Vec::new()
    }

    /// `"memory"` or `"disk"`, surfaced in `/stats`.
    fn kind(&self) -> &'static str;

    /// True once persistent I/O failure has flipped the store to
    /// read-only degraded mode: serving continues from memory + the
    /// artifact overlay, nothing further touches the disk, and
    /// `/healthz` reports `degraded`. Purely in-memory stores never
    /// degrade.
    fn degraded(&self) -> bool {
        false
    }
}

/// Records one artifact-cache probe on the process-wide registry
/// (`marioh_store_artifact_cache_{hits,misses}_total{kind=...}`).
/// Shared by every [`ArtifactStore`] implementation so cache telemetry
/// means the same thing for memory and disk backends.
pub(crate) fn record_cache_probe(kind: &'static str, hit: bool) {
    let name = if hit {
        "marioh_store_artifact_cache_hits_total"
    } else {
        "marioh_store_artifact_cache_misses_total"
    };
    marioh_obs::global()
        .counter_with(name, &[("kind", kind)])
        .inc();
}

/// Records bytes written for a freshly stored artifact
/// (`marioh_store_artifact_bytes_total{kind=...}`).
pub(crate) fn record_artifact_bytes(kind: &'static str, bytes: u64) {
    marioh_obs::global()
        .counter_with("marioh_store_artifact_bytes_total", &[("kind", kind)])
        .add(bytes);
}

/// Content-addressed storage of reconstruction results and trained
/// models.
///
/// Keys are [`SpecHash`]es — identical submissions share one slot, so
/// `put` on an existing key may overwrite (the content is identical by
/// construction) or keep the original; both are correct.
pub trait ArtifactStore: Send + Sync {
    /// Caches a job result under its spec hash.
    ///
    /// # Errors
    ///
    /// [`MariohError::Io`] when the backing storage fails.
    fn put_result(&self, hash: &SpecHash, result: &Arc<JobResult>) -> Result<(), MariohError>;

    /// The cached result for a spec hash, if any.
    fn get_result(&self, hash: &SpecHash) -> Option<Arc<JobResult>>;

    /// Cheap presence probe: may return a false positive (an
    /// implementation backed by an approximate-membership filter
    /// answers from memory), never a false negative for a result that
    /// [`ArtifactStore::get_result`] would find. Dispatch lookaside
    /// paths call this first so the common cache-miss case skips the
    /// full artifact fetch and decode.
    fn contains_result(&self, hash: &SpecHash) -> bool {
        self.get_result(hash).is_some()
    }

    /// Stores the model a job trained, keyed by the job's spec hash.
    ///
    /// # Errors
    ///
    /// [`MariohError::Io`] when the backing storage fails.
    fn put_model(&self, hash: &SpecHash, model: &SavedModel) -> Result<(), MariohError>;

    /// The stored model for a spec hash, if any.
    fn get_model(&self, hash: &SpecHash) -> Option<SavedModel>;

    /// Saves a model under a name (see
    /// [`crate::spec::validate_model_name`]).
    ///
    /// # Errors
    ///
    /// [`MariohError::Config`] for invalid names, [`MariohError::Io`]
    /// when the backing storage fails.
    fn put_named_model(&self, name: &str, model: &SavedModel) -> Result<(), MariohError>;

    /// The named model, if any.
    fn get_named_model(&self, name: &str) -> Option<SavedModel>;

    /// Every stored model (named and job-derived), names first, sorted.
    fn list_models(&self) -> Vec<ModelEntry>;

    /// Counts of cached artifacts.
    fn artifact_stats(&self) -> ArtifactStats;
}

/// One job record as the stores keep it.
#[derive(Debug, Clone)]
pub(crate) struct Record {
    /// Taken (not cloned) by [`JobStore::start`]; dropped on
    /// cancellation.
    pub spec: Option<JobSpec>,
    pub hash: SpecHash,
    pub status: JobStatus,
    pub rounds: usize,
    pub committed: usize,
    pub error: Option<String>,
    /// Shared, not cloned, on reads. The disk store leaves this `None`
    /// for replayed `Done` records and loads the artifact lazily.
    pub result: Option<Arc<JobResult>>,
    pub cached: bool,
}

impl Record {
    /// Rough snapshot-encoded size of a terminal record (fixed framing
    /// plus the only unbounded field it retains, the error/note text) —
    /// the unit the byte-budget retention policy accounts in.
    pub(crate) fn estimated_bytes(&self) -> u64 {
        128 + self.error.as_ref().map_or(0, |e| e.len() as u64)
    }

    pub(crate) fn queued(spec: JobSpec, hash: SpecHash) -> Record {
        Record {
            spec: Some(spec),
            hash,
            status: JobStatus::Queued,
            rounds: 0,
            committed: 0,
            error: None,
            result: None,
            cached: false,
        }
    }
}

/// The record bookkeeping shared by the memory and disk stores: id
/// allocation, the record map, terminal-order retention, and counters.
#[derive(Debug, Clone)]
pub(crate) struct RecordTable {
    next_id: u64,
    jobs: HashMap<u64, Record>,
    /// Terminal job ids in completion order with their estimated
    /// retained size, for retention eviction.
    terminal_order: VecDeque<(u64, u64)>,
    submitted: u64,
    finished: u64,
    retain: usize,
    /// Optional byte ceiling for retained terminal records — the
    /// record-table slice of `--store-budget`. Evicts oldest-first like
    /// the count cap, but never below [`MIN_RETAINED_JOBS`].
    record_budget: Option<u64>,
    terminal_bytes: u64,
}

/// Floor under byte-budget eviction: even the tightest `--store-budget`
/// keeps this many terminal records pollable.
pub(crate) const MIN_RETAINED_JOBS: usize = 16;

impl RecordTable {
    pub(crate) fn new(retain: usize) -> RecordTable {
        RecordTable {
            next_id: 1,
            jobs: HashMap::new(),
            terminal_order: VecDeque::new(),
            submitted: 0,
            finished: 0,
            retain,
            record_budget: None,
            terminal_bytes: 0,
        }
    }

    /// Folds terminal-record retention into a size-aware policy: on top
    /// of the `retain` count cap, evict oldest terminal records while
    /// their estimated bytes exceed `budget`.
    pub(crate) fn set_record_budget(&mut self, budget: Option<u64>) {
        self.record_budget = budget;
    }

    pub(crate) fn submit(&mut self, spec: JobSpec, hash: SpecHash) -> u64 {
        let id = self.next_id;
        self.insert_with_id(id, Record::queued(spec, hash));
        id
    }

    /// Inserts a record under an explicit id (log replay), keeping
    /// `next_id` ahead of every id seen.
    pub(crate) fn insert_with_id(&mut self, id: u64, record: Record) {
        let terminal = record.status.is_terminal();
        self.jobs.insert(id, record);
        self.next_id = self.next_id.max(id + 1);
        self.submitted += 1;
        if terminal {
            self.note_terminal(id);
        }
    }

    pub(crate) fn start(&mut self, id: u64) -> Option<JobSpec> {
        let record = self.jobs.get_mut(&id)?;
        if record.status != JobStatus::Queued {
            return None;
        }
        // Clone rather than take: the table's copy is what a compaction
        // snapshot persists, and a crash mid-run must requeue this job
        // with its spec intact. The duplicate lives only while the job
        // runs — terminal transitions drop it.
        let spec = record.spec.clone()?;
        record.status = JobStatus::Running;
        Some(spec)
    }

    /// Applies a transition; terminal records are immutable (the call
    /// reports their status and changes nothing).
    pub(crate) fn transition(&mut self, id: u64, t: Transition) -> Option<JobStatus> {
        let record = self.jobs.get_mut(&id)?;
        if record.status.is_terminal() {
            return Some(record.status);
        }
        match t {
            Transition::Start => {
                record.status = JobStatus::Running;
            }
            Transition::Progress { rounds, committed } => {
                if let Some(rounds) = rounds {
                    record.rounds = record.rounds.max(rounds);
                }
                if let Some(committed) = committed {
                    record.committed = committed;
                }
            }
            Transition::Note(msg) => {
                record.error = Some(msg);
            }
            Transition::Done { result, cached } => {
                record.status = JobStatus::Done;
                record.result = Some(result);
                record.cached = cached;
                record.spec = None;
                self.note_terminal(id);
            }
            Transition::Failed(msg) => {
                record.status = JobStatus::Failed;
                // The worker's `on_error` observer usually got here
                // first; keep its message rather than overwriting.
                record.error.get_or_insert(msg);
                record.spec = None;
                self.note_terminal(id);
            }
            Transition::Cancelled => {
                record.status = JobStatus::Cancelled;
                // A cancelled-while-queued spec (possibly a multi-MB
                // uploaded hypergraph) would otherwise sit in the
                // retained record.
                record.spec = None;
                self.note_terminal(id);
            }
        }
        self.jobs.get(&id).map(|r| r.status)
    }

    /// Counts a job that just reached a terminal state and evicts the
    /// oldest terminal records beyond the retention cap — by count
    /// (`retain`) and, when a record budget is set, by estimated bytes.
    fn note_terminal(&mut self, id: u64) {
        self.finished += 1;
        let bytes = self.jobs.get(&id).map_or(0, Record::estimated_bytes);
        self.terminal_order.push_back((id, bytes));
        self.terminal_bytes += bytes;
        while self.terminal_order.len() > self.retain || self.over_record_budget() {
            let Some((evicted, evicted_bytes)) = self.terminal_order.pop_front() else {
                break;
            };
            self.jobs.remove(&evicted);
            self.terminal_bytes -= evicted_bytes;
        }
    }

    fn over_record_budget(&self) -> bool {
        match self.record_budget {
            Some(budget) => {
                self.terminal_bytes > budget && self.terminal_order.len() > MIN_RETAINED_JOBS
            }
            None => false,
        }
    }

    pub(crate) fn view(&self, id: u64) -> Option<JobView> {
        let record = self.jobs.get(&id)?;
        Some(JobView {
            id,
            status: record.status,
            rounds: record.rounds,
            committed: record.committed,
            error: record.error.clone(),
            cached: record.cached,
        })
    }

    pub(crate) fn get(&self, id: u64) -> Option<&Record> {
        self.jobs.get(&id)
    }

    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut Record> {
        self.jobs.get_mut(&id)
    }

    pub(crate) fn scan(&self) -> Vec<JobView> {
        let mut ids: Vec<u64> = self.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().filter_map(|id| self.view(id)).collect()
    }

    pub(crate) fn counters(&self) -> StoreCounters {
        StoreCounters {
            submitted: self.submitted,
            finished: self.finished,
        }
    }

    /// Terminal ids in completion order (snapshot writing).
    pub(crate) fn terminal_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.terminal_order.iter().map(|(id, _)| *id)
    }

    /// Overrides the lifetime counters with a snapshot's authoritative
    /// values (per-insert counting misses records evicted before the
    /// snapshot was taken).
    pub(crate) fn set_counters(&mut self, counters: StoreCounters) {
        self.submitted = counters.submitted;
        self.finished = counters.finished;
    }

    /// Marks a replayed record `Done` without a result in memory — the
    /// durable store reloads the artifact lazily by spec hash.
    pub(crate) fn mark_done_replayed(&mut self, id: u64, cached: bool) {
        let Some(record) = self.jobs.get_mut(&id) else {
            return;
        };
        if record.status.is_terminal() {
            return;
        }
        record.status = JobStatus::Done;
        record.cached = cached;
        record.spec = None;
        self.note_terminal(id);
    }

    /// All queued ids, ascending (recovery after replay).
    pub(crate) fn queued_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, r)| r.status == JobStatus::Queued)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Resets interrupted `Running` records to `Queued` (replay: their
    /// worker died with the process).
    pub(crate) fn requeue_running(&mut self) {
        for record in self.jobs.values_mut() {
            if record.status == JobStatus::Running {
                record.status = JobStatus::Queued;
            }
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&u64, &Record)> {
        self.jobs.iter()
    }
}

/// In-memory artifacts, each paired with its encoded size so
/// [`ArtifactStore::artifact_stats`] reports byte totals consistent
/// with the disk backend.
#[derive(Default)]
struct MemoryArtifacts {
    results: HashMap<SpecHash, (Arc<JobResult>, u64)>,
    models: HashMap<SpecHash, (SavedModel, u64)>,
    named: std::collections::BTreeMap<String, (SavedModel, u64)>,
}

fn encoded_model_len(model: &SavedModel) -> u64 {
    let mut buf = Vec::new();
    model.write_to(&mut buf).map_or(0, |()| buf.len() as u64)
}

/// The in-memory store: the original `JobManager` bookkeeping plus an
/// in-process artifact cache. Everything is lost when the process exits;
/// use `crate::disk::DiskStore` for durability.
pub struct MemoryStore {
    table: Mutex<RecordTable>,
    artifacts: Mutex<MemoryArtifacts>,
}

impl MemoryStore {
    /// A store retaining the given number of terminal records.
    pub fn new(retain: usize) -> MemoryStore {
        MemoryStore {
            table: Mutex::new(RecordTable::new(retain)),
            artifacts: Mutex::new(MemoryArtifacts::default()),
        }
    }

    fn table(&self) -> std::sync::MutexGuard<'_, RecordTable> {
        self.table.lock().expect("job store lock poisoned")
    }

    fn artifacts(&self) -> std::sync::MutexGuard<'_, MemoryArtifacts> {
        self.artifacts.lock().expect("artifact store lock poisoned")
    }
}

impl Default for MemoryStore {
    fn default() -> Self {
        MemoryStore::new(DEFAULT_RETAINED_JOBS)
    }
}

impl JobStore for MemoryStore {
    fn submit(&self, spec: &JobSpec, hash: &SpecHash) -> u64 {
        self.table().submit(spec.clone(), *hash)
    }

    fn start(&self, id: u64) -> Option<JobSpec> {
        self.table().start(id)
    }

    fn transition(&self, id: u64, t: Transition) -> Option<JobStatus> {
        self.table().transition(id, t)
    }

    fn view(&self, id: u64) -> Option<JobView> {
        self.table().view(id)
    }

    fn result(&self, id: u64) -> Option<(JobStatus, Option<Arc<JobResult>>)> {
        let table = self.table();
        let record = table.get(id)?;
        Some((record.status, record.result.clone()))
    }

    fn spec_hash(&self, id: u64) -> Option<SpecHash> {
        self.table().get(id).map(|r| r.hash)
    }

    fn scan(&self) -> Vec<JobView> {
        self.table().scan()
    }

    fn counters(&self) -> StoreCounters {
        self.table().counters()
    }

    fn kind(&self) -> &'static str {
        "memory"
    }
}

impl ArtifactStore for MemoryStore {
    fn put_result(&self, hash: &SpecHash, result: &Arc<JobResult>) -> Result<(), MariohError> {
        let mut artifacts = self.artifacts();
        if !artifacts.results.contains_key(hash) {
            let bytes = crate::disk::encode_result(result).len() as u64;
            artifacts.results.insert(*hash, (Arc::clone(result), bytes));
        }
        Ok(())
    }

    fn get_result(&self, hash: &SpecHash) -> Option<Arc<JobResult>> {
        let found = self.artifacts().results.get(hash).map(|(r, _)| r.clone());
        record_cache_probe("result", found.is_some());
        found
    }

    fn contains_result(&self, hash: &SpecHash) -> bool {
        self.artifacts().results.contains_key(hash)
    }

    fn put_model(&self, hash: &SpecHash, model: &SavedModel) -> Result<(), MariohError> {
        let mut artifacts = self.artifacts();
        if !artifacts.models.contains_key(hash) {
            let bytes = encoded_model_len(model);
            artifacts.models.insert(*hash, (model.clone(), bytes));
        }
        Ok(())
    }

    fn get_model(&self, hash: &SpecHash) -> Option<SavedModel> {
        let found = self.artifacts().models.get(hash).map(|(m, _)| m.clone());
        record_cache_probe("model", found.is_some());
        found
    }

    fn put_named_model(&self, name: &str, model: &SavedModel) -> Result<(), MariohError> {
        crate::spec::validate_model_name(name).map_err(MariohError::Config)?;
        let bytes = encoded_model_len(model);
        self.artifacts()
            .named
            .insert(name.to_owned(), (model.clone(), bytes));
        Ok(())
    }

    fn get_named_model(&self, name: &str) -> Option<SavedModel> {
        self.artifacts().named.get(name).map(|(m, _)| m.clone())
    }

    fn list_models(&self) -> Vec<ModelEntry> {
        let artifacts = self.artifacts();
        let mut out: Vec<ModelEntry> = artifacts
            .named
            .iter()
            .map(|(name, (m, _))| ModelEntry {
                name: Some(name.clone()),
                hash: None,
                mode: m.model.feature_mode().tag().to_owned(),
            })
            .collect();
        let mut hashed: Vec<(&SpecHash, &(SavedModel, u64))> = artifacts.models.iter().collect();
        hashed.sort_by_key(|(h, _)| **h);
        out.extend(hashed.into_iter().map(|(h, (m, _))| ModelEntry {
            name: None,
            hash: Some(*h),
            mode: m.model.feature_mode().tag().to_owned(),
        }));
        out
    }

    fn artifact_stats(&self) -> ArtifactStats {
        let artifacts = self.artifacts();
        ArtifactStats {
            results: artifacts.results.len(),
            models: artifacts.models.len() + artifacts.named.len(),
            result_bytes: artifacts.results.values().map(|(_, b)| b).sum(),
            model_bytes: artifacts.models.values().map(|(_, b)| b).sum::<u64>()
                + artifacts.named.values().map(|(_, b)| b).sum::<u64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn spec(body: &str) -> JobSpec {
        JobSpec::from_json(&Json::parse(body).unwrap()).unwrap()
    }

    fn submit(store: &MemoryStore, body: &str) -> u64 {
        let s = spec(body);
        let hash = s.content_hash().unwrap();
        store.submit(&s, &hash)
    }

    #[test]
    fn lifecycle_and_terminal_immutability() {
        let store = MemoryStore::new(8);
        let id = submit(&store, r#"{"dataset": "Hosts"}"#);
        assert_eq!(store.view(id).unwrap().status, JobStatus::Queued);
        let taken = store.start(id).expect("spec taken once");
        assert!(matches!(taken.input, crate::spec::JobInput::Dataset { .. }));
        assert!(store.start(id).is_none(), "spec is taken, not cloned");
        store.transition(
            id,
            Transition::Progress {
                rounds: Some(3),
                committed: Some(17),
            },
        );
        store.transition(id, Transition::Cancelled);
        // A worker's late failure cannot resurrect a cancelled job...
        let status = store.transition(id, Transition::Failed("late".into()));
        assert_eq!(status, Some(JobStatus::Cancelled));
        // ...and the job was counted terminal exactly once.
        assert_eq!(store.counters().finished, 1);
        let view = store.view(id).unwrap();
        assert_eq!((view.rounds, view.committed), (3, 17));
    }

    #[test]
    fn retention_evicts_oldest_terminal_records() {
        let store = MemoryStore::new(3);
        let ids: Vec<u64> = (0..5)
            .map(|_| {
                let id = submit(&store, r#"{"dataset": "Hosts"}"#);
                store.start(id).unwrap();
                store.transition(id, Transition::Failed("boom".into()));
                id
            })
            .collect();
        for old in &ids[..2] {
            assert!(store.view(*old).is_none());
            assert!(store.result(*old).is_none());
        }
        for recent in &ids[2..] {
            assert_eq!(store.view(*recent).unwrap().status, JobStatus::Failed);
        }
        assert_eq!(store.counters().finished, 5);
        assert_eq!(store.scan().len(), 3);
    }

    #[test]
    fn artifact_cache_stores_results_and_models() {
        use marioh_hypergraph::hyperedge::edge;
        let store = MemoryStore::default();
        let s = spec(r#"{"dataset": "Hosts", "seed": 4}"#);
        let hash = s.content_hash().unwrap();
        assert!(store.get_result(&hash).is_none());
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        h.add_edge(edge(&[0, 1]));
        let result = Arc::new(JobResult {
            reconstruction: h,
            jaccard: 0.75,
        });
        store.put_result(&hash, &result).unwrap();
        let cached = store.get_result(&hash).unwrap();
        assert_eq!(cached.jaccard, 0.75);
        assert_eq!(store.artifact_stats().results, 1);
        assert!(store.put_named_model("bad/name", &dummy_model()).is_err());
        store.put_named_model("good-name", &dummy_model()).unwrap();
        assert!(store.get_named_model("good-name").is_some());
        assert_eq!(store.artifact_stats().models, 1);
        let listed = store.list_models();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name.as_deref(), Some("good-name"));
    }

    fn dummy_model() -> SavedModel {
        use marioh_core::training::{train_classifier, TrainingConfig};
        use marioh_hypergraph::hyperedge::edge;
        use rand::{rngs::StdRng, SeedableRng};
        let mut h = marioh_hypergraph::Hypergraph::new(0);
        for b in 0..12u32 {
            h.add_edge(edge(&[b * 3, b * 3 + 1, b * 3 + 2]));
            h.add_edge(edge(&[b * 3, b * 3 + 1]));
        }
        let mut rng = StdRng::seed_from_u64(0);
        SavedModel::bare(train_classifier(&h, &TrainingConfig::default(), &mut rng))
    }
}
