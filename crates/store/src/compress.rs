//! Std-only LZSS-class block compression for stored artifacts.
//!
//! Results and models dominate the store's disk footprint and compress
//! well (CSR adjacency text, weight matrices with repeated structure).
//! The codec is deliberately boring: byte-oriented LZSS with a 64 KiB
//! window, framed so `decompress` can validate the output length before
//! allocating. No external crates — the container is offline.
//!
//! ## Block framing
//!
//! ```text
//! [orig_len: u32 LE] [token stream]
//! ```
//!
//! The token stream is groups of up to eight tokens, each group led by
//! a flag byte read LSB-first: bit clear = literal (one byte), bit set
//! = back-reference (`dist: u16 LE` 1-based, `len: u8` storing
//! `match_len - MIN_MATCH`). Matches are `MIN_MATCH..=MAX_MATCH` bytes
//! and may overlap their own output (run-length case). A final partial
//! group is terminated by the output-length bound, not a sentinel.

/// Shortest back-reference worth emitting (below this a literal is
/// smaller than the 3-byte match token).
const MIN_MATCH: usize = 4;
/// `MIN_MATCH + u8::MAX`: the longest match a one-byte length encodes.
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Window the u16 distance can reach back.
const MAX_DIST: usize = u16::MAX as usize;
/// Hash-table size for the match finder (single probe, last-write-wins).
const HASH_BITS: u32 = 15;

fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` into a self-framed block. Never fails; worst case
/// (incompressible input) the output is `input.len() * 9 / 8 + 6`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    let mut table = vec![0usize; 1 << HASH_BITS]; // stores pos + 1; 0 = empty
    let mut pos = 0usize;
    // One flag byte per group of 8 tokens, allocated lazily so empty
    // input stays header-only; the flag byte is patched in place as its
    // group fills.
    let mut flag_at = 0usize;
    let mut flag_bit = 8u8;
    let mut push_token = |out: &mut Vec<u8>, is_match: bool| {
        if flag_bit == 8 {
            flag_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        if is_match {
            out[flag_at] |= 1 << flag_bit;
        }
        flag_bit += 1;
    };
    while pos < input.len() {
        let mut match_len = 0usize;
        let mut match_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let cand = table[h];
            table[h] = pos + 1;
            if cand > 0 {
                let cand = cand - 1;
                let dist = pos - cand;
                if (1..=MAX_DIST).contains(&dist) {
                    let limit = (input.len() - pos).min(MAX_MATCH);
                    let mut l = 0usize;
                    while l < limit && input[cand + l] == input[pos + l] {
                        l += 1;
                    }
                    if l >= MIN_MATCH {
                        match_len = l;
                        match_dist = dist;
                    }
                }
            }
        }
        if match_len >= MIN_MATCH {
            push_token(&mut out, true);
            out.extend_from_slice(&(match_dist as u16).to_le_bytes());
            out.push((match_len - MIN_MATCH) as u8);
            // Seed the table across the matched span so later matches
            // can reference into it; skip the last 3 bytes (no 4-gram).
            let end = (pos + match_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            let mut p = pos + 1;
            while p < end {
                table[hash4(&input[p..])] = p + 1;
                p += 1;
            }
            pos += match_len;
        } else {
            push_token(&mut out, false);
            out.push(input[pos]);
            pos += 1;
        }
    }
    out
}

/// Decompress a block produced by [`compress`]. Validates framing and
/// the declared length; truncated or corrupt input is an error, never a
/// panic or over-allocation.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, String> {
    if input.len() < 4 {
        return Err("compressed block shorter than its length header".into());
    }
    let orig_len = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
    let mut out = Vec::with_capacity(orig_len);
    let mut pos = 4usize;
    while out.len() < orig_len {
        if pos >= input.len() {
            return Err("compressed block truncated mid-stream".into());
        }
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() == orig_len {
                break;
            }
            if flags & (1 << bit) == 0 {
                let b = *input
                    .get(pos)
                    .ok_or("compressed block truncated inside a literal")?;
                out.push(b);
                pos += 1;
            } else {
                if pos + 3 > input.len() {
                    return Err("compressed block truncated inside a match token".into());
                }
                let dist = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                let len = MIN_MATCH + input[pos + 2] as usize;
                pos += 3;
                if dist == 0 || dist > out.len() {
                    return Err(format!(
                        "match distance {dist} reaches before the start of the block"
                    ));
                }
                if out.len() + len > orig_len {
                    return Err("match overruns the declared block length".into());
                }
                let start = out.len() - dist;
                // Byte-by-byte: overlapping copies are the RLE case.
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    if pos != input.len() {
        return Err("trailing bytes after the compressed stream".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        let unpacked = decompress(&packed).expect("decompress");
        assert_eq!(
            unpacked,
            data,
            "round-trip mismatch for {} bytes",
            data.len()
        );
    }

    #[test]
    fn round_trips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcabcabcabcabcabcabc");
        roundtrip(&[0u8; 10_000]);
        roundtrip(&(0..=255u8).cycle().take(70_000).collect::<Vec<_>>());
    }

    #[test]
    fn compresses_repetitive_input() {
        let data: Vec<u8> = b"edge 1 2 3 multiplicity 4\n".repeat(500);
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 4,
            "repetitive text should compress >4x ({} -> {})",
            data.len(),
            packed.len()
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn incompressible_input_grows_boundedly() {
        // A pseudo-random byte soup: no 4-gram repeats within the window
        // is unlikely, but the hard bound is 9/8 + framing regardless.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let packed = compress(&data);
        assert!(packed.len() <= data.len() * 9 / 8 + 6);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn rejects_torn_and_corrupt_blocks() {
        let packed = compress(&b"abcabcabcabcabcabc".repeat(20));
        assert!(decompress(&packed[..2]).is_err(), "short header");
        assert!(
            decompress(&packed[..packed.len() - 1]).is_err(),
            "torn tail"
        );
        let mut trailing = packed.clone();
        trailing.push(0);
        assert!(decompress(&trailing).is_err(), "trailing bytes");
        let mut bad_dist = compress(b"xyz");
        // First token is a literal flag byte + literal; force a match
        // token pointing before the start instead.
        bad_dist.truncate(4);
        bad_dist.push(0b0000_0001);
        bad_dist.extend_from_slice(&5u16.to_le_bytes());
        bad_dist.push(0);
        assert!(decompress(&bad_dist).is_err(), "distance before start");
    }
}
