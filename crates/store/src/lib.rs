//! `marioh-store`: the persistence layer of the MARIOH serving stack.
//!
//! MARIOH's pipeline is deterministic — identical `(input, method,
//! params, seed)` always yields the same reconstruction — which makes
//! three ROADMAP items one storage subsystem:
//!
//! * **Canonical specs** ([`spec`]): a [`JobSpec`] has a canonical byte
//!   encoding and a SHA-256 [`SpecHash`] that is independent of JSON key
//!   order, whitespace, omitted-vs-explicit defaults, and non-semantic
//!   knobs (`threads`, `throttle_ms`) — two specs hash equal iff they
//!   describe the same computation.
//! * **Job records** ([`store::JobStore`]): lifecycle state, progress,
//!   and results, behind a trait with an in-memory implementation
//!   ([`store::MemoryStore`], extracted from the server's `JobManager`)
//!   and a durable one ([`disk::DiskStore`]) built on an append-only
//!   record log + snapshot — a restarted server serves pre-crash results
//!   and re-queues interrupted jobs.
//! * **Artifacts** ([`store::ArtifactStore`]): a content-addressed cache
//!   keyed by spec hash, holding [`JobResult`]s (repeat submissions
//!   answer instantly, marked `cached`) and trained models
//!   ([`marioh_core::SavedModel`], including the donor's post-training
//!   RNG state so transfer jobs reproduce the donor bit-for-bit), plus
//!   named models for `marioh model export/import`.
//!
//! The server's `JobManager` is orchestration only — queueing, worker
//! wakeup, cancellation tokens — over `Arc<dyn JobStore>` +
//! `Arc<dyn ArtifactStore>`; everything that outlives a process lives
//! here. On-disk format versions and their migration notes are tracked
//! in `crates/store/FORMATS.md` (CI refuses version bumps without a
//! note).

#![warn(missing_docs)]

pub mod compress;
pub mod disk;
pub mod filter;
pub mod hash;
pub mod json;
pub mod segment;
pub mod spec;
pub mod store;

pub use disk::{decode_result, encode_result, DiskStore, StoreTuning, STORE_FORMAT_VERSION};
pub use hash::SpecHash;
pub use json::Json;
pub use spec::{
    variant_by_name, JobInput, JobParams, JobResult, JobSpec, JobStatus, JobView, ModelRef,
    Transition, MAX_THROTTLE_MS,
};
pub use store::{
    ArtifactStats, ArtifactStore, JobStore, MemoryStore, ModelEntry, StoreCounters,
    DEFAULT_RETAINED_JOBS,
};

#[cfg(test)]
mod format_guard {
    /// The format-version ledger must name every version in use; CI runs
    /// the same check textually so a bump without a migration note fails
    /// even before tests run.
    #[test]
    fn formats_md_documents_the_current_versions() {
        let ledger = include_str!("../FORMATS.md");
        for (what, version) in [
            ("store", crate::STORE_FORMAT_VERSION),
            ("model", marioh_core::MODEL_FORMAT_VERSION),
        ] {
            let heading = format!("## {what} v{version}");
            assert!(
                ledger.contains(&heading),
                "FORMATS.md is missing a {heading:?} migration note — \
                 document the format change before bumping the constant"
            );
        }
    }
}
