//! Content hashing for the artifact store.
//!
//! The build environment is offline, so the store carries its own
//! dependency-free SHA-256 (FIPS 180-4). The hash addresses cached
//! artifacts on disk and across processes, so it must be collision-proof
//! against adversarial uploads — a 64-bit mixing hash would not be.

use std::fmt;

/// A 256-bit content hash, rendered as 64 lower-case hex digits.
///
/// Computed over a [`crate::spec::JobSpec`]'s canonical byte encoding and
/// used as the key of every cached result and trained model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecHash([u8; 32]);

impl SpecHash {
    /// Hashes `bytes` with SHA-256.
    pub fn of(bytes: &[u8]) -> SpecHash {
        SpecHash(sha256(bytes))
    }

    /// The raw digest.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Reconstructs a hash from its raw digest (inverse of
    /// [`SpecHash::as_bytes`]; used when a hash crosses the wire).
    pub fn from_bytes(digest: [u8; 32]) -> SpecHash {
        SpecHash(digest)
    }

    /// The 64-digit lower-case hex rendering (also the `Display` form).
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for b in self.0 {
            out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        out
    }

    /// Parses the hex rendering produced by [`SpecHash::to_hex`].
    pub fn from_hex(hex: &str) -> Option<SpecHash> {
        if hex.len() != 64 || !hex.is_ascii() {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, pair) in hex.as_bytes().chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(SpecHash(out))
    }
}

impl fmt::Display for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for SpecHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpecHash({})", self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn sha256(input: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Pad: the message, 0x80, zeros, and the 64-bit bit length.
    let bit_len = (input.len() as u64).wrapping_mul(8);
    let mut message = input.to_vec();
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in message.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fips_180_4_test_vectors() {
        // Empty string and "abc", from the NIST examples.
        assert_eq!(
            SpecHash::of(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            SpecHash::of(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            SpecHash::of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn multi_block_messages_hash_correctly() {
        // One million 'a's — the classic long NIST vector — exercises
        // many compression blocks and the length padding.
        let input = vec![b'a'; 1_000_000];
        assert_eq!(
            SpecHash::of(&input).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let h = SpecHash::of(b"round trip");
        assert_eq!(SpecHash::from_hex(&h.to_hex()), Some(h));
        assert_eq!(SpecHash::from_hex("abc"), None);
        assert_eq!(SpecHash::from_hex(&"g".repeat(64)), None);
    }
}
