//! Std-only xor filter: approximate membership over artifact hash keys.
//!
//! The store consults these before touching disk, so a cache-*miss*
//! probe — the common case on a fresh corpus — answers negative from
//! memory instead of paying a file-open syscall. Construction follows
//! Graf & Lemire's 8-bit xor filter: three hash positions per key, a
//! peeling pass to find a construction order, then back-substitution of
//! fingerprints. Guarantees: **no false negatives** for the keys it was
//! built over; false positives at roughly `2^-8` (~0.4%), each costing
//! one wasted disk probe and nothing else.
//!
//! Filters are persisted next to sealed WAL segments (`seg-*.filter`)
//! and rebuilt over the full live set on compaction (`base.filter`);
//! the serialized form is versioned and checksummed so a torn write is
//! detected and the filter silently rebuilt from the segment instead.

/// Serialized-filter magic + version ("marioh xor filter v1").
const FILTER_MAGIC: [u8; 4] = *b"MXF1";

/// Derive the u64 filter key for an artifact hash, mixed with a
/// per-kind constant so a cached *model* for a spec does not make the
/// *result* probe for the same spec a guaranteed false positive.
pub fn filter_key(hash: &[u8; 32], kind_salt: u64) -> u64 {
    let lane = u64::from_le_bytes(hash[..8].try_into().unwrap());
    splitmix(lane ^ kind_salt)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix_with_seed(key: u64, seed: u64) -> u64 {
    splitmix(key ^ seed)
}

/// Multiply-shift reduction of a 32-bit lane onto `0..n`.
fn reduce(lane: u32, n: u32) -> u32 {
    ((lane as u64 * n as u64) >> 32) as u32
}

/// An immutable 8-bit xor filter over `u64` keys.
#[derive(Clone, Debug)]
pub struct XorFilter {
    seed: u64,
    block: u32,
    fingerprints: Vec<u8>,
}

impl XorFilter {
    /// Build a filter over `keys` (duplicates are fine). Construction
    /// retries with fresh seeds until peeling succeeds; for the ~1.23x
    /// slack used here a handful of attempts always suffices.
    pub fn build(keys: &[u64]) -> XorFilter {
        let mut uniq: Vec<u64> = keys.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.is_empty() {
            return XorFilter {
                seed: 0,
                block: 0,
                fingerprints: Vec::new(),
            };
        }
        let block = (((uniq.len() as f64 * 1.23) as u32 + 32).div_ceil(3)).max(2);
        for attempt in 0u64.. {
            let seed = splitmix(0xA076_1D64_78BD_642F ^ attempt);
            if let Some(filter) = Self::try_build(&uniq, seed, block) {
                return filter;
            }
        }
        unreachable!("xor filter peeling retries forever with fresh seeds")
    }

    fn positions(key: u64, seed: u64, block: u32) -> [usize; 3] {
        let h = mix_with_seed(key, seed);
        let r0 = reduce((h & 0xFFFF_FFFF) as u32, block);
        let r1 = reduce(((h >> 21) & 0xFFFF_FFFF) as u32, block);
        let r2 = reduce((h >> 32) as u32, block);
        [
            r0 as usize,
            (block + r1) as usize,
            (2 * block + r2) as usize,
        ]
    }

    fn fingerprint(key: u64, seed: u64) -> u8 {
        // A separate mix from the position hash: the third position
        // lane (`h >> 32`) feeds a multiply-shift reduction dominated by
        // its *high* bits, so reusing that hash's top byte as the
        // fingerprint would correlate slot choice with fingerprint and
        // quintuple the false-positive rate.
        (mix_with_seed(key, seed ^ 0xFF51_AFD7_ED55_8CCD) >> 56) as u8
    }

    fn try_build(keys: &[u64], seed: u64, block: u32) -> Option<XorFilter> {
        let capacity = 3 * block as usize;
        // Peeling: each slot tracks how many keys map to it and the xor
        // of those keys; slots with exactly one key are peelable.
        let mut count = vec![0u32; capacity];
        let mut xor_key = vec![0u64; capacity];
        for &k in keys {
            for p in Self::positions(k, seed, block) {
                count[p] += 1;
                xor_key[p] ^= k;
            }
        }
        let mut stack: Vec<(u64, usize)> = Vec::with_capacity(keys.len());
        let mut queue: Vec<usize> = (0..capacity).filter(|&i| count[i] == 1).collect();
        while let Some(slot) = queue.pop() {
            if count[slot] != 1 {
                continue;
            }
            let k = xor_key[slot];
            stack.push((k, slot));
            for p in Self::positions(k, seed, block) {
                count[p] -= 1;
                xor_key[p] ^= k;
                if count[p] == 1 {
                    queue.push(p);
                }
            }
        }
        if stack.len() != keys.len() {
            return None; // peeling stuck on a cycle; retry with a new seed
        }
        let mut fingerprints = vec![0u8; capacity];
        for &(k, slot) in stack.iter().rev() {
            let [p0, p1, p2] = Self::positions(k, seed, block);
            let fp = Self::fingerprint(k, seed)
                ^ fingerprints[p0]
                ^ fingerprints[p1]
                ^ fingerprints[p2]
                ^ fingerprints[slot]; // slot is one of p0..p2; cancel the double-xor
            fingerprints[slot] = fp;
        }
        Some(XorFilter {
            seed,
            block,
            fingerprints,
        })
    }

    /// May `key` be in the set? `false` is definitive; `true` is
    /// probably-present (fp rate ~2^-8).
    pub fn may_contain(&self, key: u64) -> bool {
        if self.block == 0 {
            return false;
        }
        let [p0, p1, p2] = Self::positions(key, self.seed, self.block);
        Self::fingerprint(key, self.seed)
            == self.fingerprints[p0] ^ self.fingerprints[p1] ^ self.fingerprints[p2]
    }

    /// Approximate heap size, for gauges.
    pub fn bytes(&self) -> usize {
        self.fingerprints.len() + 16
    }

    /// Serialize: magic, seed, block, fingerprint bytes, then a
    /// checksum over everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.fingerprints.len() + 28);
        out.extend_from_slice(&FILTER_MAGIC);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.block.to_le_bytes());
        out.extend_from_slice(&(self.fingerprints.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.fingerprints);
        let crc = crate::segment::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse a serialized filter; any framing or checksum mismatch is
    /// an error (callers rebuild from the WAL segment instead).
    pub fn from_bytes(data: &[u8]) -> Result<XorFilter, String> {
        if data.len() < 24 || data[..4] != FILTER_MAGIC {
            return Err("not a marioh xor filter".into());
        }
        let body = &data[..data.len() - 4];
        let crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        if crate::segment::crc32(body) != crc {
            return Err("xor filter checksum mismatch".into());
        }
        let seed = u64::from_le_bytes(data[4..12].try_into().unwrap());
        let block = u32::from_le_bytes(data[12..16].try_into().unwrap());
        let len = u32::from_le_bytes(data[16..20].try_into().unwrap()) as usize;
        let fingerprints = body[20..].to_vec();
        if fingerprints.len() != len || len != 3 * block as usize {
            return Err("xor filter length mismatch".into());
        }
        Ok(XorFilter {
            seed,
            block,
            fingerprints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64, salt: u64) -> Vec<u64> {
        (0..n).map(|i| splitmix(i ^ salt)).collect()
    }

    #[test]
    fn no_false_negatives() {
        for n in [0u64, 1, 2, 3, 17, 100, 5_000] {
            let ks = keys(n, 7);
            let f = XorFilter::build(&ks);
            for k in &ks {
                assert!(f.may_contain(*k), "false negative at n={n}");
            }
        }
    }

    #[test]
    fn false_positive_rate_is_bounded() {
        let ks = keys(10_000, 42);
        let f = XorFilter::build(&ks);
        let probes = 100_000u64;
        let fps = (0..probes)
            .map(|i| splitmix(i ^ 0xDEAD_BEEF))
            .filter(|k| f.may_contain(*k))
            .count();
        // Expected ~0.39%; 2% leaves generous slack.
        assert!(
            fps < (probes as usize) / 50,
            "fp rate too high: {fps}/{probes}"
        );
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = XorFilter::build(&[]);
        assert!(!f.may_contain(0));
        assert!(!f.may_contain(u64::MAX));
        let back = XorFilter::from_bytes(&f.to_bytes()).unwrap();
        assert!(!back.may_contain(12345));
    }

    #[test]
    fn serialization_round_trips_and_rejects_corruption() {
        let ks = keys(500, 3);
        let f = XorFilter::build(&ks);
        let bytes = f.to_bytes();
        let back = XorFilter::from_bytes(&bytes).unwrap();
        for k in &ks {
            assert!(back.may_contain(*k));
        }
        let mut torn = bytes.clone();
        torn.truncate(torn.len() - 3);
        assert!(XorFilter::from_bytes(&torn).is_err());
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(XorFilter::from_bytes(&flipped).is_err());
        assert!(XorFilter::from_bytes(b"nope").is_err());
    }

    #[test]
    fn kind_salt_separates_keyspaces() {
        let hash = [9u8; 32];
        assert_ne!(filter_key(&hash, 1), filter_key(&hash, 2));
    }
}
