//! CRC-framed, size-capped WAL segments.
//!
//! Store v2 replaces the single textual `jobs.log` with binary segment
//! files under `wal/`. Each segment carries a header naming the first
//! sequence number it holds, then a run of framed records:
//!
//! ```text
//! header:  [magic "MSEG"] [version: u32 LE] [first_seq: u64 LE]
//! record:  [payload_len: u32 LE] [seq: u64 LE] [crc32: u32 LE] [payload]
//! ```
//!
//! The checksum covers `seq || payload`, so a frame cannot be replayed
//! under the wrong sequence number. Recovery is a prefix scan per
//! segment: an *incomplete* trailing frame (crash mid-append) is
//! dropped and reported as `torn`; a *complete* frame with a bad
//! checksum is refused as corruption — unless it is the very last frame
//! in the file, which is indistinguishable from a torn append and is
//! dropped like one. Sequence numbers must be contiguous from the
//! header's `first_seq`; any gap or reorder is refused outright.

use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Segment header magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"MSEG";
/// Segment framing version (tracks `STORE_FORMAT_VERSION`).
pub const SEGMENT_VERSION: u32 = 2;
/// Bytes of header before the first record.
pub const SEGMENT_HEADER_LEN: usize = 16;
/// Framing bytes per record on top of the payload.
pub const FRAME_OVERHEAD: usize = 16;
/// Hard per-record payload cap; a larger length field is garbage.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// IEEE CRC-32, table-driven; the same polynomial the wire crate uses,
/// implemented here so `marioh-store` stays dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// `seg-<first_seq as 16 hex digits>.wal` — lexicographic order is
/// sequence order.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("seg-{first_seq:016x}.wal")
}

/// Companion persisted xor filter for a sealed segment.
pub fn filter_file_name(first_seq: u64) -> String {
    format!("seg-{first_seq:016x}.filter")
}

/// Parse `seg-<hex>.wal` back to its first sequence number.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".wal")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Append-side of one active segment.
pub struct SegmentWriter {
    file: BufWriter<File>,
    path: PathBuf,
    first_seq: u64,
    next_seq: u64,
    bytes: u64,
}

impl SegmentWriter {
    /// Create `dir/seg-<first_seq>.wal` and write its header (buffered;
    /// call [`SegmentWriter::flush`] / [`SegmentWriter::sync`] to make
    /// it visible / durable).
    pub fn create(dir: &Path, first_seq: u64) -> std::io::Result<SegmentWriter> {
        let path = dir.join(segment_file_name(first_seq));
        let file = File::create(&path)?;
        let mut writer = SegmentWriter {
            file: BufWriter::new(file),
            path,
            first_seq,
            next_seq: first_seq,
            bytes: SEGMENT_HEADER_LEN as u64,
        };
        writer.file.write_all(&SEGMENT_MAGIC)?;
        writer.file.write_all(&SEGMENT_VERSION.to_le_bytes())?;
        writer.file.write_all(&first_seq.to_le_bytes())?;
        Ok(writer)
    }

    /// Frame and buffer one record; returns the sequence number it got.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        debug_assert!(payload.len() as u32 <= MAX_PAYLOAD);
        let seq = self.next_seq;
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&seq.to_le_bytes());
        crc_input.extend_from_slice(payload);
        let crc = crc32(&crc_input);
        self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.file.write_all(&seq.to_le_bytes())?;
        self.file.write_all(&crc.to_le_bytes())?;
        self.file.write_all(payload)?;
        self.next_seq += 1;
        self.bytes += (FRAME_OVERHEAD + payload.len()) as u64;
        Ok(seq)
    }

    /// Flush buffered frames to the OS (no fsync).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }

    /// Flush and fsync the segment file.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_all()
    }

    /// Path of the segment file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number of this segment's first record (the filename's).
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes framed so far (header included) — the rotation trigger.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// True if at least one record has been appended.
    pub fn dirty(&self) -> bool {
        self.next_seq > self.first_seq
    }
}

/// Result of prefix-scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// First sequence number per the header (equals the filename's).
    pub first_seq: u64,
    /// `(seq, payload)` for every intact record, in order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// An incomplete or checksum-failed trailing frame was dropped.
    pub torn: bool,
}

/// Scan a segment, applying the recovery policy from the module docs.
/// `expected_first_seq` comes from the filename; a header that
/// disagrees is corruption.
pub fn read_segment(path: &Path, expected_first_seq: u64) -> Result<SegmentScan, String> {
    let mut data = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| format!("cannot read wal segment {}: {e}", path.display()))?;
    let name = path.display();
    if data.len() < SEGMENT_HEADER_LEN {
        // Crash between segment creation and the first header flush.
        return Ok(SegmentScan {
            first_seq: expected_first_seq,
            records: Vec::new(),
            torn: true,
        });
    }
    if data[..4] != SEGMENT_MAGIC {
        return Err(format!("wal segment {name} has a foreign header"));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != SEGMENT_VERSION {
        return Err(format!(
            "wal segment {name} is framing version {version}, this build reads {SEGMENT_VERSION}"
        ));
    }
    let first_seq = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if first_seq != expected_first_seq {
        return Err(format!(
            "wal segment {name} header claims first seq {first_seq}, filename says {expected_first_seq}"
        ));
    }
    let mut records = Vec::new();
    let mut torn = false;
    let mut pos = SEGMENT_HEADER_LEN;
    let mut next_seq = first_seq;
    while pos < data.len() {
        if data.len() - pos < FRAME_OVERHEAD {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(format!(
                "wal segment {name}: record at offset {pos} declares an absurd length {len}"
            ));
        }
        let frame_end = pos + FRAME_OVERHEAD + len as usize;
        if frame_end > data.len() {
            torn = true;
            break;
        }
        let seq = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().unwrap());
        let crc = u32::from_le_bytes(data[pos + 12..pos + 16].try_into().unwrap());
        let payload = &data[pos + 16..frame_end];
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&seq.to_le_bytes());
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            if frame_end == data.len() {
                // Final frame: indistinguishable from a torn append.
                torn = true;
                break;
            }
            return Err(format!(
                "wal segment {name}: checksum mismatch at offset {pos} with intact records after it"
            ));
        }
        if seq != next_seq {
            return Err(format!(
                "wal segment {name}: out-of-order sequence {seq} at offset {pos} (expected {next_seq})"
            ));
        }
        records.push((seq, payload.to_vec()));
        next_seq += 1;
        pos = frame_end;
    }
    Ok(SegmentScan {
        first_seq,
        records,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("marioh-segment-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_records(dir: &Path, first_seq: u64, payloads: &[&[u8]]) -> PathBuf {
        let mut w = SegmentWriter::create(dir, first_seq).unwrap();
        for p in payloads {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        w.path().to_path_buf()
    }

    #[test]
    fn round_trips_records_in_sequence() {
        let dir = tmp_dir("roundtrip");
        let path = write_records(&dir, 7, &[b"alpha", b"", b"gamma"]);
        let scan = read_segment(&path, 7).unwrap();
        assert!(!scan.torn);
        assert_eq!(
            scan.records,
            vec![
                (7, b"alpha".to_vec()),
                (8, Vec::new()),
                (9, b"gamma".to_vec())
            ]
        );
    }

    #[test]
    fn torn_tail_drops_only_the_incomplete_frame() {
        let dir = tmp_dir("torn");
        let path = write_records(&dir, 1, &[b"keep-me", b"half-written"]);
        let full = std::fs::read(&path).unwrap();
        for cut in 1..(FRAME_OVERHEAD + b"half-written".len()) {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let scan = read_segment(&path, 1).unwrap();
            assert!(scan.torn, "cut {cut} should read as torn");
            assert_eq!(scan.records, vec![(1, b"keep-me".to_vec())]);
        }
    }

    #[test]
    fn interior_checksum_damage_is_refused() {
        let dir = tmp_dir("interior");
        let path = write_records(&dir, 1, &[b"first", b"second"]);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte of the FIRST record: a complete later
        // record exists, so this is corruption, not a torn tail.
        let first_payload_at = SEGMENT_HEADER_LEN + FRAME_OVERHEAD;
        data[first_payload_at] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let err = read_segment(&path, 1).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn damaged_final_frame_reads_as_torn() {
        let dir = tmp_dir("final-frame");
        let path = write_records(&dir, 1, &[b"first", b"second"]);
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let scan = read_segment(&path, 1).unwrap();
        assert!(scan.torn);
        assert_eq!(scan.records, vec![(1, b"first".to_vec())]);
    }

    #[test]
    fn out_of_order_sequence_is_refused() {
        let dir = tmp_dir("seq");
        let path = write_records(&dir, 1, &[b"one"]);
        // Append a hand-built frame with seq 5 (valid CRC, wrong seq).
        let payload = b"five";
        let mut crc_input = Vec::new();
        crc_input.extend_from_slice(&5u64.to_le_bytes());
        crc_input.extend_from_slice(payload);
        let crc = crc32(&crc_input);
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        data.extend_from_slice(&5u64.to_le_bytes());
        data.extend_from_slice(&crc.to_le_bytes());
        data.extend_from_slice(payload);
        std::fs::write(&path, &data).unwrap();
        let err = read_segment(&path, 1).unwrap_err();
        assert!(err.contains("out-of-order sequence 5"), "{err}");
    }

    #[test]
    fn foreign_headers_and_garbage_lengths_are_refused() {
        let dir = tmp_dir("foreign");
        let path = dir.join(segment_file_name(3));
        std::fs::write(&path, b"definitely not a segment header").unwrap();
        assert!(read_segment(&path, 3)
            .unwrap_err()
            .contains("foreign header"));

        let path2 = write_records(&dir, 3, &[]);
        let mut data = std::fs::read(&path2).unwrap();
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path2, &data).unwrap();
        assert!(read_segment(&path2, 3)
            .unwrap_err()
            .contains("absurd length"));

        // Header shorter than SEGMENT_HEADER_LEN: crash before first
        // flush — reads as an empty torn segment, not an error.
        let path3 = dir.join(segment_file_name(9));
        std::fs::write(&path3, b"MSE").unwrap();
        let scan = read_segment(&path3, 9).unwrap();
        assert!(scan.torn && scan.records.is_empty());
    }

    #[test]
    fn filename_round_trip() {
        assert_eq!(segment_file_name(0x2a), "seg-000000000000002a.wal");
        assert_eq!(
            parse_segment_file_name("seg-000000000000002a.wal"),
            Some(0x2a)
        );
        assert_eq!(parse_segment_file_name("seg-2a.wal"), None);
        assert_eq!(parse_segment_file_name("base.filter"), None);
    }
}
