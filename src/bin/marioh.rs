//! Thin entry point for the `marioh` CLI; see [`marioh::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!(
            "usage: marioh <generate|project|split|stats|train|reconstruct|eval|serve|model> [--flags]\n\
             see `marioh::cli` docs for the full flag reference\n\
             exit codes: 0 ok, 2 invalid flags or hyperparameters, 3 I/O failure,\n\
             130 cancelled, 1 other runtime failure"
        );
        std::process::exit(2);
    };
    // `marioh model export …` / `marioh model import …` fold into one
    // hyphenated command name for the flag-only dispatcher.
    let sub = rest.split_first().map(|(s, t)| (s.as_str(), t));
    let (command, rest) = match (command.as_str(), sub) {
        ("model", Some(("export", tail))) => ("model-export".to_owned(), tail),
        ("model", Some(("import", tail))) => ("model-import".to_owned(), tail),
        ("model", _) => {
            eprintln!("usage: marioh model <export|import> [--flags]");
            std::process::exit(2);
        }
        _ => (command.clone(), rest),
    };
    let result =
        marioh::cli::Flags::parse(rest).and_then(|flags| marioh::cli::run(&command, &flags));
    match result {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
