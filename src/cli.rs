//! The `marioh` command-line tool.
//!
//! End-to-end reconstruction from the shell, using the text formats of
//! [`marioh_hypergraph::io`] and the model format of
//! [`marioh_core::persistence`]:
//!
//! ```text
//! marioh generate    --dataset hosts --out h.txt [--scale s]
//! marioh import-benson --stem path/to/email-Enron --out h.txt [--reduced]
//! marioh project     --hypergraph h.txt --out g.txt
//! marioh split       --hypergraph h.txt --source src.txt --target tgt.txt [--seed n]
//! marioh stats       --hypergraph h.txt
//! marioh train       --source src.txt --model model.txt [--features multiplicity|count|motif] [--fraction f] [--seed n]
//! marioh reconstruct --graph g.txt --model model.txt --out rec.txt [--threads 4]
//!                    [--theta t] [--ratio r] [--alpha a] [--no-filtering] [--no-bidirectional]
//!                    [--seed n] [--verbose] [--trace-out trace.json] [--pin-cores]
//! marioh eval        --truth tgt.txt --pred rec.txt
//! marioh serve       [--addr 127.0.0.1:7878] [--workers n] [--queue-cap n]
//!                    [--state-dir dir] [--retain n] [--store-budget bytes[K|M|G]] [--shards n]
//!                    [--job-timeout secs] [--shard-timeout secs] [--faults spec]
//!                    [--pin-cores]
//! marioh model export --state-dir dir (--job id | --name name) --out model.txt
//! marioh model import --state-dir dir --name name --model model.txt
//! ```
//!
//! `train` and `reconstruct` are thin shells over the
//! [`marioh_core::Pipeline`] builder — the same validated entry point the
//! experiment harness uses. Hyperparameters are checked up front
//! (`--theta 1.5` is rejected before any work happens), duplicate flags
//! are an error rather than silently last-wins, and `--verbose` streams
//! the pipeline's [`marioh_core::ProgressObserver`] events (per-round θ,
//! commit counts, stage timings) to stderr while results go to stdout.
//!
//! `serve` turns the same pipeline into a long-running job service (see
//! [`marioh_server`]): it prints the bound address to stderr and serves
//! until the process is killed. With `--state-dir` the job store and
//! artifact cache are durable ([`marioh_store::DiskStore`]): a restarted
//! server serves pre-restart results and resumes its queue. With
//! `--shards n` execution moves from the in-process worker pool to `n`
//! shard worker child processes (each a `marioh shard-worker`, spawned
//! and supervised over the [`marioh_wire`] protocol);
//! results are bit-identical between the two modes. `model
//! export`/`model import` move trained models between a state dir and
//! the unified persistence format of [`marioh_core::persistence`] —
//! exported job models keep their post-training RNG state, so a job
//! referencing the re-imported model still reproduces its donor.
//!
//! Errors are [`MariohError`] end to end; `main` prints them as
//! `error: {message}` and exits with [`MariohError::exit_code`]:
//! 2 for configuration errors, 3 for I/O failures, 130 for cancellation,
//! 1 otherwise. The historical [`CliError`] name remains as an alias.
//!
//! The logic lives here (unit-testable); `src/bin/marioh.rs` is a thin
//! wrapper.

use marioh_core::features::FeatureMode;
use marioh_core::filtering::FilterStats;
use marioh_core::reconstruct::ReconstructionReport;
use marioh_core::search::SearchStats;
use marioh_core::{MariohError, Pipeline, ProgressObserver, Reconstructor as _};
use marioh_datasets::split::split_source_target;
use marioh_datasets::{DatasetStats, PaperDataset};
use marioh_hypergraph::io;
use marioh_hypergraph::metrics::{jaccard, multi_jaccard, precision_recall_f1};
use marioh_server::{Server, ServerConfig, StorageConfig};
use marioh_store::{ArtifactStore as _, DiskStore, JobStore as _};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Historical name of the CLI error type; every command now speaks
/// [`MariohError`] directly.
pub use marioh_core::MariohError as CliError;

/// The `--verbose` observer: streams pipeline progress to stderr so
/// stdout stays machine-readable.
struct VerboseProgress;

impl ProgressObserver for VerboseProgress {
    fn on_filtering_done(&self, stats: &FilterStats, secs: f64) {
        eprintln!(
            "[filtering] {} pairs certified, {} events extracted, {} edges removed ({secs:.3}s)",
            stats.pairs_identified, stats.multiplicity_extracted, stats.edges_removed
        );
    }

    fn on_round(&self, round: usize, theta: f64, stats: &SearchStats) {
        eprintln!(
            "[round {round}] θ={theta:.3} cliques={} committed={}+{} subcliques={} \
             reused={}/{} ({:.1}ms)",
            stats.cliques_enumerated,
            stats.committed_phase1,
            stats.committed_phase2,
            stats.subcliques_sampled,
            stats.cliques_reused,
            stats.cliques_reused + stats.cliques_rescored,
            stats.round_ms
        );
    }

    fn on_commit(&self, round: usize, committed: usize, total_committed: usize) {
        eprintln!("[round {round}] +{committed} hyperedges ({total_committed} total from search)");
    }

    fn on_done(&self, report: &ReconstructionReport) {
        // Reuse totals read back from the process-global metrics
        // registry — the same series `/metrics` exports — rather than a
        // second CLI-side accumulation.
        let snap = marioh_obs::global().snapshot();
        let reused = snap.counter("marioh_engine_cliques_reused_total");
        let rescored = snap.counter("marioh_engine_cliques_rescored_total");
        let ratio = if reused + rescored == 0 {
            0.0
        } else {
            reused as f64 / (reused + rescored) as f64
        };
        eprintln!(
            "[done] filtering {:.3}s, search {:.3}s over {} rounds \
             (engine reuse {:.1}%: {} cliques carried, {} rescored)",
            report.filtering_secs,
            report.search_secs,
            report.rounds.len(),
            ratio * 100.0,
            reused,
            rescored
        );
    }

    fn on_error(&self, msg: &str) {
        eprintln!("[error] {msg}");
    }
}

/// Parsed flags: `--key value` pairs plus boolean switches.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `--key value` / `--switch` style arguments. Passing the
    /// same flag twice is an error, not silent last-wins.
    pub fn parse(args: &[String]) -> Result<Flags, MariohError> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(MariohError::Config(format!(
                    "unexpected positional argument {arg:?}"
                )));
            };
            // Boolean switches take no value.
            if matches!(
                name,
                "no-filtering" | "no-bidirectional" | "reduced" | "verbose" | "smoke" | "pin-cores"
            ) {
                if flags.switch(name) {
                    return Err(MariohError::Config(format!("duplicate flag --{name}")));
                }
                flags.switches.push(name.to_owned());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| MariohError::Config(format!("flag --{name} needs a value")))?;
            if flags
                .values
                .insert(name.to_owned(), value.clone())
                .is_some()
            {
                return Err(MariohError::Config(format!("duplicate flag --{name}")));
            }
            i += 2;
        }
        Ok(flags)
    }

    fn require(&self, key: &str) -> Result<&str, MariohError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| MariohError::Config(format!("missing required flag --{key}")))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, MariohError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| MariohError::Config(format!("invalid value for --{key}: {v:?}"))),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn dataset_by_name(name: &str) -> Result<PaperDataset, MariohError> {
    PaperDataset::resolve(name).map_err(MariohError::Config)
}

/// Parses an optional whole-seconds flag into a `Duration`. An explicit
/// `0` becomes `Duration::ZERO` so [`Server::start`] can reject it with
/// its own message rather than silently meaning "unlimited".
fn secs_flag(flags: &Flags, key: &str) -> Result<Option<Duration>, MariohError> {
    match flags.get(key) {
        None => Ok(None),
        Some(v) => {
            let secs: u64 = v
                .parse()
                .map_err(|_| MariohError::Config(format!("invalid value for --{key}: {v:?}")))?;
            Ok(Some(Duration::from_secs(secs)))
        }
    }
}

/// Builds the `serve` configuration from flags. Worker count defaults to
/// the machine's parallelism (capped at 8); zero values are rejected by
/// [`Server::start`].
fn serve_config(flags: &Flags) -> Result<ServerConfig, MariohError> {
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(8);
    Ok(ServerConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7878").to_owned(),
        workers: flags.get_parsed("workers", default_workers)?,
        queue_cap: flags.get_parsed("queue-cap", 64usize)?,
        shards: flags.get_parsed("shards", 0usize)?,
        shard_worker: Vec::new(), // re-exec this binary as `shard-worker`
        job_timeout: secs_flag(flags, "job-timeout")?,
        shard_timeout: secs_flag(flags, "shard-timeout")?,
        pin_cores: flags.switch("pin-cores"),
    })
}

/// Builds the `serve` storage configuration: `--state-dir` selects the
/// durable store, `--retain` bounds retained terminal records, and
/// `--store-budget` caps artifact bytes (LRU eviction past it).
fn storage_config(flags: &Flags) -> Result<StorageConfig, MariohError> {
    let default = StorageConfig::default();
    let store_budget = match flags.get("store-budget") {
        Some(text) => Some(parse_byte_size(text).ok_or_else(|| {
            MariohError::Config(format!(
                "invalid value for --store-budget: {text:?} \
                 (use bytes or a K/M/G suffix, e.g. 512M)"
            ))
        })?),
        None => None,
    };
    Ok(StorageConfig {
        state_dir: flags.get("state-dir").map(std::path::PathBuf::from),
        retain: flags.get_parsed("retain", default.retain)?,
        store_budget,
    })
}

/// Parses a byte size with an optional K/M/G suffix (powers of 1024):
/// `65536`, `512M`, `8G`.
fn parse_byte_size(text: &str) -> Option<u64> {
    let t = text.trim();
    let (digits, mult) = match t.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&t[..i], 1u64 << 10),
        (i, 'm') | (i, 'M') => (&t[..i], 1 << 20),
        (i, 'g') | (i, 'G') => (&t[..i], 1 << 30),
        _ => (t, 1),
    };
    digits.trim().parse::<u64>().ok()?.checked_mul(mult)
}

/// Opens the durable store named by `--state-dir` read-write, for
/// subcommands that modify it (`model import`). The store holds an
/// exclusive OS lock on the dir, so running these against a serving
/// process fails with a clear error — stop the server first.
fn open_state_dir(flags: &Flags) -> Result<DiskStore, MariohError> {
    let dir = flags.require("state-dir")?;
    DiskStore::open(dir, StorageConfig::default().retain)
}

/// Opens the store named by `--state-dir` **read-only** — no lock, no
/// writes — so `model export` works against a live server's state dir
/// without stopping it.
fn open_state_dir_read_only(flags: &Flags) -> Result<DiskStore, MariohError> {
    DiskStore::open_read_only(flags.require("state-dir")?)
}

/// Runs one subcommand; returns the text to print on success.
pub fn run(command: &str, flags: &Flags) -> Result<String, MariohError> {
    match command {
        "generate" => {
            let ds = dataset_by_name(flags.require("dataset")?)?;
            let scale = flags.get_parsed("scale", ds.default_scale())?;
            let data = ds.generate_scaled(scale);
            let h = if flags.switch("reduced") {
                data.hypergraph.reduce_multiplicity()
            } else {
                data.hypergraph
            };
            io::save_hypergraph(&h, flags.require("out")?)?;
            Ok(format!(
                "wrote {} ({} unique hyperedges, {} events) to {}",
                data.name,
                h.unique_edge_count(),
                h.total_edge_count(),
                flags.require("out")?
            ))
        }
        "import-benson" => {
            let data = marioh_hypergraph::benson::load_benson(flags.require("stem")?)?;
            let h = if flags.switch("reduced") {
                data.hypergraph.reduce_multiplicity()
            } else {
                data.hypergraph
            };
            io::save_hypergraph(&h, flags.require("out")?)?;
            Ok(format!(
                "imported {} unique hyperedges ({} events{}) to {}",
                h.unique_edge_count(),
                h.total_edge_count(),
                if data.timestamped.is_empty() {
                    String::new()
                } else {
                    format!(", {} timestamps", data.timestamped.len())
                },
                flags.require("out")?
            ))
        }
        "project" => {
            let h = io::load_hypergraph(flags.require("hypergraph")?)?;
            let g = marioh_hypergraph::projection::project(&h);
            io::save_graph(&g, flags.require("out")?)?;
            Ok(format!(
                "projected {} hyperedges to {} weighted edges",
                h.unique_edge_count(),
                g.num_edges()
            ))
        }
        "split" => {
            let h = io::load_hypergraph(flags.require("hypergraph")?)?;
            let seed = flags.get_parsed("seed", 0u64)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let (source, target) = split_source_target(&h, &mut rng);
            io::save_hypergraph(&source, flags.require("source")?)?;
            io::save_hypergraph(&target, flags.require("target")?)?;
            Ok(format!(
                "split {} events into source {} / target {}",
                h.total_edge_count(),
                source.total_edge_count(),
                target.total_edge_count()
            ))
        }
        "stats" => {
            let h = io::load_hypergraph(flags.require("hypergraph")?)?;
            let s = DatasetStats::compute(flags.get("name").unwrap_or("hypergraph"), &h);
            let mut out = String::new();
            writeln!(out, "{}", DatasetStats::header()).expect("infallible");
            writeln!(out, "{}", s.row()).expect("infallible");
            Ok(out)
        }
        "train" => {
            let source = io::load_hypergraph(flags.require("source")?)?;
            let mode = match flags.get("features").unwrap_or("multiplicity") {
                "multiplicity" => FeatureMode::Multiplicity,
                "count" => FeatureMode::Count,
                "motif" => FeatureMode::Motif,
                other => return Err(MariohError::Config(format!("unknown feature mode {other:?}"))),
            };
            let pipeline = Pipeline::builder()
                .features(mode)
                .supervision_fraction(flags.get_parsed("fraction", 1.0)?)
                .build()?;
            let seed = flags.get_parsed("seed", 0u64)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let model = pipeline.train(&source, &mut rng)?;
            model.model().save(flags.require("model")?)?;
            Ok(format!(
                "trained a {mode:?} classifier on {} hyperedges; saved to {}",
                source.unique_edge_count(),
                flags.require("model")?
            ))
        }
        "reconstruct" => {
            // Validate hyperparameters before touching any file.
            let mut builder = Pipeline::builder()
                .theta_init(flags.get_parsed("theta", 0.9)?)
                .neg_ratio(flags.get_parsed("ratio", 20.0)?)
                .alpha(flags.get_parsed("alpha", 1.0 / 20.0)?)
                .filtering(!flags.switch("no-filtering"))
                .bidirectional(!flags.switch("no-bidirectional"))
                .threads(flags.get_parsed("threads", 1usize)?)
                .pin_cores(flags.switch("pin-cores"));
            if flags.switch("verbose") {
                builder = builder.observer(Arc::new(VerboseProgress));
            }
            let pipeline = builder.build()?;
            let trace_out = flags.get("trace-out");
            if trace_out.is_some() {
                marioh_obs::trace_start(0); // 0 = default ring capacity
            }
            let g = io::load_graph(flags.require("graph")?)?;
            let model = pipeline.load_model(flags.require("model")?)?;
            let seed = flags.get_parsed("seed", 0u64)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let rec = model.reconstruct(&g, &mut rng)?;
            io::save_hypergraph(&rec, flags.require("out")?)?;
            let mut report = format!(
                "reconstructed {} unique hyperedges ({} events) from {} edges",
                rec.unique_edge_count(),
                rec.total_edge_count(),
                g.num_edges()
            );
            if let Some(path) = trace_out {
                let json = marioh_obs::trace_dump()
                    .expect("recorder was armed above and nothing else disarms it");
                std::fs::write(path, &json)?;
                let _ = write!(report, "; wrote phase trace to {path}");
            }
            Ok(report)
        }
        "serve" => {
            // `--faults` arms the deterministic fault-injection plan
            // (see `marioh_fault` and crates/fault/FORMATS.md). The spec
            // is re-exported through the environment so `shard-worker`
            // children inherit their `shard.K` sites.
            if let Some(spec) = flags.get("faults") {
                let plan = marioh_fault::FaultPlan::parse(spec).map_err(MariohError::Config)?;
                std::env::set_var(marioh_fault::FAULTS_ENV, spec);
                marioh_fault::arm(plan);
                eprintln!("marioh-server fault plan armed: {spec}");
            }
            let server = Server::start_with_storage(serve_config(flags)?, storage_config(flags)?)?;
            let addr = server.local_addr();
            let stats = server.manager().stats();
            eprintln!(
                "marioh-server listening on http://{addr} ({}, queue capacity {}, {} store{})",
                if stats.shards > 0 {
                    format!("{} shard processes", stats.shards)
                } else {
                    format!("{} workers", stats.workers)
                },
                stats.queue_cap,
                stats.store,
                if stats.queue_depth > 0 {
                    format!(", {} recovered jobs re-queued", stats.queue_depth)
                } else {
                    String::new()
                }
            );
            // `--smoke` boots and immediately shuts down gracefully —
            // deployment checks and the test suite use it.
            if flags.switch("smoke") {
                server.shutdown();
                return Ok(format!("serve smoke test passed on {addr}"));
            }
            loop {
                std::thread::park(); // serve until the process is killed
            }
        }
        // Internal: the child process half of `serve --shards`. Connects
        // back to the dispatcher that spawned it and executes jobs until
        // the connection closes. Not part of the public surface, but
        // harmless to run by hand against a listening dispatcher.
        "shard-worker" => {
            // Pick up a fault plan exported by the parent `serve`
            // process (no-op without `MARIOH_FAULTS`).
            marioh_fault::init_from_env().map_err(MariohError::Config)?;
            let addr = flags.require("connect")?;
            let shard = flags.get_parsed("shard", 0usize)?;
            marioh_dispatch::shard_worker::run(addr, shard)
                .map_err(|e| MariohError::config(format!("shard worker failed: {e}")))?;
            Ok(format!("shard {shard} finished cleanly"))
        }
        "eval" => {
            let truth = io::load_hypergraph(flags.require("truth")?)?;
            let pred = io::load_hypergraph(flags.require("pred")?)?;
            let (p, r, f1) = precision_recall_f1(&truth, &pred);
            Ok(format!(
                "Jaccard {:.4}\nmulti-Jaccard {:.4}\nprecision {p:.4} recall {r:.4} F1 {f1:.4}",
                jaccard(&truth, &pred),
                multi_jaccard(&truth, &pred),
            ))
        }
        // `marioh model export` — the binary folds the subcommand in.
        "model-export" => {
            let store = open_state_dir_read_only(flags)?;
            let out = flags.require("out")?;
            let saved = match (flags.get("job"), flags.get("name")) {
                (Some(job), None) => {
                    let id: u64 = job.parse().map_err(|_| {
                        MariohError::Config(format!("invalid value for --job: {job:?}"))
                    })?;
                    let hash = store.spec_hash(id).ok_or_else(|| {
                        MariohError::Config(format!("no job {id} in this state dir (or evicted)"))
                    })?;
                    store.get_model(&hash).ok_or_else(|| {
                        MariohError::Config(format!(
                            "job {id} has no stored model (not done, answered from cache, \
                             or trained nothing)"
                        ))
                    })?
                }
                (None, Some(name)) => store.get_named_model(name).ok_or_else(|| {
                    MariohError::Config(format!("no saved model named {name:?}"))
                })?,
                _ => {
                    return Err(MariohError::config(
                        "model export needs exactly one of --job <id> or --name <name>",
                    ))
                }
            };
            saved.save(out)?;
            Ok(format!(
                "exported a {} classifier{} to {out}",
                saved.model.feature_mode().tag(),
                if saved.rng_state.is_some() {
                    " (with donor RNG state)"
                } else {
                    ""
                },
            ))
        }
        "model-import" => {
            let store = open_state_dir(flags)?;
            let name = flags.require("name")?;
            let saved = marioh_core::SavedModel::load(flags.require("model")?)?;
            store.put_named_model(name, &saved)?;
            Ok(format!(
                "imported a {} classifier as {name:?}; jobs can now reference {{\"model\": {name:?}}}",
                saved.model.feature_mode().tag()
            ))
        }
        other => Err(MariohError::Config(format!(
            "unknown command {other:?}; commands: generate import-benson project split stats train reconstruct eval serve model"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)], switches: &[&str]) -> Flags {
        let mut args: Vec<String> = Vec::new();
        for (k, v) in pairs {
            args.push(format!("--{k}"));
            args.push((*v).to_owned());
        }
        for s in switches {
            args.push(format!("--{s}"));
        }
        Flags::parse(&args).expect("valid flags")
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("marioh-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn flag_parsing() {
        let f = Flags::parse(&[
            "--a".into(),
            "1".into(),
            "--no-filtering".into(),
            "--b".into(),
            "x".into(),
        ])
        .unwrap();
        assert_eq!(f.require("a").unwrap(), "1");
        assert_eq!(f.get("b"), Some("x"));
        assert!(f.switch("no-filtering"));
        assert!(!f.switch("no-bidirectional"));
        assert!(f.require("missing").is_err());
        assert!(Flags::parse(&["oops".into()]).is_err());
        assert!(Flags::parse(&["--dangling".into()]).is_err());
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        let err =
            Flags::parse(&["--seed".into(), "1".into(), "--seed".into(), "2".into()]).unwrap_err();
        assert!(matches!(&err, MariohError::Config(m) if m == "duplicate flag --seed"));
        let err = Flags::parse(&["--verbose".into(), "--verbose".into()]).unwrap_err();
        assert!(matches!(&err, MariohError::Config(m) if m == "duplicate flag --verbose"));
    }

    #[test]
    fn reconstruct_rejects_invalid_hyperparameters_up_front() {
        // The builder catches --theta 1.5 before touching any file.
        let h_path = tmp("h_invalid.txt");
        let g_path = tmp("g_invalid.txt");
        let model = tmp("m_invalid.txt");
        run(
            "generate",
            &flags(&[("dataset", "Hosts"), ("out", &h_path)], &["reduced"]),
        )
        .unwrap();
        run(
            "project",
            &flags(&[("hypergraph", &h_path), ("out", &g_path)], &[]),
        )
        .unwrap();
        run(
            "train",
            &flags(&[("source", &h_path), ("model", &model)], &[]),
        )
        .unwrap();
        let err = run(
            "reconstruct",
            &flags(
                &[
                    ("graph", &g_path),
                    ("model", &model),
                    ("out", &tmp("r_invalid.txt")),
                    ("theta", "1.5"),
                ],
                &[],
            ),
        )
        .unwrap_err();
        assert!(
            matches!(&err, MariohError::Config(m) if m.contains("theta_init")),
            "{err}"
        );
        // --ratio 0 and --threads 0 are also builder-validated.
        for (key, value, needle) in [("ratio", "0", "neg_ratio"), ("threads", "0", "threads")] {
            let err = run(
                "reconstruct",
                &flags(
                    &[
                        ("graph", &g_path),
                        ("model", &model),
                        ("out", &tmp("r_invalid.txt")),
                        (key, value),
                    ],
                    &[],
                ),
            )
            .unwrap_err();
            assert!(
                matches!(&err, MariohError::Config(m) if m.contains(needle)),
                "{err}"
            );
        }
    }

    #[test]
    fn verbose_reconstruct_runs_end_to_end() {
        let h_path = tmp("h_verbose.txt");
        let g_path = tmp("g_verbose.txt");
        let model = tmp("m_verbose.txt");
        let rec = tmp("r_verbose.txt");
        run(
            "generate",
            &flags(&[("dataset", "Hosts"), ("out", &h_path)], &["reduced"]),
        )
        .unwrap();
        run(
            "project",
            &flags(&[("hypergraph", &h_path), ("out", &g_path)], &[]),
        )
        .unwrap();
        run(
            "train",
            &flags(&[("source", &h_path), ("model", &model)], &[]),
        )
        .unwrap();
        let trace = tmp("t_verbose.json");
        let report = run(
            "reconstruct",
            &flags(
                &[
                    ("graph", &g_path),
                    ("model", &model),
                    ("out", &rec),
                    ("trace-out", &trace),
                ],
                &["verbose"],
            ),
        )
        .unwrap();
        assert!(report.starts_with("reconstructed"), "{report}");
        assert!(report.contains("wrote phase trace"), "{report}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "trace has no spans: {json}");
    }

    #[test]
    fn corrupt_model_surfaces_as_model_format_error() {
        let bad = tmp("bad_model.txt");
        std::fs::write(&bad, "garbage").unwrap();
        let g_path = tmp("g_corrupt.txt");
        let h_path = tmp("h_corrupt.txt");
        run(
            "generate",
            &flags(&[("dataset", "Hosts"), ("out", &h_path)], &["reduced"]),
        )
        .unwrap();
        run(
            "project",
            &flags(&[("hypergraph", &h_path), ("out", &g_path)], &[]),
        )
        .unwrap();
        let err = run(
            "reconstruct",
            &flags(
                &[("graph", &g_path), ("model", &bad), ("out", &tmp("r.txt"))],
                &[],
            ),
        )
        .unwrap_err();
        assert!(matches!(err, MariohError::ModelFormat(_)), "{err}");
    }

    #[test]
    fn full_pipeline_through_the_cli() {
        let h_path = tmp("h.txt");
        let src = tmp("src.txt");
        let tgt = tmp("tgt.txt");
        let g_path = tmp("g.txt");
        let model = tmp("model.txt");
        let rec = tmp("rec.txt");

        run(
            "generate",
            &flags(&[("dataset", "Hosts"), ("out", &h_path)], &["reduced"]),
        )
        .unwrap();
        run(
            "split",
            &flags(
                &[
                    ("hypergraph", &h_path),
                    ("source", &src),
                    ("target", &tgt),
                    ("seed", "1"),
                ],
                &[],
            ),
        )
        .unwrap();
        run(
            "project",
            &flags(&[("hypergraph", &tgt), ("out", &g_path)], &[]),
        )
        .unwrap();
        run(
            "train",
            &flags(&[("source", &src), ("model", &model), ("seed", "1")], &[]),
        )
        .unwrap();
        run(
            "reconstruct",
            &flags(
                &[
                    ("graph", &g_path),
                    ("model", &model),
                    ("out", &rec),
                    ("seed", "1"),
                ],
                &[],
            ),
        )
        .unwrap();
        let report = run("eval", &flags(&[("truth", &tgt), ("pred", &rec)], &[])).unwrap();
        // Hosts is the easy regime: expect high similarity.
        let jline = report.lines().next().unwrap();
        let j: f64 = jline.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(j > 0.8, "CLI pipeline Jaccard {j}");
    }

    #[test]
    fn import_benson_round_trip() {
        // Write a tiny Benson triple, import it, and check the counts.
        let dir = std::env::temp_dir().join("marioh-cli-benson");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let stem = dir.join("toy").to_string_lossy().into_owned();
        std::fs::write(dir.join("toy-nverts.txt"), "3\n2\n3\n").unwrap();
        std::fs::write(dir.join("toy-simplices.txt"), "1\n2\n3\n4\n5\n1\n2\n3\n").unwrap();
        std::fs::write(dir.join("toy-times.txt"), "1\n2\n3\n").unwrap();
        let out = tmp("benson.txt");
        let report = run(
            "import-benson",
            &flags(&[("stem", &stem), ("out", &out)], &[]),
        )
        .unwrap();
        assert!(report.contains("2 unique hyperedges"), "{report}");
        assert!(report.contains("3 events"), "{report}");
        let h = io::load_hypergraph(&out).unwrap();
        assert_eq!(h.total_edge_count(), 3);
        // --reduced folds the duplicate away.
        let report = run(
            "import-benson",
            &flags(&[("stem", &stem), ("out", &out)], &["reduced"]),
        )
        .unwrap();
        assert!(report.contains("2 events"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_smoke_boots_and_shuts_down() {
        let report = run(
            "serve",
            &flags(
                &[
                    ("addr", "127.0.0.1:0"),
                    ("workers", "2"),
                    ("queue-cap", "4"),
                ],
                &["smoke"],
            ),
        )
        .unwrap();
        assert!(report.contains("smoke test passed"), "{report}");
    }

    #[test]
    fn serve_smoke_with_a_state_dir_creates_the_store_layout() {
        let dir = std::env::temp_dir().join(format!("marioh-cli-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = dir.to_string_lossy().into_owned();
        let report = run(
            "serve",
            &flags(
                &[
                    ("addr", "127.0.0.1:0"),
                    ("workers", "1"),
                    ("state-dir", &state),
                    ("retain", "16"),
                ],
                &["smoke"],
            ),
        )
        .unwrap();
        assert!(report.contains("smoke test passed"), "{report}");
        assert!(dir.join("VERSION").exists());
        assert!(dir.join("jobs.snapshot").exists());
        // A zero retention is rejected like the other zero knobs.
        let err = run(
            "serve",
            &flags(&[("addr", "127.0.0.1:0"), ("retain", "0")], &["smoke"]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("retention"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_budget_flag_parses_byte_suffixes() {
        assert_eq!(parse_byte_size("65536"), Some(65536));
        assert_eq!(parse_byte_size("8K"), Some(8 << 10));
        assert_eq!(parse_byte_size("512M"), Some(512 << 20));
        assert_eq!(parse_byte_size("2g"), Some(2 << 30));
        assert_eq!(parse_byte_size("nope"), None);
        assert_eq!(parse_byte_size(""), None);
        let cfg = storage_config(&flags(&[("store-budget", "1M")], &[])).unwrap();
        assert_eq!(cfg.store_budget, Some(1 << 20));
        let err = storage_config(&flags(&[("store-budget", "lots")], &[])).unwrap_err();
        assert!(err.to_string().contains("store-budget"), "{err}");
    }

    #[test]
    fn model_import_then_export_round_trips_through_a_state_dir() {
        let dir = std::env::temp_dir().join(format!("marioh-cli-model-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = dir.to_string_lossy().into_owned();
        // Train a model with the existing `train` command...
        let h_path = tmp("h_model_cli.txt");
        let model_path = tmp("m_model_cli.txt");
        run(
            "generate",
            &flags(&[("dataset", "Hosts"), ("out", &h_path)], &["reduced"]),
        )
        .unwrap();
        run(
            "train",
            &flags(&[("source", &h_path), ("model", &model_path)], &[]),
        )
        .unwrap();
        // ...import it under a name, export it back, and reload it.
        let report = run(
            "model-import",
            &flags(
                &[
                    ("state-dir", &state),
                    ("name", "hosts-v1"),
                    ("model", &model_path),
                ],
                &[],
            ),
        )
        .unwrap();
        assert!(report.contains("hosts-v1"), "{report}");
        let exported = tmp("m_model_cli_back.txt");
        let report = run(
            "model-export",
            &flags(
                &[
                    ("state-dir", &state),
                    ("name", "hosts-v1"),
                    ("out", &exported),
                ],
                &[],
            ),
        )
        .unwrap();
        assert!(report.contains("exported"), "{report}");
        let back = marioh_core::TrainedModel::load(&exported).unwrap();
        assert_eq!(back.feature_mode(), FeatureMode::Multiplicity);
        // Unknown references are config errors, not panics.
        assert!(run(
            "model-export",
            &flags(
                &[
                    ("state-dir", &state),
                    ("name", "missing"),
                    ("out", &exported)
                ],
                &[]
            )
        )
        .is_err());
        assert!(run(
            "model-export",
            &flags(
                &[("state-dir", &state), ("job", "999"), ("out", &exported)],
                &[]
            )
        )
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_rejects_invalid_configuration() {
        for (key, value, needle) in [
            ("workers", "0", "workers"),
            ("workers", "many", "--workers"),
            ("queue-cap", "0", "queue capacity"),
            ("job-timeout", "0", "job timeout"),
            ("job-timeout", "soon", "--job-timeout"),
            ("shard-timeout", "0", "shard timeout"),
            ("shard-timeout", "never", "--shard-timeout"),
            // A malformed fault spec is rejected before the server
            // boots. Only the rejection path is exercised here: arming
            // a *valid* plan would poison every other test in this
            // process (the plan registry is process-global by design).
            ("faults", "store.fsync:boom@nth:1", "unknown fault action"),
        ] {
            let err = run("serve", &flags(&[(key, value)], &["smoke"])).unwrap_err();
            assert!(err.to_string().contains(needle), "{key}={value}: {err}");
        }
        // An unbindable address surfaces as the I/O variant (exit 3).
        let err = run("serve", &flags(&[("addr", "not-an-address")], &["smoke"])).unwrap_err();
        assert!(matches!(err, MariohError::Io(_)), "{err}");
    }

    #[test]
    fn stats_and_errors() {
        let h_path = tmp("h2.txt");
        run(
            "generate",
            &flags(
                &[("dataset", "crime"), ("out", &h_path), ("scale", "0.5")],
                &[],
            ),
        )
        .unwrap();
        let out = run("stats", &flags(&[("hypergraph", &h_path)], &[])).unwrap();
        assert!(out.contains("|E_H|"));

        assert!(run("bogus", &Flags::default()).is_err());
        assert!(run(
            "generate",
            &flags(&[("dataset", "nope"), ("out", "/tmp/x")], &[])
        )
        .is_err());
        assert!(run("eval", &Flags::default()).is_err());
        assert!(run(
            "train",
            &flags(
                &[
                    ("source", &h_path),
                    ("model", &tmp("m.txt")),
                    ("features", "bad")
                ],
                &[]
            )
        )
        .is_err());
    }
}
