//! # MARIOH — Multiplicity-Aware Hypergraph Reconstruction
//!
//! A from-scratch Rust reproduction of *MARIOH: Multiplicity-Aware
//! Hypergraph Reconstruction* (Lee, Lee & Shin, ICDE 2025,
//! arXiv:2504.00522): recover a hypergraph from its weighted projected
//! graph by exploiting edge multiplicity.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`hypergraph`] — hypergraphs, weighted projections, maximal cliques,
//!   metrics, structural properties, I/O,
//! * [`core`] — the MARIOH algorithm (filtering, multiplicity-aware
//!   classifier, bidirectional search) and its ablation variants,
//! * [`baselines`] — the eight comparison methods of the paper,
//! * [`datasets`] — domain-calibrated synthetic stand-ins for the paper's
//!   datasets, plus the HyperCL generator,
//! * [`downstream`] — node clustering, node classification and link
//!   prediction over (reconstructed) hypergraphs,
//! * [`server`] — the concurrent reconstruction job service,
//! * [`store`] — the persistence layer: canonical spec hashing, the
//!   durable job store, and the content-addressed artifact cache,
//! * [`linalg`], [`ml`] — the numeric and learning substrates.
//!
//! ## Quickstart
//!
//! Everything — the CLI, the experiment harness, the baselines — goes
//! through one validated entry point: [`core::Pipeline`] builds a
//! configuration (rejecting invalid hyperparameters at build time), and
//! the resulting model implements [`core::Reconstructor`], the trait
//! shared by every method in [`baselines`].
//!
//! ```
//! use marioh::core::{Pipeline, Reconstructor};
//! use marioh::hypergraph::{metrics::jaccard, projection::project};
//! use marioh::datasets::{split::split_source_target, PaperDataset};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // A small synthetic stand-in for the paper's Crime dataset.
//! let data = PaperDataset::Crime.generate_default();
//! let (source, target) = split_source_target(&data.hypergraph, &mut rng);
//!
//! let pipeline = Pipeline::builder().theta_init(0.9).build()?;
//! let model = pipeline.train(&source, &mut rng)?;
//! let reconstruction = model.reconstruct(&project(&target), &mut rng)?;
//! assert!(jaccard(&target, &reconstruction) > 0.5);
//! # Ok::<(), marioh::core::MariohError>(())
//! ```

pub mod cli;

pub use marioh_baselines as baselines;
pub use marioh_core as core;
pub use marioh_datasets as datasets;
pub use marioh_dispatch as dispatch;
pub use marioh_downstream as downstream;
pub use marioh_fault as fault;
pub use marioh_hypergraph as hypergraph;
pub use marioh_linalg as linalg;
pub use marioh_ml as ml;
pub use marioh_server as server;
pub use marioh_store as store;
pub use marioh_wire as wire;
