//! Integration tests of the unified reconstruction API: builder
//! validation, cooperative cancellation, and observer semantics as seen
//! through the `marioh` facade — the same surface the CLI and the
//! experiment harness consume.

use marioh::core::{
    CancelToken, FeatureMode, MariohError, Pipeline, ProgressObserver, ReconstructionReport,
    Reconstructor,
};
use marioh::hypergraph::hyperedge::edge;
use marioh::hypergraph::projection::project;
use marioh::hypergraph::Hypergraph;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Mutex;

/// A structured source/target pair large enough for several search
/// rounds.
fn toy_pair() -> (Hypergraph, Hypergraph) {
    let mut source = Hypergraph::new(0);
    let mut target = Hypergraph::new(0);
    for b in 0..24u32 {
        let base = b * 3;
        let hg = if b % 2 == 0 { &mut source } else { &mut target };
        hg.add_edge(edge(&[base, base + 1, base + 2]));
        hg.add_edge(edge(&[base, base + 1]));
    }
    (source, target)
}

type BuildCase = (Box<dyn Fn() -> Result<Pipeline, MariohError>>, &'static str);

#[test]
fn builder_rejects_every_documented_invalid_hyperparameter() {
    let cases: Vec<BuildCase> = vec![
        (
            Box::new(|| Pipeline::builder().theta_init(0.0).build()),
            "theta_init",
        ),
        (
            Box::new(|| Pipeline::builder().theta_init(-0.4).build()),
            "theta_init",
        ),
        (
            Box::new(|| Pipeline::builder().theta_init(1.01).build()),
            "theta_init",
        ),
        (
            Box::new(|| Pipeline::builder().neg_ratio(0.0).build()),
            "neg_ratio",
        ),
        (
            Box::new(|| Pipeline::builder().neg_ratio(101.0).build()),
            "neg_ratio",
        ),
        (
            Box::new(|| Pipeline::builder().neg_ratio(f64::NAN).build()),
            "neg_ratio",
        ),
        (Box::new(|| Pipeline::builder().alpha(0.0).build()), "alpha"),
        (
            Box::new(|| Pipeline::builder().alpha(-1.0).build()),
            "alpha",
        ),
        (
            Box::new(|| Pipeline::builder().alpha(f64::INFINITY).build()),
            "alpha",
        ),
        (
            Box::new(|| Pipeline::builder().threads(0).build()),
            "threads",
        ),
        (
            Box::new(|| Pipeline::builder().max_iterations(0).build()),
            "max_iterations",
        ),
        (
            Box::new(|| Pipeline::builder().supervision_fraction(1.5).build()),
            "supervision_fraction",
        ),
        (
            Box::new(|| Pipeline::builder().negative_ratio(0.0).build()),
            "negative_ratio",
        ),
        (
            Box::new(|| Pipeline::builder().hidden_layers(vec![0]).build()),
            "hidden_layers",
        ),
    ];
    for (build, needle) in cases {
        match build() {
            Err(MariohError::Config(msg)) => {
                assert!(
                    msg.contains(needle),
                    "message {msg:?} does not name {needle}"
                )
            }
            other => panic!("expected Config error naming {needle}, got {other:?}"),
        }
    }
    // The paper's defaults and the domain boundaries are accepted.
    assert!(Pipeline::builder().build().is_ok());
    assert!(Pipeline::builder()
        .features(FeatureMode::Count)
        .theta_init(1.0)
        .neg_ratio(100.0)
        .alpha(1.0)
        .threads(4)
        .build()
        .is_ok());
}

#[test]
fn pre_cancelled_token_fails_fast() {
    let (source, target) = toy_pair();
    let cancel = CancelToken::new();
    let pipeline = Pipeline::builder()
        .cancel_token(cancel.clone())
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let model = pipeline.train(&source, &mut rng).unwrap();
    cancel.cancel();
    let err = model.reconstruct(&project(&target), &mut rng).unwrap_err();
    assert!(matches!(err, MariohError::Cancelled), "{err}");
}

/// Cancelling *during* the run (from the first round callback, i.e. the
/// position of a watchdog thread) aborts within one search round: no
/// later rounds are observed, and the error is `Cancelled`.
#[test]
fn mid_search_cancellation_terminates_within_one_round() {
    struct CancelAfterFirstRound {
        cancel: CancelToken,
        rounds_seen: Mutex<usize>,
    }
    impl ProgressObserver for CancelAfterFirstRound {
        fn on_round(&self, _round: usize, _theta: f64, _stats: &marioh::core::search::SearchStats) {
            *self.rounds_seen.lock().unwrap() += 1;
            self.cancel.cancel();
        }
    }

    let (source, target) = toy_pair();
    let cancel = CancelToken::new();
    let observer = std::sync::Arc::new(CancelAfterFirstRound {
        cancel: cancel.clone(),
        rounds_seen: Mutex::new(0),
    });
    let pipeline = Pipeline::builder()
        .cancel_token(cancel)
        .observer(observer.clone())
        // θ_init = 1.0 with slow decay: sigmoid scores are < 1, so round 1
        // commits nothing and the graph stays full — an uncancelled run
        // would need many decay rounds to drain it.
        .theta_init(1.0)
        .alpha(0.01)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let model = pipeline.train(&source, &mut rng).unwrap();
    let err = model.reconstruct(&project(&target), &mut rng).unwrap_err();
    assert!(matches!(err, MariohError::Cancelled), "{err}");
    // The cancel fired in round 1's callback; the abort happened at the
    // next boundary, so exactly one round was ever observed.
    assert_eq!(*observer.rounds_seen.lock().unwrap(), 1);
}

/// The observer event stream on a toy graph is identical across runs
/// with the same seed — observers are a pure view of the loop.
#[test]
fn observer_event_sequence_is_deterministic_under_a_fixed_seed() {
    #[derive(Default)]
    struct Recorder(Mutex<Vec<String>>);
    impl ProgressObserver for Recorder {
        fn on_filtering_done(&self, stats: &marioh::core::filtering::FilterStats, _secs: f64) {
            self.0.lock().unwrap().push(format!(
                "filter pairs={} events={}",
                stats.pairs_identified, stats.multiplicity_extracted
            ));
        }
        fn on_round(&self, round: usize, theta: f64, stats: &marioh::core::search::SearchStats) {
            self.0.lock().unwrap().push(format!(
                "round {round} theta={theta:.4} committed={}",
                stats.committed_phase1 + stats.committed_phase2
            ));
        }
        fn on_commit(&self, round: usize, committed: usize, total: usize) {
            self.0
                .lock()
                .unwrap()
                .push(format!("commit {round} +{committed} ={total}"));
        }
        fn on_done(&self, report: &ReconstructionReport) {
            self.0
                .lock()
                .unwrap()
                .push(format!("done rounds={}", report.rounds.len()));
        }
    }

    let (source, target) = toy_pair();
    let run = || {
        let recorder = std::sync::Arc::new(Recorder::default());
        let pipeline = Pipeline::builder()
            .observer(recorder.clone())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let model = pipeline.train(&source, &mut rng).unwrap();
        let rec = model.reconstruct(&project(&target), &mut rng).unwrap();
        let events = recorder.0.lock().unwrap().clone();
        (events, rec)
    };
    let (events_a, rec_a) = run();
    let (events_b, rec_b) = run();
    assert_eq!(events_a, events_b);
    assert_eq!(rec_a, rec_b);
    assert!(events_a.first().unwrap().starts_with("filter"));
    assert!(events_a.last().unwrap().starts_with("done"));
    assert!(events_a.iter().any(|e| e.starts_with("commit")));
}

/// A cancelled pipeline is reusable: clearing nothing, the same trained
/// model keeps failing, while a fresh un-cancelled pipeline around the
/// same classifier succeeds — tokens are per-pipeline state, not global.
#[test]
fn cancellation_is_scoped_to_the_pipeline_handle() {
    let (source, target) = toy_pair();
    let cancel = CancelToken::new();
    let cancelled_pipeline = Pipeline::builder()
        .cancel_token(cancel.clone())
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let model = cancelled_pipeline.train(&source, &mut rng).unwrap();
    cancel.cancel();
    assert!(model.reconstruct(&project(&target), &mut rng).is_err());

    // Same classifier, fresh pipeline: runs fine.
    let fresh = Pipeline::builder()
        .build()
        .unwrap()
        .with_model(model.model().clone());
    let rec = fresh.reconstruct(&project(&target), &mut rng).unwrap();
    assert!(rec.unique_edge_count() > 0);
}

/// `CliError` stayed as a name: it is the same type the core emits, so
/// frontends can match on either path.
#[test]
fn cli_error_alias_is_the_core_error() {
    let e: marioh::cli::CliError = MariohError::Cancelled;
    assert_eq!(e.to_string(), "reconstruction cancelled");
}
