//! Failure-injection tests: every text parser in the workspace must
//! survive arbitrary corruption of its input (clean `Err` or a lossless
//! `Ok`, never a panic), and the reconstruction loop must stay in
//! control under adversarial scorers.

use marioh::core::model::FnScorer;
use marioh::core::reconstruct::reconstruct_with_report;
use marioh::core::{Marioh, MariohConfig, TrainingConfig};
use marioh::hypergraph::hyperedge::edge;
use marioh::hypergraph::projection::project;
use marioh::hypergraph::{io, Hypergraph, NodeId, ProjectedGraph};
use marioh::ml::{Mlp, StandardScaler};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// A valid serialised hypergraph to corrupt.
fn valid_hypergraph_bytes() -> Vec<u8> {
    let mut h = Hypergraph::new(6);
    h.add_edge(edge(&[0, 1, 2]));
    h.add_edge_with_multiplicity(edge(&[3, 4]), 3);
    h.add_edge(edge(&[1, 4, 5]));
    let mut buf = Vec::new();
    io::write_hypergraph(&h, &mut buf).expect("write");
    buf
}

/// A valid serialised graph to corrupt.
fn valid_graph_bytes() -> Vec<u8> {
    let mut h = Hypergraph::new(5);
    h.add_edge(edge(&[0, 1, 2, 3]));
    h.add_edge(edge(&[2, 4]));
    let mut buf = Vec::new();
    io::write_graph(&project(&h), &mut buf).expect("write");
    buf
}

/// A valid serialised trained model to corrupt.
fn valid_model_bytes() -> Vec<u8> {
    let mut h = Hypergraph::new(0);
    for b in 0..12u32 {
        let base = b * 3;
        h.add_edge(edge(&[base, base + 1, base + 2]));
        h.add_edge(edge(&[base, base + 1]));
    }
    let mut rng = StdRng::seed_from_u64(0);
    let model = Marioh::train(&h, &TrainingConfig::default(), &mut rng);
    let mut buf = Vec::new();
    model.model().write_to(&mut buf).expect("write");
    buf
}

/// One mutation of a byte buffer.
#[derive(Debug, Clone)]
enum Mutation {
    Truncate(usize),
    FlipByte(usize, u8),
    InsertLine(usize, Vec<u8>),
    Shuffle(u64),
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..512).prop_map(Mutation::Truncate),
        ((0usize..512), any::<u8>()).prop_map(|(i, b)| Mutation::FlipByte(i, b)),
        ((0usize..512), proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(i, l)| Mutation::InsertLine(i, l)),
        any::<u64>().prop_map(Mutation::Shuffle),
    ]
}

fn apply(buf: &mut Vec<u8>, m: &Mutation) {
    match m {
        Mutation::Truncate(n) => {
            let keep = *n % (buf.len() + 1);
            buf.truncate(keep);
        }
        Mutation::FlipByte(i, b) => {
            if !buf.is_empty() {
                let i = *i % buf.len();
                buf[i] = *b;
            }
        }
        Mutation::InsertLine(i, line) => {
            let i = *i % (buf.len() + 1);
            let mut insert = line.clone();
            insert.push(b'\n');
            buf.splice(i..i, insert);
        }
        Mutation::Shuffle(seed) => {
            // Shuffle lines (a likely hand-editing accident).
            let text: Vec<Vec<u8>> = buf.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
            let mut lines = text;
            let mut rng = StdRng::seed_from_u64(*seed);
            use rand::Rng as _;
            for i in (1..lines.len()).rev() {
                let j = rng.gen_range(0..=i);
                lines.swap(i, j);
            }
            *buf = lines.join(&b'\n');
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The hypergraph parser never panics on corrupted input.
    #[test]
    fn hypergraph_parser_survives_corruption(muts in proptest::collection::vec(arb_mutation(), 1..4)) {
        let mut buf = valid_hypergraph_bytes();
        for m in &muts {
            apply(&mut buf, m);
        }
        let _ = io::read_hypergraph(buf.as_slice()); // Ok or Err, no panic
    }

    /// The graph parser never panics on corrupted input, and a
    /// successfully parsed graph satisfies its structural invariants.
    #[test]
    fn graph_parser_survives_corruption(muts in proptest::collection::vec(arb_mutation(), 1..4)) {
        let mut buf = valid_graph_bytes();
        for m in &muts {
            apply(&mut buf, m);
        }
        if let Ok(g) = io::read_graph(buf.as_slice()) {
            prop_assert!(g.check_invariants().is_ok(), "parsed graph violates invariants");
        }
    }

    /// The trained-model parser never panics on corrupted input, and a
    /// successfully parsed model still yields probability scores.
    #[test]
    fn model_parser_survives_corruption(muts in proptest::collection::vec(arb_mutation(), 1..3)) {
        // Static valid bytes: training in every case would dominate runtime.
        static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
        let mut buf = BYTES.get_or_init(valid_model_bytes).clone();
        for m in &muts {
            apply(&mut buf, m);
        }
        if let Ok(model) = marioh::core::TrainedModel::read_from(buf.as_slice()) {
            let mut h = Hypergraph::new(3);
            h.add_edge(edge(&[0, 1, 2]));
            let g = project(&h);
            use marioh::core::model::CliqueScorer as _;
            let s = model.score(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
            prop_assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }

    /// The MLP parser never panics on corrupted input.
    #[test]
    fn mlp_parser_survives_corruption(muts in proptest::collection::vec(arb_mutation(), 1..4)) {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(3, &[4], &mut rng);
        let mut buf = Vec::new();
        mlp.write_to(&mut buf).expect("write");
        for m in &muts {
            apply(&mut buf, m);
        }
        let _ = Mlp::read_from(buf.as_slice());
    }

    /// The scaler parser never panics on corrupted input.
    #[test]
    fn scaler_parser_survives_corruption(muts in proptest::collection::vec(arb_mutation(), 1..4)) {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut buf = Vec::new();
        scaler.write_to(&mut buf).expect("write");
        for m in &muts {
            apply(&mut buf, m);
        }
        let _ = StandardScaler::read_from(buf.as_slice());
    }

    /// Reconstruction terminates within the iteration cap for scorers
    /// that return arbitrary (finite) values, and the committed
    /// hyperedges never exceed the input's projected weight.
    #[test]
    fn reconstruction_survives_adversarial_scores(bias in -2.0f64..3.0, scale_ in 0.0f64..4.0) {
        let mut h = Hypergraph::new(0);
        h.add_edge(edge(&[0, 1, 2]));
        h.add_edge_with_multiplicity(edge(&[2, 3]), 2);
        h.add_edge(edge(&[3, 4, 5]));
        let g = project(&h);
        // Score depends on clique size only; may be negative or > 1.
        let scorer = FnScorer(move |_: &ProjectedGraph, c: &[NodeId]| {
            bias + scale_ / c.len() as f64
        });
        let cfg = MariohConfig {
            max_iterations: 200,
            ..MariohConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let (rec, report) = reconstruct_with_report(&g, &scorer, &cfg, &mut rng);
        prop_assert!(report.rounds.len() <= 200);
        prop_assert!(project(&rec).total_weight() <= g.total_weight());
    }
}

/// Scores of NaN are a programming error; the search is documented to
/// panic rather than silently misorder candidates.
#[test]
#[should_panic(expected = "NaN score")]
fn nan_scores_panic_loudly() {
    let mut h = Hypergraph::new(0);
    h.add_edge(edge(&[0, 1, 2]));
    h.add_edge(edge(&[1, 2, 3]));
    let g = project(&h);
    let scorer = FnScorer(|_: &ProjectedGraph, _: &[NodeId]| f64::NAN);
    let mut rng = StdRng::seed_from_u64(0);
    let _ = reconstruct_with_report(&g, &scorer, &MariohConfig::default(), &mut rng);
}
