//! Edge-case and failure-injection integration tests: degenerate inputs,
//! boundary hyperparameters, and cross-module consistency checks that
//! don't fit a single crate.

use marioh::baselines::shyre::{ShyreFlavor, ShyreSupervised};
use marioh::baselines::{CFinder, ReconstructionMethod};
use marioh::core::model::FnScorer;
use marioh::core::reconstruct::reconstruct;
use marioh::core::training::{build_training_set, TrainingConfig};
use marioh::core::{Marioh, MariohConfig, TrainingConfig as TC};
use marioh::datasets::PaperDataset;
use marioh::hypergraph::hyperedge::edge;
use marioh::hypergraph::motifs::{motif_census, profile_distance};
use marioh::hypergraph::projection::project;
use marioh::hypergraph::{Hypergraph, NodeId, ProjectedGraph};
use rand::{rngs::StdRng, SeedableRng};

/// A single-edge hypergraph round-trips through the whole pipeline.
#[test]
fn minimal_hypergraph_pipeline() {
    let mut source = Hypergraph::new(0);
    source.add_edge(edge(&[0, 1]));
    source.add_edge(edge(&[2, 3]));
    let mut rng = StdRng::seed_from_u64(0);
    let model = Marioh::train(&source, &TC::default(), &mut rng);
    let mut target = Hypergraph::new(0);
    target.add_edge(edge(&[0, 1]));
    let rec = model.reconstruct(&project(&target), &mut rng).unwrap();
    assert!(rec.contains(&edge(&[0, 1])));
}

/// Reconstructing an edgeless graph yields an empty hypergraph for every
/// configuration.
#[test]
fn edgeless_graph_reconstruction() {
    let g = ProjectedGraph::new(10);
    let scorer = FnScorer(|_: &ProjectedGraph, _: &[NodeId]| 0.9);
    for (filtering, bidir) in [(true, true), (false, true), (true, false), (false, false)] {
        let cfg = MariohConfig {
            use_filtering: filtering,
            use_bidirectional: bidir,
            ..MariohConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        let rec = reconstruct(&g, &scorer, &cfg, &mut rng);
        assert_eq!(rec.unique_edge_count(), 0);
    }
}

/// Boundary hyperparameters: θ_init = 1.0 (nothing passes until decay)
/// and θ_init = 0.0 (everything passes immediately) both terminate and
/// conserve weight.
#[test]
fn boundary_thresholds_terminate() {
    let mut h = Hypergraph::new(0);
    h.add_edge_with_multiplicity(edge(&[0, 1, 2]), 2);
    h.add_edge(edge(&[1, 3]));
    let g = project(&h);
    let scorer = FnScorer(|_: &ProjectedGraph, q: &[NodeId]| 0.3 + 0.1 * q.len() as f64 / 10.0);
    for theta in [0.0, 1.0] {
        let cfg = MariohConfig {
            theta_init: theta,
            ..MariohConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let rec = reconstruct(&g, &scorer, &cfg, &mut rng);
        assert_eq!(
            project(&rec).total_weight(),
            g.total_weight(),
            "theta {theta}"
        );
    }
}

/// r = 0% disables Phase 2 sampling without breaking the loop.
#[test]
fn zero_neg_ratio_still_reconstructs() {
    let mut h = Hypergraph::new(0);
    h.add_edge(edge(&[0, 1, 2]));
    let g = project(&h);
    let scorer = FnScorer(|_: &ProjectedGraph, _: &[NodeId]| 0.6);
    let cfg = MariohConfig {
        neg_ratio: 0.0,
        ..MariohConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(2);
    let rec = reconstruct(&g, &scorer, &cfg, &mut rng);
    assert!(rec.contains(&edge(&[0, 1, 2])));
}

/// Training with negative_ratio = 0 must not panic (degenerate single-
/// class training set) and the model must still produce probabilities.
#[test]
fn training_without_negatives_is_degenerate_but_safe() {
    let mut source = Hypergraph::new(0);
    for b in 0..10u32 {
        source.add_edge(edge(&[b * 3, b * 3 + 1, b * 3 + 2]));
    }
    let cfg = TrainingConfig {
        negative_ratio: 0.0,
        ..TrainingConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let set = build_training_set(&source, &cfg, &mut rng);
    assert!(set.labels.iter().all(|&l| l == 1.0));
    let model = marioh::core::training::train_classifier(&source, &cfg, &mut rng);
    use marioh::core::model::CliqueScorer;
    let g = project(&source);
    let p = model.score(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
    assert!((0.0..=1.0).contains(&p));
}

/// CFinder's k selection degrades gracefully when every hyperedge is a
/// pair.
#[test]
fn cfinder_k_selection_on_pairs_only() {
    let mut source = Hypergraph::new(0);
    for b in 0..10u32 {
        source.add_edge(edge(&[b * 2, b * 2 + 1]));
    }
    let mut rng = StdRng::seed_from_u64(4);
    let cf = CFinder::select_k(&source, &mut rng);
    assert_eq!(cf.k, 2);
    let rec = cf.reconstruct(&project(&source), &mut rng).unwrap();
    assert_eq!(rec.unique_edge_count(), 10);
}

/// SHyRe trained on one domain still runs (if poorly) on a structurally
/// different domain — no panics on out-of-distribution clique sizes.
#[test]
fn shyre_out_of_distribution_inference() {
    let mut pairs = Hypergraph::new(0);
    for b in 0..20u32 {
        pairs.add_edge(edge(&[b * 2, b * 2 + 1]));
    }
    let mut rng = StdRng::seed_from_u64(5);
    let model = ShyreSupervised::train(ShyreFlavor::Count, &pairs, &mut rng);
    // Target has big cliques the model never saw.
    let mut big = Hypergraph::new(0);
    big.add_edge(edge(&[0, 1, 2, 3, 4, 5, 6]));
    let rec = model.reconstruct(&project(&big), &mut rng).unwrap();
    // No panic; output may be empty or partial.
    assert!(rec.unique_edge_count() <= 64);
}

/// Generated domains carry distinct h-motif fingerprints, and a dataset
/// is closer to itself (re-generated) than to a different domain.
#[test]
fn domain_fingerprints_via_h_motifs() {
    let contact = PaperDataset::Enron.generate_scaled(0.3).hypergraph;
    let contact2 = PaperDataset::Enron.generate_scaled(0.3).hypergraph; // deterministic: identical
    let coauth = PaperDataset::MagHistory.generate_scaled(0.02).hypergraph;
    let mut rng = StdRng::seed_from_u64(6);
    let fp_contact = motif_census(&contact, 50_000, &mut rng);
    let fp_contact2 = motif_census(&contact2, 50_000, &mut rng);
    let fp_coauth = motif_census(&coauth, 50_000, &mut rng);
    let self_dist = profile_distance(&fp_contact, &fp_contact2);
    let cross_dist = profile_distance(&fp_contact, &fp_coauth);
    assert!(
        self_dist < cross_dist,
        "self {self_dist} should be < cross {cross_dist}"
    );
}

/// Reconstruction restricted to a sub-hypergraph agrees with the
/// induced-subgraph semantics used by the Fig. 2 case study.
#[test]
fn induced_subhypergraph_projection_consistency() {
    let data = PaperDataset::Eu.generate_scaled(0.1);
    let h = &data.hypergraph;
    let nodes: Vec<NodeId> = (0..30).map(NodeId).collect();
    let sub = h.induced_by(&nodes);
    let g_sub = project(&sub);
    // Every edge of the sub-projection exists in the full projection with
    // at least the same weight.
    let g_full = project(h);
    for (u, v, w) in g_sub.sorted_edge_list() {
        assert!(g_full.weight(u, v) >= w);
    }
}
