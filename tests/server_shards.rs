//! End-to-end tests of `marioh serve --shards N`: the dispatcher, the
//! wire protocol, and real `marioh shard-worker` child processes.
//!
//! * a 16-job batch served across 4 shard worker OS processes is
//!   bit-identical (edge multisets and jaccard bits) to the same batch
//!   on the in-process `--workers` pool,
//! * the batch endpoints round-trip: array `POST /jobs` → `{batch,
//!   count, ids}`, `GET /batches/:id` until `complete`, per-index 400s
//!   for malformed members,
//! * SIGKILLing one shard worker mid-batch is absorbed: the dispatcher
//!   respawns the shard, re-dispatches its in-flight jobs, and the
//!   batch still completes bit-identical to the single-process run.

use marioh::server::{client, Json, Server, ServerConfig};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The 16-job workload: distinct seeds, so distinct spec hashes that
/// spread across shards.
fn batch_bodies(throttle_ms: u64) -> Vec<String> {
    (0..16)
        .map(|seed| {
            format!(r#"{{"dataset": "Hosts", "seed": {seed}, "throttle_ms": {throttle_ms}}}"#)
        })
        .collect()
}

fn post_batch(addr: SocketAddr, bodies: &[String]) -> (u64, Vec<u64>) {
    let body = format!("[{}]", bodies.join(","));
    let response = client::post(addr, "/jobs", &body).expect("submit batch");
    assert_eq!(response.status, 201, "{}", response.body);
    let json = response.json().expect("valid JSON");
    let batch = json.get("batch").and_then(Json::as_u64).expect("batch id");
    let ids: Vec<u64> = json
        .get("ids")
        .and_then(Json::as_array)
        .expect("ids array")
        .iter()
        .map(|v| v.as_u64().expect("job id"))
        .collect();
    assert_eq!(
        json.get("count").and_then(Json::as_u64),
        Some(ids.len() as u64)
    );
    (batch, ids)
}

fn batch_view(addr: SocketAddr, batch: u64) -> Json {
    let response = client::get(addr, &format!("/batches/{batch}")).expect("batch view");
    assert_eq!(response.status, 200, "{}", response.body);
    response.json().expect("valid JSON")
}

fn wait_batch_complete(addr: SocketAddr, batch: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let view = batch_view(addr, batch);
        if view.get("complete").and_then(Json::as_bool) == Some(true) {
            return view;
        }
        assert!(
            Instant::now() < deadline,
            "batch {batch} not complete in time: {view}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn result_body(addr: SocketAddr, id: u64) -> Json {
    let response = client::get(addr, &format!("/jobs/{id}/result")).expect("result");
    assert_eq!(response.status, 200, "{}", response.body);
    response.json().expect("valid JSON")
}

/// A result reduced to comparable form: sorted `(nodes, multiplicity)`
/// pairs plus the exact jaccard bits.
type Fingerprint = (Vec<(Vec<u64>, u64)>, u64);

fn fingerprint(result: &Json) -> Fingerprint {
    let mut edges: Vec<(Vec<u64>, u64)> = result
        .get("edges")
        .and_then(Json::as_array)
        .expect("edges array")
        .iter()
        .map(|e| {
            (
                e.get("nodes")
                    .and_then(Json::as_array)
                    .expect("nodes array")
                    .iter()
                    .map(|n| n.as_u64().expect("node id"))
                    .collect(),
                e.get("multiplicity")
                    .and_then(Json::as_u64)
                    .expect("multiplicity"),
            )
        })
        .collect();
    edges.sort();
    let jaccard = result
        .get("jaccard")
        .and_then(Json::as_f64)
        .expect("jaccard");
    (edges, jaccard.to_bits())
}

fn stat(addr: SocketAddr, key: &str) -> u64 {
    let response = client::get(addr, "/stats").expect("stats");
    let stats = response.json().expect("valid JSON");
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {key:?} missing: {stats}"))
}

/// Runs `bodies` as one batch on `server` and returns each job's
/// fingerprint, in submission order.
fn run_batch(server: &Server, bodies: &[String]) -> Vec<Fingerprint> {
    let addr = server.local_addr();
    let (batch, ids) = post_batch(addr, bodies);
    let view = wait_batch_complete(addr, batch);
    assert_eq!(
        view.get("done").and_then(Json::as_u64),
        Some(ids.len() as u64),
        "not every job finished done: {view}"
    );
    ids.iter()
        .map(|id| fingerprint(&result_body(addr, *id)))
        .collect()
}

fn sharded_config(shards: usize) -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_cap: 32,
        shards,
        // Real OS processes: the built `marioh` binary's internal
        // `shard-worker` subcommand.
        shard_worker: vec![
            env!("CARGO_BIN_EXE_marioh").to_owned(),
            "shard-worker".to_owned(),
        ],
        ..ServerConfig::default()
    }
}

#[test]
fn sharded_batch_is_bit_identical_to_the_worker_pool() {
    let bodies = batch_bodies(0);
    // Reference: the in-process pool.
    let pooled = Server::start(ServerConfig {
        workers: 4,
        queue_cap: 32,
        ..ServerConfig::default()
    })
    .unwrap();
    let reference = run_batch(&pooled, &bodies);
    pooled.shutdown();

    // Same batch across 4 shard worker processes.
    let sharded = Server::start(sharded_config(4)).unwrap();
    let addr = sharded.local_addr();
    assert_eq!(stat(addr, "shards"), 4);
    let results = run_batch(&sharded, &bodies);
    assert_eq!(results.len(), 16);
    assert_eq!(results, reference, "sharded results differ from pooled");
    sharded.shutdown();
}

#[test]
fn batch_endpoints_validate_and_report() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // A malformed member rejects the whole batch with its index.
    let response = client::post(
        addr,
        "/jobs",
        r#"[{"dataset": "Hosts"}, {"dataset": "Nope"}]"#,
    )
    .expect("submit");
    assert_eq!(response.status, 400, "{}", response.body);
    let json = response.json().expect("valid JSON");
    let errors = json
        .get("errors")
        .and_then(Json::as_array)
        .expect("errors array");
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].get("index").and_then(Json::as_u64), Some(1));
    assert_eq!(stat(addr, "jobs_submitted"), 0, "rejected batch submitted");

    // An empty batch is a 400, an oversized one a 503.
    assert_eq!(
        client::post(addr, "/jobs", "[]").expect("submit").status,
        400
    );
    let too_many = format!(
        "[{}]",
        (0..9)
            .map(|s| format!(r#"{{"dataset": "Hosts", "seed": {s}}}"#))
            .collect::<Vec<_>>()
            .join(",")
    );
    assert_eq!(
        client::post(addr, "/jobs", &too_many)
            .expect("submit")
            .status,
        503
    );

    // A valid batch reports through GET /batches/:id until complete.
    let (batch, ids) = post_batch(addr, &batch_bodies(0)[..4]);
    let view = wait_batch_complete(addr, batch);
    assert_eq!(view.get("count").and_then(Json::as_u64), Some(4));
    assert_eq!(view.get("done").and_then(Json::as_u64), Some(4));
    let jobs = view
        .get("jobs")
        .and_then(Json::as_array)
        .expect("jobs array");
    let listed: Vec<u64> = jobs
        .iter()
        .map(|j| j.get("id").and_then(Json::as_u64).expect("id"))
        .collect();
    assert_eq!(listed, ids, "batch members out of order");

    // Unknown batches are 404s, junk ids 400s, wrong methods 405s.
    assert_eq!(client::get(addr, "/batches/999").expect("get").status, 404);
    assert_eq!(client::get(addr, "/batches/x").expect("get").status, 400);
    assert_eq!(
        client::post(addr, "/batches/1", "{}").expect("post").status,
        405
    );
    server.shutdown();
}

/// A `marioh serve --shards` child process bound to an ephemeral port.
struct ServeProcess {
    child: Child,
    addr: SocketAddr,
}

fn spawn_sharded_serve(shards: usize) -> ServeProcess {
    let mut child = Command::new(env!("CARGO_BIN_EXE_marioh"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--queue-cap",
            "32",
            "--shards",
            &shards.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn marioh serve --shards");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut line = String::new();
    BufReader::new(stderr)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|addr| addr.parse().ok())
        .unwrap_or_else(|| panic!("no address in serve banner: {line:?}"));
    ServeProcess { child, addr }
}

/// The child PIDs of `pid`, from procfs (Linux CI only — the one e2e
/// test that needs this is gated below).
fn children_of(pid: u32) -> Vec<u32> {
    let path = format!("/proc/{pid}/task/{pid}/children");
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .split_whitespace()
        .filter_map(|p| p.parse().ok())
        .collect()
}

#[test]
fn sigkilled_shard_is_respawned_and_the_batch_completes_bit_identical() {
    if !std::path::Path::new("/proc/self/stat").exists() {
        eprintln!("skipping: needs procfs to find shard worker PIDs");
        return;
    }
    // Reference run: in-process pool, no throttle (throttle_ms is
    // non-semantic, so the sharded run below must still match exactly).
    let pooled = Server::start(ServerConfig {
        workers: 4,
        queue_cap: 32,
        ..ServerConfig::default()
    })
    .unwrap();
    let reference = run_batch(&pooled, &batch_bodies(0));
    pooled.shutdown();

    // Victim run: a real `marioh serve --shards 4` process; the throttle
    // keeps all 16 jobs in flight while the kill lands.
    let serve = spawn_sharded_serve(4);
    let addr = serve.addr;
    let mut child = serve.child;
    let shard_pids = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let pids = children_of(child.id());
            if pids.len() == 4 {
                break pids;
            }
            assert!(
                Instant::now() < deadline,
                "4 shard workers never appeared (saw {pids:?})"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    let (batch, ids) = post_batch(addr, &batch_bodies(2000));
    // Let the dispatch frames land in the workers' throttle windows,
    // then SIGKILL one shard — no goodbye, no flush.
    std::thread::sleep(Duration::from_millis(500));
    let victim = shard_pids[0];
    let killed = Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {victim} failed");

    let view = wait_batch_complete(addr, batch);
    assert_eq!(
        view.get("done").and_then(Json::as_u64),
        Some(ids.len() as u64),
        "batch did not fully complete after the kill: {view}"
    );
    assert!(
        stat(addr, "shard_restarts") >= 1,
        "the dispatcher never recorded the respawn"
    );
    let results: Vec<_> = ids
        .iter()
        .map(|id| fingerprint(&result_body(addr, *id)))
        .collect();
    assert_eq!(
        results, reference,
        "post-respawn results differ from the single-process run"
    );

    child.kill().expect("kill serve process");
    child.wait().expect("reap serve process");
}
