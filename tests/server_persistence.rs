//! End-to-end tests of the persistence layer behind `marioh-server`:
//!
//! * an identical resubmission is answered from the artifact cache
//!   without spawning a pipeline (asserted through the `/stats`
//!   `pipeline_runs` counter),
//! * a job referencing `"model": "job:<id>"` reproduces its donor
//!   bit-for-bit while skipping training (asserted through the
//!   observer-driven `models_trained` counter),
//! * a server killed with SIGKILL mid-queue and restarted on the same
//!   `--state-dir` serves its pre-crash results from disk and resumes
//!   the interrupted queue.

use marioh::server::{client, Json, Server, ServerConfig, StorageConfig};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let response = client::post(addr, "/jobs", body).expect("submit");
    assert_eq!(response.status, 201, "{}", response.body);
    response
        .json()
        .expect("valid JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id in response")
}

fn job_view(addr: SocketAddr, id: u64) -> Json {
    let response = client::get(addr, &format!("/jobs/{id}")).expect("poll");
    assert_eq!(response.status, 200, "{}", response.body);
    response.json().expect("valid JSON")
}

fn status_of(view: &Json) -> String {
    view.get("status")
        .and_then(Json::as_str)
        .expect("status field")
        .to_owned()
}

fn wait_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let view = job_view(addr, id);
        if ["done", "failed", "cancelled"].contains(&status_of(&view).as_str()) {
            return view;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} not terminal in time: {view:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stats(addr: SocketAddr) -> Json {
    let response = client::get(addr, "/stats").expect("stats");
    assert_eq!(response.status, 200);
    response.json().expect("valid JSON")
}

fn stat(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {key:?} missing or not an integer: {stats}"))
}

fn result_body(addr: SocketAddr, id: u64) -> Json {
    let response = client::get(addr, &format!("/jobs/{id}/result")).expect("result");
    assert_eq!(response.status, 200, "{}", response.body);
    response.json().expect("valid JSON")
}

fn edge_multiset(result: &Json) -> Vec<(Vec<u64>, u64)> {
    let mut edges: Vec<(Vec<u64>, u64)> = result
        .get("edges")
        .and_then(Json::as_array)
        .expect("edges array")
        .iter()
        .map(|e| {
            (
                e.get("nodes")
                    .and_then(Json::as_array)
                    .expect("nodes array")
                    .iter()
                    .map(|n| n.as_u64().expect("node id"))
                    .collect(),
                e.get("multiplicity")
                    .and_then(Json::as_u64)
                    .expect("multiplicity"),
            )
        })
        .collect();
    edges.sort();
    edges
}

#[test]
fn identical_resubmission_is_served_from_cache_without_a_pipeline_run() {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_cap: 16,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let body = r#"{"dataset": "Hosts", "seed": 11, "params": {"theta_init": 0.9}}"#;
    let first = submit(addr, body);
    assert_eq!(status_of(&wait_terminal(addr, first)), "done");
    let s = stats(addr);
    assert_eq!(stat(&s, "pipeline_runs"), 1);
    assert_eq!(stat(&s, "cache_hits"), 0);
    assert_eq!(stat(&s, "results_cached"), 1);
    let first_result = result_body(addr, first);

    // The same computation, spelled differently: key order shuffled, the
    // default alpha made explicit, a thread-count knob added. Answered
    // instantly from the cache — done on arrival, flagged cached, and
    // the pipeline-run counter does not move.
    let respelled = r#"{"seed": 11, "params": {"threads": 2, "alpha": 0.05,
                         "theta_init": 0.9}, "dataset": "Hosts"}"#;
    let second = submit(addr, respelled);
    let view = job_view(addr, second);
    assert_eq!(status_of(&view), "done", "{view:?}");
    assert_eq!(view.get("cached").and_then(Json::as_bool), Some(true));
    let s = stats(addr);
    assert_eq!(stat(&s, "pipeline_runs"), 1, "cache hit spawned a pipeline");
    assert_eq!(stat(&s, "cache_hits"), 1);
    let second_result = result_body(addr, second);
    assert_eq!(edge_multiset(&first_result), edge_multiset(&second_result));
    assert_eq!(
        first_result.get("jaccard").and_then(Json::as_f64),
        second_result.get("jaccard").and_then(Json::as_f64)
    );

    // A semantically different submission (new seed) runs for real.
    let third = submit(addr, r#"{"dataset": "Hosts", "seed": 12}"#);
    assert_eq!(status_of(&wait_terminal(addr, third)), "done");
    assert_eq!(stat(&stats(addr), "pipeline_runs"), 2);

    // GET /jobs lists all three, newest ids included.
    let listing = client::get(addr, "/jobs").expect("jobs").json().unwrap();
    assert_eq!(stat(&listing, "count"), 3);

    server.shutdown();
}

#[test]
fn model_reuse_over_http_reproduces_the_donor_and_skips_training() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_cap: 16,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let donor = submit(addr, r#"{"dataset": "Hosts", "seed": 21}"#);
    assert_eq!(status_of(&wait_terminal(addr, donor)), "done");
    let s = stats(addr);
    assert_eq!(stat(&s, "models_trained"), 1);
    assert!(stat(&s, "models_cached") >= 1, "trained model not stored");

    // Same input + seed, donor's model: a real pipeline run, zero
    // training (the observer's on_training_done never fires), and a
    // bit-identical reconstruction thanks to the restored RNG state.
    let reuser = submit(
        addr,
        &format!(r#"{{"dataset": "Hosts", "seed": 21, "model": "job:{donor}"}}"#),
    );
    assert_eq!(status_of(&wait_terminal(addr, reuser)), "done");
    let s = stats(addr);
    assert_eq!(stat(&s, "pipeline_runs"), 2);
    assert_eq!(stat(&s, "models_trained"), 1, "reuse job trained a model");
    let donor_result = result_body(addr, donor);
    let reuse_result = result_body(addr, reuser);
    assert_eq!(edge_multiset(&donor_result), edge_multiset(&reuse_result));
    assert_eq!(
        donor_result.get("jaccard").and_then(Json::as_f64),
        reuse_result.get("jaccard").and_then(Json::as_f64),
    );

    // The stored model is listed.
    let models = client::get(addr, "/models")
        .expect("models")
        .json()
        .unwrap();
    assert!(stat(&models, "count") >= 1, "{models}");

    // Dangling references are a 400 at submission.
    let response =
        client::post(addr, "/jobs", r#"{"dataset": "Hosts", "model": "job:999"}"#).expect("submit");
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("donor job 999"), "{}", response.body);

    server.shutdown();
}

/// A `marioh serve` child process bound to an ephemeral port.
struct ServeProcess {
    child: Child,
    addr: SocketAddr,
}

fn spawn_serve(state_dir: &std::path::Path) -> ServeProcess {
    spawn_serve_with(state_dir, &[], &[])
}

fn spawn_serve_with(
    state_dir: &std::path::Path,
    extra_args: &[&str],
    envs: &[(&str, &str)],
) -> ServeProcess {
    let mut command = Command::new(env!("CARGO_BIN_EXE_marioh"));
    command
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--queue-cap",
            "16",
            "--state-dir",
            state_dir.to_str().expect("utf-8 path"),
        ])
        .args(extra_args);
    for (key, value) in envs {
        command.env(key, value);
    }
    let mut child = command
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn marioh serve");
    // The bound address is in the stderr banner:
    // "marioh-server listening on http://127.0.0.1:PORT (...)".
    // Notices (an armed fault plan, say) may precede it, so scan a few
    // lines rather than trusting the first.
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut seen = String::new();
    let addr = loop {
        let mut line = String::new();
        let read = reader.read_line(&mut line).expect("read listen line");
        assert!(read > 0, "serve exited before its banner: {seen:?}");
        seen.push_str(&line);
        if let Some(addr) = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|addr| addr.parse().ok())
        {
            break addr;
        }
        assert!(seen.lines().count() < 10, "no banner in: {seen:?}");
    };
    ServeProcess { child, addr }
}

#[test]
fn sigkilled_server_serves_old_results_and_resumes_its_queue_after_restart() {
    let state_dir =
        std::env::temp_dir().join(format!("marioh-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    // --- first life: a real `marioh serve` process ---------------------
    let serve = spawn_serve(&state_dir);
    let addr = serve.addr;
    let mut child = serve.child;

    let done_id = submit(addr, r#"{"dataset": "Hosts", "seed": 31}"#);
    assert_eq!(status_of(&wait_terminal(addr, done_id)), "done");
    let done_result = result_body(addr, done_id);

    // Occupy the single worker with a throttled job and stack two more
    // behind it, so the kill lands mid-queue: one running, two queued.
    let running_id = submit(
        addr,
        r#"{"dataset": "Hosts", "seed": 32, "throttle_ms": 3000}"#,
    );
    let queued_a = submit(addr, r#"{"dataset": "Hosts", "seed": 33}"#);
    let queued_b = submit(addr, r#"{"dataset": "Hosts", "seed": 34}"#);
    let deadline = Instant::now() + Duration::from_secs(30);
    while status_of(&job_view(addr, running_id)) != "running" {
        assert!(Instant::now() < deadline, "throttled job never started");
        std::thread::sleep(Duration::from_millis(10));
    }

    // SIGKILL: no shutdown hooks, no flushing courtesy — the store's
    // per-append flush discipline is all that survives.
    child.kill().expect("kill serve process");
    child.wait().expect("reap serve process");

    // --- second life: same state dir, in-process for easy assertions ---
    let server = Server::start_with_storage(
        ServerConfig {
            workers: 1,
            queue_cap: 16,
            ..ServerConfig::default()
        },
        StorageConfig {
            state_dir: Some(state_dir.clone()),
            retain: 1024,
            store_budget: None,
        },
    )
    .expect("reopen state dir");
    let addr = server.local_addr();

    // Pre-crash history is intact: same id, same status, and the result
    // is served from disk, byte-equal down to the jaccard bits.
    let view = job_view(addr, done_id);
    assert_eq!(status_of(&view), "done", "{view:?}");
    let replayed = result_body(addr, done_id);
    assert_eq!(edge_multiset(&done_result), edge_multiset(&replayed));
    assert_eq!(
        done_result.get("jaccard").and_then(Json::as_f64),
        replayed.get("jaccard").and_then(Json::as_f64),
    );
    assert_eq!(
        stats(addr).get("store").and_then(Json::as_str),
        Some("disk")
    );

    // The interrupted job and both queued jobs resume and complete.
    for id in [running_id, queued_a, queued_b] {
        let view = wait_terminal(addr, id);
        assert_eq!(status_of(&view), "done", "job {id}: {view:?}");
        assert!(
            !edge_multiset(&result_body(addr, id)).is_empty(),
            "job {id} resumed to an empty result"
        );
    }
    // Lifetime counters survived the crash: 4 submissions total, all
    // finished by now.
    let s = stats(addr);
    assert_eq!(stat(&s, "jobs_submitted"), 4);
    assert_eq!(stat(&s, "jobs_finished"), 4);

    server.shutdown();

    // --- third life: the queue is empty, history still serves ----------
    // The previous life's detached connection threads may hold the store
    // (and its exclusive dir lock) for a moment after shutdown returns;
    // retry briefly instead of flaking on "state dir is in use".
    let deadline = Instant::now() + Duration::from_secs(10);
    let server = loop {
        match Server::start_with_storage(
            ServerConfig::default(),
            StorageConfig {
                state_dir: Some(state_dir.clone()),
                retain: 1024,
                store_budget: None,
            },
        ) {
            Ok(server) => break server,
            Err(e) if Instant::now() < deadline && e.to_string().contains("in use") => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("reopen again: {e}"),
        }
    };
    let addr = server.local_addr();
    assert_eq!(status_of(&job_view(addr, running_id)), "done");
    assert_eq!(stat(&stats(addr), "queue_depth"), 0);
    // An identical resubmission of the first job now hits the on-disk
    // result cache — no pipeline, served across three process lives.
    let resubmitted = submit(addr, r#"{"dataset": "Hosts", "seed": 31}"#);
    let view = job_view(addr, resubmitted);
    assert_eq!(status_of(&view), "done", "{view:?}");
    assert_eq!(view.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(stat(&stats(addr), "pipeline_runs"), 0);
    server.shutdown();

    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn a_server_killed_between_compaction_snapshot_and_retirement_recovers_cleanly() {
    let state_dir =
        std::env::temp_dir().join(format!("marioh-compact-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    // --- first life: tiny segments, eager compaction, scripted kill ----
    // A 2 KiB segment cap rotates after a handful of records, a
    // compact-after-one-sealed-segment policy wakes the compactor
    // immediately, and `store.compact:exit@nth:2` kills the process at
    // the protocol's worst moment — the snapshot rename has landed but
    // the segments it covers are still on disk.
    let serve = spawn_serve_with(
        &state_dir,
        &["--faults", "store.compact:exit@nth:2"],
        &[
            ("MARIOH_STORE_SEGMENT_BYTES", "2048"),
            ("MARIOH_STORE_COMPACT_SEGMENTS", "1"),
        ],
    );
    let addr = serve.addr;
    let mut child = serve.child;

    let done_id = submit(addr, r#"{"dataset": "Hosts", "seed": 41}"#);
    assert_eq!(status_of(&wait_terminal(addr, done_id)), "done");
    let done_result = result_body(addr, done_id);

    // Keep submitting until the WAL rotates and the background
    // compaction trips the scripted exit. Submissions race the kill, so
    // tolerate refused connections and only count acknowledged jobs.
    let mut acked = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = child.try_wait().expect("poll serve process") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "scripted mid-compaction exit never fired"
        );
        let seed = 100 + acked.len();
        if let Ok(response) = client::post(
            addr,
            "/jobs",
            &format!(r#"{{"dataset": "Hosts", "seed": {seed}}}"#),
        ) {
            if response.status == 201 {
                if let Some(id) = response
                    .json()
                    .ok()
                    .and_then(|j| j.get("id").and_then(Json::as_u64))
                {
                    acked.push(id);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        status.code(),
        Some(86),
        "process must die through the fault exit, not a crash of its own"
    );

    // --- second life: replay must skip the snapshotted segments -------
    let server = Server::start_with_storage(
        ServerConfig {
            workers: 1,
            queue_cap: 1024,
            ..ServerConfig::default()
        },
        StorageConfig {
            state_dir: Some(state_dir.clone()),
            retain: 1024,
            store_budget: None,
        },
    )
    .expect("reopen after mid-compaction kill");
    let addr = server.local_addr();

    // The pre-crash result survives byte-for-byte, and every job the
    // dead server acknowledged is still known and runs to completion.
    let replayed = result_body(addr, done_id);
    assert_eq!(edge_multiset(&done_result), edge_multiset(&replayed));
    assert_eq!(
        done_result.get("jaccard").and_then(Json::as_f64),
        replayed.get("jaccard").and_then(Json::as_f64),
    );
    for &id in &acked {
        let view = wait_terminal(addr, id);
        assert_eq!(status_of(&view), "done", "job {id}: {view:?}");
    }
    let s = stats(addr);
    assert_eq!(stat(&s, "jobs_submitted"), 1 + acked.len() as u64);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&state_dir);
}
