//! Cross-crate integration tests: the full train → project → reconstruct
//! → evaluate pipeline over registry datasets, all through the unified
//! [`Pipeline`] / [`Reconstructor`] API.

use marioh::core::{Pipeline, Reconstructor, Variant};
use marioh::datasets::split::split_source_target;
use marioh::datasets::PaperDataset;
use marioh::hypergraph::metrics::{jaccard, multi_jaccard};
use marioh::hypergraph::projection::project;
use rand::{rngs::StdRng, SeedableRng};

fn default_pipeline() -> Pipeline {
    Pipeline::builder().build().expect("defaults are valid")
}

/// Affiliation data is the easy regime: the full pipeline should recover
/// it almost perfectly, like the paper's ≈100 entries.
#[test]
fn marioh_recovers_affiliation_datasets() {
    for ds in [PaperDataset::Crime, PaperDataset::Directors] {
        let data = ds.generate_default();
        let reduced = data.hypergraph.reduce_multiplicity();
        let mut rng = StdRng::seed_from_u64(1);
        let (source, target) = split_source_target(&reduced, &mut rng);
        let model = default_pipeline().train(&source, &mut rng).unwrap();
        let rec = model.reconstruct(&project(&target), &mut rng).unwrap();
        let j = jaccard(&target, &rec);
        assert!(j > 0.85, "{}: Jaccard {j}", data.name);
    }
}

/// The multiplicity-preserved setting on a repeated-group dataset: the
/// reconstruction must carry multiplicities, and multi-Jaccard must be
/// meaningfully positive.
#[test]
fn multiplicity_preserved_reconstruction_carries_multiplicity() {
    let data = PaperDataset::Enron.generate_scaled(0.4);
    let mut rng = StdRng::seed_from_u64(2);
    let (source, target) = split_source_target(&data.hypergraph, &mut rng);
    let model = default_pipeline().train(&source, &mut rng).unwrap();
    let rec = model.reconstruct(&project(&target), &mut rng).unwrap();
    assert!(
        rec.iter().any(|(_, m)| m > 1),
        "no hyperedge with multiplicity > 1 reconstructed"
    );
    let mj = multi_jaccard(&target, &rec);
    assert!(mj > 0.05, "multi-Jaccard {mj}");
}

/// Weight conservation: MARIOH's loop always empties the graph, so the
/// reconstruction's projection carries exactly the input weight.
#[test]
fn reconstruction_projection_conserves_weight() {
    let data = PaperDataset::Eu.generate_scaled(0.2);
    let mut rng = StdRng::seed_from_u64(3);
    let (source, target) = split_source_target(&data.hypergraph, &mut rng);
    let g = project(&target);
    let model = default_pipeline().train(&source, &mut rng).unwrap();
    let rec = model.reconstruct(&g, &mut rng).unwrap();
    assert_eq!(project(&rec).total_weight(), g.total_weight());
}

/// Every ablation variant runs end-to-end through the pipeline builder
/// and produces a sane reconstruction.
#[test]
fn all_variants_run_end_to_end() {
    let data = PaperDataset::Hosts.generate_default();
    let reduced = data.hypergraph.reduce_multiplicity();
    let mut rng = StdRng::seed_from_u64(4);
    let (source, target) = split_source_target(&reduced, &mut rng);
    let g = project(&target);
    for variant in Variant::all() {
        let mut vrng = StdRng::seed_from_u64(10 + variant as u64);
        let method = Pipeline::builder()
            .variant(variant)
            .build()
            .expect("variant defaults are valid")
            .train(&source, &mut vrng)
            .expect("non-empty source");
        assert_eq!(method.name(), variant.name());
        let rec = method.reconstruct(&g, &mut vrng).unwrap();
        let j = jaccard(&target, &rec);
        assert!(
            j > 0.5,
            "{} scored only {j} on the easy Hosts dataset",
            variant.name()
        );
    }
}

/// Reconstruction is deterministic given the seed.
#[test]
fn pipeline_is_deterministic() {
    let data = PaperDataset::Crime.generate_default();
    let run = || {
        let mut rng = StdRng::seed_from_u64(5);
        let (source, target) = split_source_target(&data.hypergraph, &mut rng);
        let model = default_pipeline().train(&source, &mut rng).unwrap();
        let rec = model.reconstruct(&project(&target), &mut rng).unwrap();
        (jaccard(&target, &rec), rec.total_edge_count())
    };
    assert_eq!(run(), run());
}

/// Transfer: a model trained on one co-authorship dataset reconstructs
/// another co-authorship dataset far better than chance.
#[test]
fn transfer_across_coauthorship_datasets() {
    let mut rng = StdRng::seed_from_u64(6);
    let dblp = PaperDataset::Dblp.generate_scaled(1.0 / 64.0);
    let mag = PaperDataset::MagHistory.generate_scaled(1.0 / 16.0);
    let (train_half, _) = split_source_target(&dblp.hypergraph.reduce_multiplicity(), &mut rng);
    let (_, eval_half) = split_source_target(&mag.hypergraph.reduce_multiplicity(), &mut rng);
    let model = default_pipeline().train(&train_half, &mut rng).unwrap();
    let rec = model.reconstruct(&project(&eval_half), &mut rng).unwrap();
    let j = jaccard(&eval_half, &rec);
    assert!(j > 0.5, "transfer Jaccard {j}");
}
