//! End-to-end test of the observability surface: `GET /metrics` on a
//! `serve --shards 2` server with real `marioh shard-worker` child
//! processes.
//!
//! Asserts that the exposition parses as valid Prometheus text format,
//! that its counters agree exactly with the `/stats` JSON view (both
//! read the same merged snapshot), that per-shard wire metrics and
//! worker-pushed engine metrics arrive with `shard="K"` labels, and
//! that `/stats` reports the per-shard heartbeat/in-flight section.

use marioh::server::{client, Json, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn sharded_config(shards: usize) -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_cap: 32,
        shards,
        shard_worker: vec![
            env!("CARGO_BIN_EXE_marioh").to_owned(),
            "shard-worker".to_owned(),
        ],
        ..ServerConfig::default()
    }
}

fn get(addr: SocketAddr, path: &str) -> client::HttpResponse {
    client::get(addr, path).unwrap_or_else(|e| panic!("GET {path}: {e}"))
}

/// Validates Prometheus text exposition format, line by line: comments
/// are `# HELP`/`# TYPE`, samples are `name[{labels}] value` with a
/// legal metric name and a parseable float value.
fn assert_valid_exposition(text: &str) {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    assert!(!text.is_empty(), "empty exposition");
    assert!(text.ends_with('\n'), "exposition must end with a newline");
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("TYPE ") || comment.starts_with("HELP "),
                "unknown comment form: {line:?}"
            );
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split(' ');
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    panic!("malformed TYPE line: {line:?}");
                };
                assert!(valid_name(name), "bad family name in {line:?}");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad kind in {line:?}"
                );
            }
            continue;
        }
        // A sample: `name value` or `name{label="v",...} value`.
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                let body = labels.strip_suffix('}').unwrap_or_else(|| {
                    panic!("unclosed label block in {line:?}");
                });
                for pair in body.split("\",") {
                    let (key, val) = pair
                        .split_once("=\"")
                        .unwrap_or_else(|| panic!("malformed label pair {pair:?} in {line:?}"));
                    assert!(valid_name(key), "bad label name {key:?} in {line:?}");
                    assert!(
                        !val.contains('"') || val.ends_with('"'),
                        "stray quote in label value {val:?}"
                    );
                }
                name
            }
            None => series,
        };
        assert!(valid_name(name), "bad metric name in {line:?}");
    }
}

/// The value of an exactly-named sample series in the exposition.
fn sample_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        let value = rest.strip_prefix(' ')?;
        value.parse().ok()
    })
}

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {key:?} missing: {stats}"))
}

#[test]
fn metrics_exposition_agrees_with_stats_on_a_sharded_server() {
    let server = Server::start(sharded_config(2)).unwrap();
    let addr = server.local_addr();

    // Run a small batch so every layer has something to count.
    let bodies: Vec<String> = (0..6)
        .map(|seed| format!(r#"{{"dataset": "Hosts", "seed": {seed}}}"#))
        .collect();
    let response = client::post(addr, "/jobs", &format!("[{}]", bodies.join(","))).unwrap();
    assert_eq!(response.status, 201, "{}", response.body);
    let batch = response
        .json()
        .unwrap()
        .get("batch")
        .and_then(Json::as_u64)
        .expect("batch id");
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let view = get(addr, &format!("/batches/{batch}")).json().unwrap();
        if view.get("complete").and_then(Json::as_bool) == Some(true) {
            assert_eq!(view.get("done").and_then(Json::as_u64), Some(6), "{view}");
            break;
        }
        assert!(Instant::now() < deadline, "batch never completed: {view}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Worker snapshots ride in after job results (and on every 1 s
    // heartbeat), so poll until both the engine counters pushed from a
    // shard-worker process and each shard's wire counters are visible.
    let deadline = Instant::now() + Duration::from_secs(30);
    let text = loop {
        let response = get(addr, "/metrics");
        assert_eq!(response.status, 200, "{}", response.body);
        let text = response.body;
        let worker_push_landed = text.contains("marioh_engine_cliques_rescored_total{shard=\"");
        let wire_counted = (0..2).all(|shard| {
            sample_value(
                &text,
                &format!("marioh_dispatch_frames_sent_total{{shard=\"{shard}\"}}"),
            )
            .is_some_and(|v| v > 0.0)
        });
        if worker_push_landed && wire_counted {
            break text;
        }
        assert!(
            Instant::now() < deadline,
            "shard metrics never appeared in the exposition:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_valid_exposition(&text);

    // Snapshot both views back-to-back (no jobs are running, so the
    // counters this test compares are quiescent).
    let stats = get(addr, "/stats").json().unwrap();
    let text = {
        let response = get(addr, "/metrics");
        assert_eq!(response.status, 200);
        response.body
    };

    // The JSON view and the exposition read the same merged registry.
    for (stat_key, series) in [
        ("pipeline_runs", "marioh_server_pipeline_runs_total"),
        ("cache_hits", "marioh_server_cache_hits_total"),
        ("models_trained", "marioh_server_models_trained_total"),
        ("shards", "marioh_server_shards"),
        ("shard_restarts", "marioh_server_shard_restarts_total"),
    ] {
        let from_stats = stat_u64(&stats, stat_key) as f64;
        let from_metrics = sample_value(&text, series)
            .unwrap_or_else(|| panic!("series {series} missing:\n{text}"));
        assert_eq!(from_metrics, from_stats, "{stat_key} vs {series}");
    }
    assert_eq!(stat_u64(&stats, "pipeline_runs"), 6);
    assert_eq!(stat_u64(&stats, "shards"), 2);

    // Engine totals in /stats are family sums over the shard-labelled
    // series the workers pushed.
    let rescored_sum: f64 = text
        .lines()
        .filter(|l| l.starts_with("marioh_engine_cliques_rescored_total{shard=\""))
        .filter_map(|l| l.rsplit_once(' ')?.1.parse::<f64>().ok())
        .sum();
    assert_eq!(stat_u64(&stats, "cliques_rescored") as f64, rescored_sum);
    assert!(rescored_sum > 0.0, "six real runs must have scored cliques");

    // HTTP latency histograms cover the endpoints this test has hit.
    for endpoint in ["/stats", "/metrics", "/batches/:id"] {
        let series = format!("marioh_http_request_seconds_count{{endpoint=\"{endpoint}\"}}");
        assert!(
            sample_value(&text, &series).is_some_and(|v| v > 0.0),
            "series {series} missing:\n{text}"
        );
    }

    // Pipeline-phase histograms ride in from the shard workers (the
    // phases ran in their processes), and the artifact-store counters
    // come from this process's cache consults during routing.
    assert!(
        text.contains("marioh_phase_seconds_bucket{phase=\""),
        "no pipeline-phase histograms:\n{text}"
    );
    assert!(
        text.contains("marioh_store_artifact_cache_misses_total{kind=\""),
        "no artifact-store counters:\n{text}"
    );

    // Satellite: /stats reports per-shard heartbeat age and in-flight
    // counts for both live shard worker processes.
    let shard_status = stats
        .get("shard_status")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("stats lacks shard_status: {stats}"));
    assert_eq!(shard_status.len(), 2, "{stats}");
    for (shard, entry) in shard_status.iter().enumerate() {
        assert_eq!(stat_u64(entry, "shard"), shard as u64, "{entry}");
        // Heartbeats land every second; a live shard was seen recently.
        assert!(stat_u64(entry, "last_heartbeat_ms") < 60_000, "{entry}");
        assert_eq!(stat_u64(entry, "inflight"), 0, "batch done: {entry}");
    }

    // Wrong methods on /metrics are 405s like every other route.
    assert_eq!(client::post(addr, "/metrics", "{}").unwrap().status, 405);

    server.shutdown();
}
