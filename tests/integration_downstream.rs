//! Cross-crate integration tests for the downstream tasks on registry
//! datasets — the applicability claims of Sect. IV-D at test scale.

use marioh::core::{Marioh, Reconstructor as _, TrainingConfig};
use marioh::datasets::split::split_source_target;
use marioh::datasets::PaperDataset;
use marioh::downstream::{cluster_graph, cluster_hypergraph, link_prediction_auc, LinkPredInput};
use marioh::hypergraph::projection::project;
use marioh::ml::metrics::nmi;
use rand::{rngs::StdRng, SeedableRng};

/// Hypergraph-aware clustering of a contact dataset should match or beat
/// projected-graph clustering against the planted communities.
#[test]
fn hypergraph_clustering_at_least_matches_graph_clustering() {
    let data = PaperDataset::PSchool.generate_scaled(0.15);
    let labels_all = data.labels.expect("P.School carries labels");
    let h = data.hypergraph.reduce_multiplicity();
    let covered = h.covered_nodes();
    let labels: Vec<usize> = covered.iter().map(|n| labels_all[n.index()]).collect();
    let k = {
        let mut d = labels.clone();
        d.sort_unstable();
        d.dedup();
        d.len()
    };
    let restrict =
        |assign: Vec<usize>| -> Vec<usize> { covered.iter().map(|n| assign[n.index()]).collect() };
    let g = project(&h);
    // k-means initialisation makes single runs noisy: compare the best of
    // three seeds per input, as one would in practice.
    let best = |f: &dyn Fn(&mut StdRng) -> Vec<usize>| -> f64 {
        (0..3)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                nmi(&restrict(f(&mut rng)), &labels)
            })
            .fold(0.0, f64::max)
    };
    let nmi_graph = best(&|rng| cluster_graph(&g, k, rng));
    let nmi_hyper = best(&|rng| cluster_hypergraph(&h, k, rng));
    assert!(
        nmi_hyper + 0.1 >= nmi_graph,
        "hypergraph NMI {nmi_hyper} far below graph NMI {nmi_graph}"
    );
    assert!(
        nmi_hyper > 0.3,
        "hypergraph clustering uninformative: {nmi_hyper}"
    );
}

/// Link prediction with a MARIOH reconstruction stays within a few points
/// of using the ground-truth hypergraph (the Table IX claim).
#[test]
fn reconstruction_link_prediction_close_to_ground_truth() {
    let data = PaperDataset::Eu.generate_scaled(0.12);
    let reduced = data.hypergraph.reduce_multiplicity();
    let mut rng = StdRng::seed_from_u64(1);
    let (source, target) = split_source_target(&reduced, &mut rng);
    let g = project(&target);
    let model = Marioh::train(&source, &TrainingConfig::default(), &mut rng);
    let rec = model.reconstruct(&g, &mut rng).unwrap();

    let auc_of = |hg: Option<&marioh::hypergraph::Hypergraph>, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        link_prediction_auc(
            &LinkPredInput {
                graph: &g,
                hypergraph: hg,
            },
            &mut rng,
        )
    };
    let auc_rec = auc_of(Some(&rec), 7);
    let auc_truth = auc_of(Some(&target), 7);
    assert!(auc_rec > 0.6, "reconstruction AUC {auc_rec}");
    assert!(
        (auc_rec - auc_truth).abs() < 0.12,
        "reconstruction AUC {auc_rec} far from ground truth {auc_truth}"
    );
}

/// Clustering is deterministic given the seed (no hidden global RNG).
#[test]
fn clustering_is_deterministic() {
    let data = PaperDataset::HSchool.generate_scaled(0.1);
    let h = data.hypergraph.reduce_multiplicity();
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        cluster_hypergraph(&h, 4, &mut rng)
    };
    assert_eq!(run(3), run(3));
}
