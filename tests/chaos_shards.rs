//! Chaos e2e: scripted fault plans (`--faults`, see
//! `crates/fault/FORMATS.md`) against a real `marioh serve --shards 4`
//! child-process fleet.
//!
//! * mid-stream frame corruption (parent and worker side) is absorbed:
//!   the 16-job batch completes bit-identical to a fault-free
//!   in-process run, and `marioh_faults_injected_total` counts the
//!   injections,
//! * a scripted crash loop on one shard trips the circuit breaker
//!   (visible in `/stats`), its jobs reroute to in-process execution,
//!   the batch still completes, and after the cooldown the breaker
//!   closes again,
//! * per-job deadlines fire across the wire with a typed timeout
//!   reason, never a hang.
//!
//! The test process itself never arms a fault plan — all injection is
//! scripted into the serve child via `--faults`, so the rest of the
//! suite sees a clean process.

use marioh::dispatch::shard_for;
use marioh::server::{client, Json, Server, ServerConfig};
use marioh::store::{JobSpec, Json as StoreJson};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The 16-job workload: distinct seeds, so distinct spec hashes that
/// spread across shards.
fn batch_bodies(throttle_ms: u64) -> Vec<String> {
    (0..16)
        .map(|seed| {
            format!(r#"{{"dataset": "Hosts", "seed": {seed}, "throttle_ms": {throttle_ms}}}"#)
        })
        .collect()
}

fn post_batch(addr: SocketAddr, bodies: &[String]) -> (u64, Vec<u64>) {
    let body = format!("[{}]", bodies.join(","));
    let response = client::post(addr, "/jobs", &body).expect("submit batch");
    assert_eq!(response.status, 201, "{}", response.body);
    let json = response.json().expect("valid JSON");
    let batch = json.get("batch").and_then(Json::as_u64).expect("batch id");
    let ids: Vec<u64> = json
        .get("ids")
        .and_then(Json::as_array)
        .expect("ids array")
        .iter()
        .map(|v| v.as_u64().expect("job id"))
        .collect();
    (batch, ids)
}

fn wait_batch_complete(addr: SocketAddr, batch: u64, timeout: Duration) -> Json {
    let deadline = Instant::now() + timeout;
    loop {
        let response = client::get(addr, &format!("/batches/{batch}")).expect("batch view");
        assert_eq!(response.status, 200, "{}", response.body);
        let view = response.json().expect("valid JSON");
        if view.get("complete").and_then(Json::as_bool) == Some(true) {
            return view;
        }
        assert!(
            Instant::now() < deadline,
            "batch {batch} not complete in time: {view}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A result reduced to comparable form: sorted `(nodes, multiplicity)`
/// pairs plus the exact jaccard bits.
type Fingerprint = (Vec<(Vec<u64>, u64)>, u64);

fn fingerprint(addr: SocketAddr, id: u64) -> Fingerprint {
    let response = client::get(addr, &format!("/jobs/{id}/result")).expect("result");
    assert_eq!(response.status, 200, "{}", response.body);
    let result = response.json().expect("valid JSON");
    let mut edges: Vec<(Vec<u64>, u64)> = result
        .get("edges")
        .and_then(Json::as_array)
        .expect("edges array")
        .iter()
        .map(|e| {
            (
                e.get("nodes")
                    .and_then(Json::as_array)
                    .expect("nodes array")
                    .iter()
                    .map(|n| n.as_u64().expect("node id"))
                    .collect(),
                e.get("multiplicity")
                    .and_then(Json::as_u64)
                    .expect("multiplicity"),
            )
        })
        .collect();
    edges.sort();
    let jaccard = result
        .get("jaccard")
        .and_then(Json::as_f64)
        .expect("jaccard");
    (edges, jaccard.to_bits())
}

fn stats(addr: SocketAddr) -> Json {
    client::get(addr, "/stats")
        .expect("stats")
        .json()
        .expect("valid JSON")
}

/// Reads one counter/gauge value from the Prometheus exposition,
/// summing across label sets whose line starts with `prefix`.
fn metric_total(addr: SocketAddr, prefix: &str) -> f64 {
    let response = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(response.status, 200);
    response
        .body
        .lines()
        .filter(|line| line.starts_with(prefix))
        .filter_map(|line| line.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

/// A `marioh serve --shards` child process bound to an ephemeral port,
/// with a scripted fault plan and fast breaker/backoff knobs.
struct ServeProcess {
    child: Child,
    addr: SocketAddr,
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_chaos_serve(shards: usize, faults: Option<&str>, extra: &[&str]) -> ServeProcess {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_marioh"));
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--queue-cap",
        "32",
        "--shards",
        &shards.to_string(),
    ])
    .args(extra)
    // Keep the chaos loops fast: short respawn backoff, short breaker
    // cooldown so recovery is observable within the test budget.
    .env("MARIOH_RESPAWN_BACKOFF_MS", "40")
    .env("MARIOH_BREAKER_COOLDOWN_MS", "1200")
    .stdout(Stdio::null())
    .stderr(Stdio::piped());
    if let Some(plan) = faults {
        cmd.args(["--faults", plan]);
    }
    let mut child = cmd.spawn().expect("spawn marioh serve --shards");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    // With --faults the first stderr line announces the armed plan;
    // keep reading until the listen banner.
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read serve stderr");
        assert!(n > 0, "serve exited before printing its listen banner");
        if let Some(addr) = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|addr| addr.parse().ok())
        {
            break addr;
        }
    };
    // Keep draining stderr for the child's lifetime: dropping the pipe
    // would make the serve process's later eprintln!s (breaker
    // transitions, respawn notes) fail on a closed pipe and panic.
    std::thread::spawn(move || {
        let mut line = String::new();
        while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
            line.clear();
        }
    });
    ServeProcess { child, addr }
}

/// Fault-free reference run on the in-process pool, used as the
/// bit-identical baseline for the chaos runs.
fn reference_fingerprints(bodies: &[String]) -> Vec<Fingerprint> {
    let pooled = Server::start(ServerConfig {
        workers: 4,
        queue_cap: 32,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = pooled.local_addr();
    let (batch, ids) = post_batch(addr, bodies);
    wait_batch_complete(addr, batch, Duration::from_secs(180));
    let prints = ids.iter().map(|id| fingerprint(addr, *id)).collect();
    pooled.shutdown();
    prints
}

#[test]
fn frame_corruption_chaos_stays_bit_identical_and_is_counted() {
    let reference = reference_fingerprints(&batch_bodies(0));

    // One corrupted frame per process incarnation: the parent's 25th
    // send (handshakes and dispatches land earlier, so this hits an
    // established channel) and each worker's 25th. Every hit is a CRC
    // failure on the peer, i.e. one clean shard death + respawn +
    // idempotent re-dispatch.
    let serve = spawn_chaos_serve(4, Some("wire.frame:corrupt@nth:25"), &[]);
    let addr = serve.addr;

    let (batch, ids) = post_batch(addr, &batch_bodies(0));
    let view = wait_batch_complete(addr, batch, Duration::from_secs(240));
    assert_eq!(
        view.get("done").and_then(Json::as_u64),
        Some(ids.len() as u64),
        "chaos batch did not fully complete: {view}"
    );
    let results: Vec<Fingerprint> = ids.iter().map(|id| fingerprint(addr, *id)).collect();
    assert_eq!(
        results, reference,
        "results under frame corruption differ from the fault-free run"
    );

    // The parent keeps sending pings, so its own nth:25 fires within a
    // couple of seconds even if the batch finished first; the injection
    // counter and the respawn counter must both report it.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let injected = metric_total(addr, "marioh_faults_injected_total{site=\"wire.frame\"}");
        let restarts = stats(addr)
            .get("shard_restarts")
            .and_then(Json::as_u64)
            .expect("shard_restarts");
        if injected >= 1.0 && restarts >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fault metrics never reported: injected={injected} restarts={restarts}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn scripted_crash_loop_trips_the_breaker_reroutes_and_recovers() {
    // The plan must name its victim before boot, and shard placement is
    // pure (`shard_for` over the canonical spec hash), so pick the
    // shard that will receive the most of the 16 jobs.
    let bodies = batch_bodies(600);
    let mut per_shard = [0usize; 4];
    for body in &bodies {
        let spec = JobSpec::from_json(&StoreJson::parse(body).unwrap()).unwrap();
        per_shard[shard_for(spec.content_hash().unwrap().as_bytes(), 4)] += 1;
    }
    let victim = (0..4).max_by_key(|s| per_shard[*s]).unwrap();
    assert!(
        per_shard[victim] >= 3,
        "placement too skewed: {per_shard:?}"
    );

    // Every incarnation of the victim's worker exits (code 86) on its
    // first dispatched job — a crash loop the respawn backoff cannot
    // clear, so the breaker must open and reroute.
    let plan = format!("shard.{victim}:exit@job:1");
    let serve = spawn_chaos_serve(4, Some(&plan), &[]);
    let addr = serve.addr;

    let (batch, ids) = post_batch(addr, &bodies);

    // The breaker opens while the batch is in flight.
    let deadline = Instant::now() + Duration::from_secs(90);
    loop {
        let s = stats(addr);
        let open = s
            .get("breakers_open")
            .and_then(Json::as_u64)
            .unwrap_or_default();
        if open >= 1 {
            let entry = &s.get("shard_status").and_then(Json::as_array).unwrap()[victim];
            assert_eq!(
                entry.get("breaker_open").and_then(Json::as_bool),
                Some(true)
            );
            break;
        }
        assert!(Instant::now() < deadline, "breaker never opened: {s}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Despite the dead shard the whole batch completes: its jobs were
    // rerouted to in-process execution.
    let view = wait_batch_complete(addr, batch, Duration::from_secs(240));
    assert_eq!(
        view.get("done").and_then(Json::as_u64),
        Some(ids.len() as u64),
        "batch did not complete across the open breaker: {view}"
    );
    assert!(
        metric_total(addr, "marioh_dispatch_breaker_rerouted_total") >= 1.0,
        "reroutes were not counted"
    );

    // With no jobs left to kill it, the post-cooldown half-open probe
    // respawns a healthy worker and the breaker closes.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = stats(addr);
        let entry = &s.get("shard_status").and_then(Json::as_array).unwrap()[victim];
        if entry.get("breaker_open").and_then(Json::as_bool) == Some(false) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker never recovered after the crash loop drained: {s}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn job_deadline_fires_across_the_wire_with_a_typed_reason() {
    // No fault plan: the deadline machinery itself is the subject. The
    // spec-level timeout must cancel a wedged (60 s throttle) job in
    // shard mode and surface the typed reason, not a hang.
    let serve = spawn_chaos_serve(2, None, &[]);
    let addr = serve.addr;

    let response = client::post(
        addr,
        "/jobs",
        r#"{"dataset": "Hosts", "throttle_ms": 60000, "timeout_secs": 1}"#,
    )
    .expect("submit");
    assert_eq!(response.status, 201, "{}", response.body);
    let id = response
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .expect("job id");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let view = client::get(addr, &format!("/jobs/{id}"))
            .expect("job view")
            .json()
            .expect("valid JSON");
        match view.get("status").and_then(Json::as_str) {
            Some("failed") => {
                let error = view.get("error").and_then(Json::as_str).expect("error");
                assert!(
                    error.contains("timed out") && error.contains("1s deadline"),
                    "untyped timeout failure: {error:?}"
                );
                break;
            }
            Some("cancelled") => panic!("timeout surfaced as a plain cancellation: {view}"),
            _ => {
                assert!(Instant::now() < deadline, "deadline never fired: {view}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}
