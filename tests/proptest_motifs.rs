//! Property-based tests for the h-motif census and its canonicalisation.

use marioh::hypergraph::hyperedge::Hyperedge;
use marioh::hypergraph::motifs::{canonical_pattern, motif_census, profile_distance};
use marioh::hypergraph::{Hypergraph, NodeId};
use proptest::prelude::*;

fn arb_hypergraph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Hypergraph> {
    proptest::collection::vec(proptest::collection::vec(0..max_nodes, 2..5), 3..=max_edges)
        .prop_map(move |edges| {
            let mut h = Hypergraph::new(max_nodes);
            for nodes in edges {
                if let Some(e) = Hyperedge::new(nodes.into_iter().map(NodeId)) {
                    h.add_edge(e);
                }
            }
            h
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalisation is idempotent over the whole 7-bit pattern space.
    #[test]
    fn canonicalisation_is_idempotent(p in 0u8..128) {
        let c = canonical_pattern(p);
        prop_assert_eq!(canonical_pattern(c), c);
        prop_assert!(c <= p);
    }

    /// The census never counts more triples than C(m, 3), and the
    /// profile is a probability vector.
    #[test]
    fn census_bounds(h in arb_hypergraph(12, 10)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        use rand::SeedableRng;
        let census = motif_census(&h, 1_000_000, &mut rng);
        let m = h.unique_edge_count() as u64;
        let max_triples = m * m.saturating_sub(1) * m.saturating_sub(2) / 6;
        prop_assert!(census.triples <= max_triples);
        if census.triples > 0 {
            let total: f64 = census.profile().iter().map(|(_, v)| v).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        // Distance to self is exactly zero (deterministic full census).
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(0);
        let census2 = motif_census(&h, 1_000_000, &mut rng2);
        prop_assert_eq!(profile_distance(&census, &census2), 0.0);
    }

    /// Relabelling nodes must not change the census (pattern counts are
    /// label-invariant).
    #[test]
    fn census_is_label_invariant(h in arb_hypergraph(10, 8), offset in 1u32..50) {
        let mut relabeled = Hypergraph::new(h.num_nodes() + offset);
        for (e, m) in h.iter() {
            let nodes: Vec<NodeId> = e.nodes().iter().map(|n| NodeId(n.0 + offset)).collect();
            relabeled.add_edge_with_multiplicity(
                Hyperedge::new(nodes).expect("same arity"),
                m,
            );
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let a = motif_census(&h, 1_000_000, &mut rng);
        let b = motif_census(&relabeled, 1_000_000, &mut rng);
        prop_assert_eq!(a.triples, b.triples);
        prop_assert_eq!(a.sorted_counts(), b.sorted_counts());
    }
}
