//! Cross-crate integration tests for the baseline methods: every method
//! produces structurally valid output on real registry datasets, and the
//! whole zoo satisfies a shared [`ReconstructionMethod`] conformance
//! contract.

use marioh::baselines::shyre::{ShyreFlavor, ShyreSupervised, ShyreUnsup};
use marioh::baselines::{
    BayesianMdl, CFinder, CliqueCovering, Demon, MaxClique, ReconstructionMethod,
};
use marioh::core::{Pipeline, Variant};
use marioh::datasets::split::split_source_target;
use marioh::datasets::PaperDataset;
use marioh::hypergraph::metrics::jaccard;
use marioh::hypergraph::projection::project;
use marioh::hypergraph::{Hypergraph, ProjectedGraph};
use rand::{rngs::StdRng, SeedableRng};

fn fixture() -> (Hypergraph, Hypergraph, ProjectedGraph) {
    let data = PaperDataset::Hosts.generate_default();
    let reduced = data.hypergraph.reduce_multiplicity();
    let mut rng = StdRng::seed_from_u64(0);
    let (source, target) = split_source_target(&reduced, &mut rng);
    let g = project(&target);
    (source, target, g)
}

/// Every reconstructed hyperedge must be a clique of the input graph —
/// no method may invent node pairs that never co-occurred.
fn assert_edges_are_cliques(rec: &Hypergraph, g: &ProjectedGraph, name: &str) {
    for (e, _) in rec.iter() {
        for (u, v) in e.pairs() {
            assert!(g.has_edge(u, v), "{name} invented pair ({u}, {v}) in {e}");
        }
    }
}

/// The shared conformance contract of the core trait: a stable non-empty
/// name, infallible success on ordinary graphs, determinism under a
/// fixed seed, and output confined to the input's node set. (Clique-ness
/// of every hyperedge is NOT part of the contract — community methods
/// like Demon legitimately merge beyond cliques.)
fn assert_conformance(method: &dyn ReconstructionMethod, g: &ProjectedGraph, seed: u64) {
    let name = method.name();
    assert!(!name.is_empty(), "method with empty name");
    let mut rng = StdRng::seed_from_u64(seed);
    let rec = method
        .reconstruct(g, &mut rng)
        .unwrap_or_else(|e| panic!("{name} failed: {e}"));
    for (e, _) in rec.iter() {
        for u in e.nodes() {
            assert!(
                u.0 < g.num_nodes(),
                "{name} invented node {u} beyond the input's {} nodes",
                g.num_nodes()
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let again = method
        .reconstruct(g, &mut rng)
        .unwrap_or_else(|e| panic!("{name} failed on rerun: {e}"));
    assert_eq!(rec, again, "{name} is not deterministic under a fixed seed");
}

#[test]
fn every_method_satisfies_the_conformance_contract() {
    let (source, _, g) = fixture();
    let mut rng = StdRng::seed_from_u64(7);
    let methods: Vec<Box<dyn ReconstructionMethod>> = vec![
        Box::new(MaxClique),
        Box::new(CliqueCovering),
        Box::new(BayesianMdl::default()),
        Box::new(ShyreUnsup),
        Box::new(Demon::default()),
        Box::new(CFinder::new(3)),
        Box::new(ShyreSupervised::train(
            ShyreFlavor::Count,
            &source,
            &mut rng,
        )),
        Box::new(ShyreSupervised::train(
            ShyreFlavor::Motif,
            &source,
            &mut rng,
        )),
        Box::new(
            Pipeline::builder()
                .variant(Variant::Full)
                .build()
                .expect("defaults are valid")
                .train(&source, &mut rng)
                .expect("non-empty source"),
        ),
    ];
    for (i, m) in methods.iter().enumerate() {
        assert_conformance(m.as_ref(), &g, 100 + i as u64);
    }
    // Names are unique across the zoo.
    let mut names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), methods.len(), "duplicate method names");
}

#[test]
fn clique_decomposition_methods_produce_valid_cliques() {
    let (_, _, g) = fixture();
    let mut rng = StdRng::seed_from_u64(1);
    for method in [&MaxClique as &dyn ReconstructionMethod, &CliqueCovering] {
        let rec = method.reconstruct(&g, &mut rng).unwrap();
        assert!(rec.unique_edge_count() > 0, "{}", method.name());
        assert_edges_are_cliques(&rec, &g, method.name());
    }
}

#[test]
fn cover_methods_cover_every_edge() {
    let (_, _, g) = fixture();
    let mut rng = StdRng::seed_from_u64(2);
    for method in [
        &CliqueCovering as &dyn ReconstructionMethod,
        &BayesianMdl::default(),
        &ShyreUnsup,
    ] {
        let rec = method.reconstruct(&g, &mut rng).unwrap();
        for (u, v, _) in g.sorted_edge_list() {
            assert!(
                rec.iter().any(|(e, _)| e.contains(u) && e.contains(v)),
                "{} left edge ({u}, {v}) uncovered",
                method.name()
            );
        }
    }
}

#[test]
fn supervised_shyre_beats_community_methods_on_hosts() {
    let (source, target, g) = fixture();
    let mut rng = StdRng::seed_from_u64(3);
    let shyre = ShyreSupervised::train(ShyreFlavor::Count, &source, &mut rng);
    let j_shyre = jaccard(&target, &shyre.reconstruct(&g, &mut rng).unwrap());
    let j_cfinder = jaccard(&target, &CFinder::new(3).reconstruct(&g, &mut rng).unwrap());
    let j_demon = jaccard(
        &target,
        &Demon::default().reconstruct(&g, &mut rng).unwrap(),
    );
    assert!(
        j_shyre >= j_cfinder && j_shyre >= j_demon,
        "SHyRe {j_shyre} vs CFinder {j_cfinder} / Demon {j_demon}"
    );
}

#[test]
fn shyre_unsup_preserves_total_weight() {
    let (_, _, g) = fixture();
    let mut rng = StdRng::seed_from_u64(4);
    let rec = ShyreUnsup.reconstruct(&g, &mut rng).unwrap();
    assert_eq!(project(&rec).total_weight(), g.total_weight());
}

#[test]
fn all_baselines_handle_an_empty_graph() {
    let g = ProjectedGraph::new(5);
    let mut rng = StdRng::seed_from_u64(5);
    let methods: Vec<Box<dyn ReconstructionMethod>> = vec![
        Box::new(MaxClique),
        Box::new(CliqueCovering),
        Box::new(BayesianMdl::default()),
        Box::new(ShyreUnsup),
        Box::new(Demon::default()),
        Box::new(CFinder::new(3)),
    ];
    for m in methods {
        let rec = m.reconstruct(&g, &mut rng).unwrap();
        assert_eq!(rec.unique_edge_count(), 0, "{}", m.name());
    }
}

#[test]
fn motif_flavor_runs_on_registry_data() {
    let (source, target, g) = fixture();
    let mut rng = StdRng::seed_from_u64(6);
    let shyre = ShyreSupervised::train(ShyreFlavor::Motif, &source, &mut rng);
    let rec = shyre.reconstruct(&g, &mut rng).unwrap();
    assert!(jaccard(&target, &rec) > 0.3);
    assert_edges_are_cliques(&rec, &g, "SHyRe-Motif");
}
