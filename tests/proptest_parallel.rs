//! Property-based tests of the parallel paths and the sparse kernels:
//! any thread count must be observationally identical to the serial
//! implementation, and CSR must agree with the dense reference.

use marioh::core::model::FnScorer;
use marioh::core::parallel::score_cliques;
use marioh::core::search::{bidirectional_search, bidirectional_search_threaded};
use marioh::core::CancelToken;
use marioh::hypergraph::clique::maximal_cliques;
use marioh::hypergraph::parallel::maximal_cliques_parallel;
use marioh::hypergraph::{Hypergraph, NodeId, ProjectedGraph};
use marioh::linalg::sparse::{normalized_adjacency, CsrMatrix};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Strategy: a random weighted graph over `n ≤ max_nodes` nodes.
fn arb_graph(max_nodes: u32) -> impl Strategy<Value = ProjectedGraph> {
    (2..=max_nodes).prop_flat_map(|n| {
        let pairs = (n * (n - 1) / 2) as usize;
        proptest::collection::vec(proptest::option::of(1u32..5), pairs).prop_map(move |weights| {
            let mut g = ProjectedGraph::new(n);
            let mut it = weights.into_iter();
            for u in 0..n {
                for v in u + 1..n {
                    if let Some(Some(w)) = it.next() {
                        g.add_edge_weight(NodeId(u), NodeId(v), w);
                    }
                }
            }
            g
        })
    })
}

/// Strategy: sparse triplets within a `rows × cols` shape.
fn arb_triplets(rows: u32, cols: u32) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::vec((0..rows, 0..cols, -5.0f64..5.0), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel clique enumeration is byte-identical to serial for any
    /// thread count.
    #[test]
    fn parallel_cliques_equal_serial(g in arb_graph(16), threads in 2usize..9) {
        prop_assert_eq!(maximal_cliques_parallel(&g, threads), maximal_cliques(&g));
    }

    /// Parallel scoring returns the same scores at the same indices.
    #[test]
    fn parallel_scoring_equals_serial(g in arb_graph(14), threads in 2usize..9) {
        let scorer = FnScorer(|g: &ProjectedGraph, c: &[NodeId]| {
            let mut acc = c.len() as f64;
            for (i, &u) in c.iter().enumerate() {
                for &v in &c[i + 1..] {
                    acc += f64::from(g.weight(u, v));
                }
            }
            acc / (acc + 1.0)
        });
        let cliques = maximal_cliques(&g);
        prop_assert_eq!(
            score_cliques(&scorer, &g, &cliques, threads),
            score_cliques(&scorer, &g, &cliques, 1)
        );
    }

    /// A threaded search round produces the same commits, stats, and
    /// residual graph as the serial round.
    #[test]
    fn threaded_search_round_equals_serial(g in arb_graph(12), threads in 2usize..6) {
        let scorer = FnScorer(|_: &ProjectedGraph, c: &[NodeId]| 1.0 / c.len() as f64);
        let run_serial = || {
            let mut work = g.clone();
            let mut rec = Hypergraph::new(g.num_nodes());
            let mut rng = StdRng::seed_from_u64(3);
            let stats = bidirectional_search(&mut work, &scorer, 0.3, 60.0, &mut rec, true, &mut rng);
            (work, rec, stats)
        };
        let run_threaded = |t: usize| {
            let mut work = g.clone();
            let mut rec = Hypergraph::new(g.num_nodes());
            let mut rng = StdRng::seed_from_u64(3);
            let stats = bidirectional_search_threaded(
                &mut work,
                &scorer,
                0.3,
                60.0,
                &mut rec,
                true,
                t,
                &CancelToken::new(),
                &mut rng,
            )
            .expect("not cancelled");
            (work, rec, stats)
        };
        let (g1, rec1, stats1) = run_serial();
        let (g2, rec2, stats2) = run_threaded(threads);
        prop_assert_eq!(stats1, stats2);
        prop_assert_eq!(rec1, rec2);
        prop_assert_eq!(g1.sorted_edge_list(), g2.sorted_edge_list());
    }

    /// CSR matvec agrees with the dense reference on arbitrary triplets.
    #[test]
    fn csr_matvec_matches_dense(triplets in arb_triplets(8, 6), x in proptest::collection::vec(-3.0f64..3.0, 6)) {
        let m = CsrMatrix::from_triplets(8, 6, &triplets);
        let d = m.to_dense();
        let mut ys = vec![0.0; 8];
        let mut yd = vec![0.0; 8];
        m.matvec_into(&x, &mut ys);
        d.matvec_into(&x, &mut yd);
        for (a, b) in ys.iter().zip(&yd) {
            prop_assert!((a - b).abs() < 1e-9, "sparse {a} vs dense {b}");
        }
    }

    /// CSR construction sums duplicates: total mass is conserved.
    #[test]
    fn csr_conserves_triplet_mass(triplets in arb_triplets(7, 7)) {
        let m = CsrMatrix::from_triplets(7, 7, &triplets);
        let direct: f64 = triplets.iter().map(|&(_, _, v)| v).sum();
        let stored: f64 = (0..7).flat_map(|r| m.row(r).map(|(_, v)| v).collect::<Vec<_>>()).sum();
        prop_assert!((direct - stored).abs() < 1e-9);
    }

    /// The normalised adjacency is symmetric with spectral radius ≤ 1
    /// (checked via the Rayleigh quotient of a random vector).
    #[test]
    fn normalized_adjacency_properties(g in arb_graph(10), seed in 0u64..1000) {
        let n = g.num_nodes() as usize;
        let edges: Vec<(u32, u32, f64)> = g
            .sorted_edge_list()
            .into_iter()
            .map(|(u, v, w)| (u.0, v.0, f64::from(w)))
            .collect();
        let a = normalized_adjacency(n, &edges);
        prop_assert!(a.is_symmetric(1e-12));
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
        let xn: f64 = x.iter().map(|v| v * v).sum();
        if xn > 1e-12 {
            let mut y = vec![0.0; n];
            a.matvec_into(&x, &mut y);
            let rayleigh: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum::<f64>() / xn;
            prop_assert!(rayleigh <= 1.0 + 1e-9, "Rayleigh quotient {rayleigh}");
            prop_assert!(rayleigh >= -1.0 - 1e-9, "Rayleigh quotient {rayleigh}");
        }
    }
}
