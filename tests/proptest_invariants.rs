//! Property-based tests of the core invariants, over randomly generated
//! hypergraphs and graphs.

use marioh::core::filtering::filtering;
use marioh::core::mhh::{mhh, residual_multiplicity};
use marioh::core::model::FnScorer;
use marioh::core::reconstruct::reconstruct;
use marioh::core::MariohConfig;
use marioh::hypergraph::clique::{is_maximal, maximal_cliques};
use marioh::hypergraph::hyperedge::Hyperedge;
use marioh::hypergraph::metrics::{jaccard, multi_jaccard};
use marioh::hypergraph::projection::project;
use marioh::hypergraph::{Hypergraph, NodeId, ProjectedGraph};
use proptest::prelude::*;

/// Strategy: a random hypergraph over ≤ `max_nodes` nodes.
fn arb_hypergraph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Hypergraph> {
    let edge = (
        2u32..=max_nodes,
        proptest::collection::vec(0..max_nodes, 2..6),
        1u32..4,
    );
    proptest::collection::vec(edge, 1..=max_edges).prop_map(move |edges| {
        let mut h = Hypergraph::new(max_nodes);
        for (_, nodes, mult) in edges {
            if let Some(e) = Hyperedge::new(nodes.into_iter().map(NodeId)) {
                h.add_edge_with_multiplicity(e, mult);
            }
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Projection always satisfies the graph invariants, and its total
    /// weight is Σ_e M(e) · C(|e|, 2).
    #[test]
    fn projection_invariants(h in arb_hypergraph(12, 12)) {
        let g = project(&h);
        prop_assert!(g.check_invariants().is_ok());
        let expected: u64 = h
            .iter()
            .map(|(e, m)| u64::from(m) * (e.len() * (e.len() - 1) / 2) as u64)
            .sum();
        prop_assert_eq!(g.total_weight(), expected);
    }

    /// Jaccard and multi-Jaccard are symmetric, bounded, and 1 on equal
    /// inputs.
    #[test]
    fn similarity_metric_properties(
        a in arb_hypergraph(10, 8),
        b in arb_hypergraph(10, 8),
    ) {
        for metric in [jaccard, multi_jaccard] {
            let ab = metric(&a, &b);
            let ba = metric(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!((metric(&a, &a) - 1.0).abs() < 1e-12);
        }
        // Jaccard dominates multi-Jaccard never... not in general; but
        // multi-Jaccard of multiplicity-reduced copies equals Jaccard.
        let ra = a.reduce_multiplicity();
        let rb = b.reduce_multiplicity();
        prop_assert!((jaccard(&ra, &rb) - multi_jaccard(&ra, &rb)).abs() < 1e-12);
    }

    /// Lemma 1 and Lemma 2 hold on every generated hypergraph: MHH upper-
    /// bounds true higher-order incidence, residual lower-bounds true
    /// size-2 multiplicity.
    #[test]
    fn mhh_lemmas(h in arb_hypergraph(10, 10)) {
        let g = project(&h);
        for (u, v, _) in g.sorted_edge_list() {
            let true_higher: u64 = h
                .iter()
                .filter(|(e, _)| e.len() >= 3 && e.contains(u) && e.contains(v))
                .map(|(_, m)| u64::from(m))
                .sum();
            prop_assert!(mhh(&g, u, v) >= true_higher);
            let true_pairs: u64 = h
                .iter()
                .filter(|(e, _)| e.len() == 2 && e.contains(u) && e.contains(v))
                .map(|(_, m)| u64::from(m))
                .sum();
            prop_assert!(u64::from(residual_multiplicity(&g, u, v)) <= true_pairs);
        }
    }

    /// Filtering is sound (never extracts more pairs than exist) and
    /// conservative (weight removed = multiplicity extracted).
    #[test]
    fn filtering_soundness(h in arb_hypergraph(10, 10)) {
        let g = project(&h);
        let mut rec = Hypergraph::new(0);
        let (g2, stats) = filtering(&g, &mut rec);
        prop_assert!(g2.check_invariants().is_ok());
        prop_assert_eq!(g.total_weight() - g2.total_weight(), stats.multiplicity_extracted);
        for (e, m) in rec.iter() {
            prop_assert_eq!(e.len(), 2);
            prop_assert!(m <= h.multiplicity(e));
        }
    }

    /// Every enumerated maximal clique is a maximal clique, and every
    /// edge of the graph lies inside at least one of them.
    #[test]
    fn maximal_clique_cover(h in arb_hypergraph(10, 8)) {
        let g = project(&h);
        let cliques = maximal_cliques(&g);
        for c in &cliques {
            prop_assert!(g.is_clique(c));
            prop_assert!(is_maximal(&g, c));
        }
        for (u, v, _) in g.sorted_edge_list() {
            prop_assert!(cliques
                .iter()
                .any(|c| c.binary_search(&u).is_ok() && c.binary_search(&v).is_ok()));
        }
    }

    /// With any strictly positive scorer, Algorithm 1 empties the graph
    /// and conserves the total projected weight.
    #[test]
    fn reconstruction_conserves_weight(h in arb_hypergraph(9, 8)) {
        let g = project(&h);
        let scorer = FnScorer(|_: &ProjectedGraph, _: &[NodeId]| 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        use rand::SeedableRng;
        let rec = reconstruct(&g, &scorer, &MariohConfig::default(), &mut rng);
        prop_assert_eq!(project(&rec).total_weight(), g.total_weight());
    }

    /// Text I/O round-trips every generated hypergraph exactly.
    #[test]
    fn io_round_trip(h in arb_hypergraph(12, 12)) {
        let mut buf = Vec::new();
        marioh::hypergraph::io::write_hypergraph(&h, &mut buf).expect("write");
        let back = marioh::hypergraph::io::read_hypergraph(buf.as_slice()).expect("read");
        prop_assert!((multi_jaccard(&h, &back) - 1.0).abs() < 1e-12);
        prop_assert_eq!(h.total_edge_count(), back.total_edge_count());
    }

    /// Splitting conserves events; merging the halves reproduces the
    /// original multiset.
    #[test]
    fn split_round_trip(h in arb_hypergraph(12, 12), frac in 0.0f64..=1.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let (a, b) = marioh::datasets::split::split_events(&h, frac, &mut rng);
        prop_assert_eq!(a.total_edge_count() + b.total_edge_count(), h.total_edge_count());
        let mut merged = a.clone();
        for (e, m) in b.iter() {
            merged.add_edge_with_multiplicity(e.clone(), m);
        }
        prop_assert!((multi_jaccard(&merged, &h) - 1.0).abs() < 1e-12);
    }
}
