//! End-to-end tests of `marioh-server`: a live service on an ephemeral
//! port, driven exclusively through the std-only HTTP client — no
//! external HTTP crate anywhere.
//!
//! Covers the acceptance criteria of the serving subsystem: a submitted
//! job's result is bit-identical to a direct [`Pipeline`] run, a 2-worker
//! pool never runs more than 2 of 8 submitted jobs at once while all 8
//! reach a terminal state, `DELETE` on a running job reports it
//! `Cancelled` within one search round, and hyperparameter validation
//! errors round-trip the pipeline builder's own message as a 400.

use marioh::core::{Pipeline, Reconstructor as _};
use marioh::datasets::{split::split_source_target, PaperDataset};
use marioh::hypergraph::projection::project;
use marioh::hypergraph::Hypergraph;
use marioh::server::{client, Json, Server, ServerConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn start(workers: usize, queue_cap: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_cap,
        ..ServerConfig::default()
    })
    .expect("server starts on an ephemeral port")
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let response = client::post(addr, "/jobs", body).expect("submit");
    assert_eq!(response.status, 201, "{}", response.body);
    response
        .json()
        .expect("valid JSON")
        .get("id")
        .and_then(Json::as_u64)
        .expect("id in response")
}

fn job_view(addr: SocketAddr, id: u64) -> Json {
    let response = client::get(addr, &format!("/jobs/{id}")).expect("poll");
    assert_eq!(response.status, 200, "{}", response.body);
    response.json().expect("valid JSON")
}

fn status_of(view: &Json) -> String {
    view.get("status")
        .and_then(Json::as_str)
        .expect("status field")
        .to_owned()
}

fn rounds_of(view: &Json) -> u64 {
    view.get("progress")
        .and_then(|p| p.get("rounds"))
        .and_then(Json::as_u64)
        .expect("progress.rounds field")
}

fn wait_terminal(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let view = job_view(addr, id);
        if ["done", "failed", "cancelled"].contains(&status_of(&view).as_str()) {
            return view;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} not terminal in time: {view:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The hyperedge multiset as comparable plain data.
fn edge_multiset(h: &Hypergraph) -> Vec<(Vec<u64>, u64)> {
    let mut edges: Vec<(Vec<u64>, u64)> = h
        .sorted_edges()
        .into_iter()
        .map(|e| {
            (
                e.nodes().iter().map(|n| u64::from(n.0)).collect(),
                u64::from(h.multiplicity(e)),
            )
        })
        .collect();
    edges.sort();
    edges
}

fn edge_multiset_from_json(result: &Json) -> Vec<(Vec<u64>, u64)> {
    let mut edges: Vec<(Vec<u64>, u64)> = result
        .get("edges")
        .and_then(Json::as_array)
        .expect("edges array")
        .iter()
        .map(|e| {
            (
                e.get("nodes")
                    .and_then(Json::as_array)
                    .expect("nodes array")
                    .iter()
                    .map(|n| n.as_u64().expect("node id"))
                    .collect(),
                e.get("multiplicity")
                    .and_then(Json::as_u64)
                    .expect("multiplicity"),
            )
        })
        .collect();
    edges.sort();
    edges
}

#[test]
fn submitted_job_matches_a_direct_pipeline_run() {
    let server = start(2, 16);
    let addr = server.local_addr();

    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    let seed = 1u64;
    let id = submit(addr, &format!(r#"{{"dataset": "Hosts", "seed": {seed}}}"#));
    let view = wait_terminal(addr, id);
    assert_eq!(status_of(&view), "done", "{view:?}");
    assert!(rounds_of(&view) >= 1, "no search rounds observed: {view:?}");

    let response = client::get(addr, &format!("/jobs/{id}/result")).expect("result");
    assert_eq!(response.status, 200, "{}", response.body);
    let result = response.json().expect("valid JSON");

    // Replicate the worker's exact RNG discipline: one StdRng drives
    // split → train → reconstruct.
    let data = PaperDataset::Hosts.generate_scaled(PaperDataset::Hosts.default_scale());
    let mut rng = StdRng::seed_from_u64(seed);
    let (source, target) = split_source_target(&data.hypergraph, &mut rng);
    let pipeline = Pipeline::builder().build().expect("default pipeline");
    let model = pipeline.train(&source, &mut rng).expect("train");
    let direct = model
        .reconstruct(&project(&target), &mut rng)
        .expect("reconstruct");

    assert_eq!(
        edge_multiset_from_json(&result),
        edge_multiset(&direct),
        "served result differs from the direct pipeline run"
    );
    let jaccard = result
        .get("jaccard")
        .and_then(Json::as_f64)
        .expect("jaccard");
    assert!(jaccard > 0.5, "jaccard {jaccard}");

    server.shutdown();
}

#[test]
fn eight_jobs_on_two_workers_stay_bounded_and_a_running_job_cancels() {
    let server = start(2, 16);
    let addr = server.local_addr();

    // Throttled tiny jobs: each occupies its worker for an observable
    // window (cancellable sleep before start and after each round).
    let ids: Vec<u64> = (0..8)
        .map(|seed| {
            submit(
                addr,
                &format!(r#"{{"dataset": "Hosts", "seed": {seed}, "throttle_ms": 150}}"#),
            )
        })
        .collect();

    // Find a job mid-run and cancel it. A fresh submission enters a
    // ≥150 ms cancellable delay as soon as a worker picks it up, so
    // retrying across the pool always catches one in `running`.
    let deadline = Instant::now() + Duration::from_secs(60);
    let cancelled_id = 'found: loop {
        assert!(Instant::now() < deadline, "never caught a running job");
        for &id in &ids {
            let view = job_view(addr, id);
            if status_of(&view) != "running" {
                continue;
            }
            let response = client::delete(addr, &format!("/jobs/{id}")).expect("cancel");
            assert_eq!(response.status, 200, "{}", response.body);
            let body = response.json().expect("valid JSON");
            if status_of(&body) != "cancelled" {
                continue; // finished in the observation window; try another
            }
            // Baseline AFTER the DELETE landed (the token is fired by
            // now), so rounds completed before cancellation don't race
            // the assertion: only the round in flight may still finish.
            let rounds_at_cancel = rounds_of(&job_view(addr, id));
            let final_view = wait_terminal(addr, id);
            assert_eq!(status_of(&final_view), "cancelled", "{final_view:?}");
            assert!(
                rounds_of(&final_view) <= rounds_at_cancel + 1,
                "cancelled job kept running: {rounds_at_cancel} -> {final_view:?}"
            );
            break 'found id;
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    // Drain the rest, sampling /stats continuously: concurrency stays
    // bounded by the pool size the whole way down.
    let mut max_running = 0;
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let response = client::get(addr, "/stats").expect("stats");
        assert_eq!(response.status, 200);
        let stats = response.json().expect("valid JSON");
        let running = stats
            .get("running")
            .and_then(Json::as_u64)
            .expect("running");
        let finished = stats
            .get("jobs_finished")
            .and_then(Json::as_u64)
            .expect("jobs_finished");
        assert_eq!(stats.get("workers").and_then(Json::as_u64), Some(2));
        assert!(running <= 2, "unbounded concurrency: {running} running");
        max_running = max_running.max(running);
        if finished == 8 {
            break;
        }
        assert!(Instant::now() < deadline, "jobs did not drain: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(max_running >= 1, "never observed a running job in /stats");

    // All eight reached a terminal state; everything but the cancelled
    // job completed.
    for &id in &ids {
        let status = status_of(&wait_terminal(addr, id));
        if id == cancelled_id {
            assert_eq!(status, "cancelled");
        } else {
            assert_eq!(status, "done", "job {id}");
        }
    }
    let stats = client::get(addr, "/stats").expect("stats").json().unwrap();
    assert_eq!(stats.get("jobs_submitted").and_then(Json::as_u64), Some(8));
    assert_eq!(stats.get("queue_depth").and_then(Json::as_u64), Some(0));

    server.shutdown();
}

#[test]
fn bad_hyperparameters_round_trip_the_builder_message_as_400() {
    let server = start(1, 4);
    let addr = server.local_addr();

    // Regression: a bad theta_init must answer 400 with the exact
    // message `Pipeline::builder()` produces — never a 500.
    let expected = Pipeline::builder()
        .theta_init(42.0)
        .build()
        .expect_err("42.0 is out of domain")
        .to_string();
    let response = client::post(
        addr,
        "/jobs",
        r#"{"dataset": "Hosts", "params": {"theta_init": 42.0}}"#,
    )
    .expect("submit");
    assert_eq!(response.status, 400, "{}", response.body);
    let body = response.json().expect("valid JSON");
    assert_eq!(
        body.get("error").and_then(Json::as_str),
        Some(expected.as_str())
    );

    // Duplicate hyperparameters are a 400, not silent last-wins.
    let response = client::post(
        addr,
        "/jobs",
        r#"{"dataset": "Hosts", "params": {"theta_init": 0.9, "theta_init": 0.8}}"#,
    )
    .expect("submit");
    assert_eq!(response.status, 400);
    let error = response
        .json()
        .expect("valid JSON")
        .get("error")
        .and_then(Json::as_str)
        .expect("error field")
        .to_owned();
    assert!(error.contains("duplicate hyperparameter"), "{error}");

    // Malformed JSON and unknown datasets are 400s too.
    assert_eq!(
        client::post(addr, "/jobs", "{{{").expect("submit").status,
        400
    );
    let response = client::post(addr, "/jobs", r#"{"dataset": "Atlantis"}"#).expect("submit");
    assert_eq!(response.status, 400);

    // Nothing was accepted.
    let stats = client::get(addr, "/stats").expect("stats").json().unwrap();
    assert_eq!(stats.get("jobs_submitted").and_then(Json::as_u64), Some(0));

    server.shutdown();
}

#[test]
fn uploaded_edge_lists_reconstruct_and_shutdown_cancels_in_flight_jobs() {
    let server = start(1, 8);
    let addr = server.local_addr();

    // A structured hypergraph in the text format, inline in the body.
    let mut lines = String::new();
    for b in 0..30u32 {
        let base = b * 3;
        lines.push_str(&format!("2 {} {} {}\n", base, base + 1, base + 2));
        lines.push_str(&format!("1 {} {}\n", base, base + 1));
    }
    let body = Json::Obj(vec![
        ("edges".to_owned(), Json::str(lines)),
        ("seed".to_owned(), Json::num(3.0)),
    ]);
    let id = submit(addr, &body.to_string());
    let view = wait_terminal(addr, id);
    assert_eq!(status_of(&view), "done", "{view:?}");
    let result = client::get(addr, &format!("/jobs/{id}/result")).expect("result");
    assert_eq!(result.status, 200);
    assert!(
        !edge_multiset_from_json(&result.json().unwrap()).is_empty(),
        "empty reconstruction"
    );

    // Park a long throttled job plus a queued one, then shut down:
    // both must end Cancelled, and shutdown must not hang on them.
    let running = submit(addr, r#"{"dataset": "Hosts", "throttle_ms": 60000}"#);
    let queued = submit(addr, r#"{"dataset": "Hosts", "throttle_ms": 60000}"#);
    loop {
        if status_of(&job_view(addr, running)) == "running" {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let t0 = Instant::now();
    let manager = server.manager().clone();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "shutdown hung on in-flight jobs"
    );
    use marioh::server::JobStatus;
    assert_eq!(manager.view(running).unwrap().status, JobStatus::Cancelled);
    assert_eq!(manager.view(queued).unwrap().status, JobStatus::Cancelled);
}
